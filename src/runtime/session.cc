#include "runtime/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"

namespace tqp::runtime {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QueryScheduler::QueryScheduler(const Catalog* catalog, SchedulerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : ThreadPool::Global()),
      steps_(pool_),
      plan_cache_(options_.plan_cache_capacity) {
  if (options_.max_concurrent <= 0) options_.max_concurrent = 1;
  // Every compiled executor schedules on the scheduler's shared pool — one
  // cross-query pool instead of a pool per executor — and dispatches its
  // execution-DAG steps through the scheduler's priority-aware
  // StepScheduler, so steps of concurrent queries interleave by
  // QueryPriority class.
  options_.pool = pool_;
  options_.compile.pool = pool_;
  options_.compile.step_scheduler = &steps_;
}

QueryScheduler::~QueryScheduler() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  // Drain: queued jobs still execute; wait until the last worker task has
  // finished touching this object (workers notify under mu_). The wait
  // cooperates like ParallelFor's: if this destructor runs on one of the
  // shared pool's own workers, blocking alone would starve the WorkerBody
  // tasks it is waiting for, so run queued pool tasks in the meantime.
  while (true) {
    {
      MutexLock lock(mu_);
      if (active_workers_ == 0 && queued_total_ == 0) return;
    }
    if (pool_->TryRunOneTask()) continue;
    MutexLock lock(mu_);
    // Predicate-less timed wait + re-check under the lock: the condition
    // reads mu_-guarded fields, which a predicate lambda could not touch
    // under the thread-safety analysis. Spurious wakeups just loop.
    idle_cv_.WaitFor(mu_, std::chrono::milliseconds(1));
    if (active_workers_ == 0 && queued_total_ == 0) return;
  }
}

Result<std::future<QueryOutcome>> QueryScheduler::Submit(const std::string& sql,
                                                         QueryPriority priority,
                                                         uint64_t* query_id) {
  Job job;
  job.sql = sql;
  job.priority = priority;
  job.enqueue_nanos = NowNanos();
  // The cancellation token is born at admission and its deadline (when one
  // is configured) is armed from enqueue time: queue wait counts against
  // the deadline, which is what makes queued-too-long shedding work.
  job.token = std::make_shared<CancellationToken>();
  const int64_t deadline_ms = ResolveDeadlineMs(options_.compile.deadline_ms);
  if (deadline_ms > 0) job.token->SetDeadlineAfterMs(deadline_ms);
  std::future<QueryOutcome> future = job.promise.get_future();
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return Status::Invalid("scheduler is shutting down");
    }
    if (queued_total_ >= options_.queue_capacity) {
      ++counters_.rejected;
      static obs::Counter* rejected_metric =
          obs::MetricsRegistry::Global()->GetCounter(
              "tqp_queries_rejected_total",
              "Queries rejected at admission (full queue or backpressure)");
      rejected_metric->Add(1);
      return Status::Invalid("admission queue full (" +
                             std::to_string(options_.queue_capacity) +
                             " queries waiting); retry later");
    }
    if (priority == QueryPriority::kLow) {
      const double watermark = std::clamp(options_.backpressure_watermark, 0.0, 1.0);
      // Ceil, not truncate: shedding starts once the queue actually *holds*
      // watermark*capacity queries (a 0.1 watermark over capacity 8 must not
      // shed on an idle queue).
      const auto threshold = static_cast<size_t>(
          std::ceil(watermark * static_cast<double>(options_.queue_capacity)));
      if (queued_total_ >= threshold) {
        ++counters_.rejected;
        ++counters_.shed_low_priority;
        static obs::Counter* rejected_metric =
            obs::MetricsRegistry::Global()->GetCounter(
                "tqp_queries_rejected_total",
                "Queries rejected at admission (full queue or backpressure)");
        rejected_metric->Add(1);
        static obs::Counter* shed_metric =
            obs::MetricsRegistry::Global()->GetCounter(
                "tqp_queries_shed_total",
                "Low-priority queries shed under admission backpressure");
        shed_metric->Add(1);
        if (options_.trace != nullptr) {
          obs::TraceEvent shed;
          shed.phase = obs::TraceEvent::Phase::kInstant;
          shed.category = "query";
          shed.name = "shed";
          shed.ts_nanos = obs::TraceNowNanos();
          shed.thread_id = obs::TraceThreadId();
          shed.AddArg("queued", static_cast<int64_t>(queued_total_));
          options_.trace->Append(std::move(shed));
        }
        return Status::Invalid(
            "admission queue under backpressure (" +
            std::to_string(queued_total_) +
            " queries waiting); low-priority query shed, retry later");
      }
    }
    ++counters_.admitted;
    static obs::Counter* admitted_metric =
        obs::MetricsRegistry::Global()->GetCounter(
            "tqp_queries_admitted_total", "Queries admitted by schedulers");
    admitted_metric->Add(1);
    if (options_.trace != nullptr) {
      // Tag the job with its trace query id now: every span it records —
      // on whichever worker picks it up — carries this id, which is what
      // lets one session's timeline separate interleaved queries.
      job.trace_query_id = options_.trace->NextQueryId();
      obs::TraceEvent admit;
      admit.phase = obs::TraceEvent::Phase::kInstant;
      admit.category = "query";
      admit.name = "admit";
      admit.ts_nanos = job.enqueue_nanos;
      admit.query_id = job.trace_query_id;
      admit.thread_id = obs::TraceThreadId();
      admit.AddArg("priority", static_cast<int64_t>(priority));
      admit.AddArg("queued", static_cast<int64_t>(queued_total_));
      options_.trace->Append(std::move(admit));
    }
    job.query_id = next_query_id_++;
    if (query_id != nullptr) *query_id = job.query_id;
    tokens_.emplace(job.query_id, TokenEntry{job.token, priority});
    queues_[static_cast<size_t>(priority)].push_back(std::move(job));
    ++queued_total_;
    DispatchLocked();
  }
  return future;
}

bool QueryScheduler::Cancel(uint64_t query_id) {
  std::shared_ptr<CancellationToken> token;
  {
    MutexLock lock(mu_);
    auto it = tokens_.find(query_id);
    if (it == tokens_.end()) return false;
    token = it->second.token;
  }
  // Signal outside mu_: RequestCancel is lock-free, but holding the
  // scheduler lock across it buys nothing and this keeps Cancel callable
  // from anywhere (shell command handlers included).
  token->RequestCancel(CancelReason::kUserCancelled);
  obs::TraceInstant("query", "cancel.request", "query_id",
                    static_cast<int64_t>(query_id));
  return true;
}

int QueryScheduler::PreemptLowPriority() {
  std::vector<std::shared_ptr<CancellationToken>> victims;
  {
    MutexLock lock(mu_);
    for (const auto& [id, entry] : tokens_) {
      (void)id;
      if (entry.priority == QueryPriority::kLow) victims.push_back(entry.token);
    }
  }
  for (const auto& token : victims) {
    token->RequestCancel(CancelReason::kPreempted);
  }
  if (!victims.empty()) {
    obs::TraceInstant("query", "preempt.low_priority", "victims",
                      static_cast<int64_t>(victims.size()));
  }
  return static_cast<int>(victims.size());
}

void QueryScheduler::DispatchLocked() {
  // Workers that are spawned-but-not-executing will each pop one queued job
  // soon; spawn more only for jobs beyond that, up to max_concurrent.
  while (active_workers_ < options_.max_concurrent &&
         queued_total_ > static_cast<size_t>(active_workers_ - executing_workers_)) {
    ++active_workers_;
    pool_->Submit([this] { WorkerBody(); });
  }
}

bool QueryScheduler::PopJobLocked(Job* job) {
  for (int p = kNumQueryPriorities - 1; p >= 0; --p) {
    auto& q = queues_[static_cast<size_t>(p)];
    if (q.empty()) continue;
    *job = std::move(q.front());
    q.pop_front();
    --queued_total_;
    return true;
  }
  return false;
}

void QueryScheduler::WorkerBody() {
  while (true) {
    Job job;
    {
      MutexLock lock(mu_);
      if (!PopJobLocked(&job)) {
        --active_workers_;
        // Notify under mu_ so the destructor cannot tear the object down
        // between our predicate update and the notify.
        idle_cv_.NotifyAll();
        return;
      }
      ++executing_workers_;
    }
    QueryOutcome outcome = Execute(&job);
    {
      MutexLock lock(mu_);
      --executing_workers_;
      ++counters_.completed;
      if (!outcome.status.ok()) ++counters_.failed;
      counters_.spilled_bytes += outcome.stats.spilled_bytes;
      if (outcome.stats.spilled_bytes > 0) ++counters_.queries_spilled;
      switch (outcome.termination_reason) {
        case CancelReason::kUserCancelled:
          ++counters_.cancelled;
          break;
        case CancelReason::kDeadlineExceeded:
          ++counters_.timed_out;
          if (outcome.stats.timed_out_in_queue) ++counters_.timed_out_queued;
          break;
        case CancelReason::kPreempted:
          ++counters_.preempted;
          break;
        case CancelReason::kNone:
          break;
      }
      tokens_.erase(job.query_id);  // Cancel now reports "unknown id"
    }
    if (outcome.termination_reason != CancelReason::kNone) {
      static obs::Counter* cancelled_metric =
          obs::MetricsRegistry::Global()->GetCounter(
              "tqp_queries_cancelled_total",
              "Queries terminated by explicit cancellation requests");
      static obs::Counter* timeout_metric =
          obs::MetricsRegistry::Global()->GetCounter(
              "tqp_queries_timed_out_total",
              "Queries terminated by deadline expiry (queued or running)");
      static obs::Counter* timeout_queued_metric =
          obs::MetricsRegistry::Global()->GetCounter(
              "tqp_queries_timed_out_queued",
              "Queries whose deadline expired before execution started");
      static obs::Counter* preempted_metric =
          obs::MetricsRegistry::Global()->GetCounter(
              "tqp_queries_preempted_total",
              "Low-priority queries preempted under memory pressure");
      switch (outcome.termination_reason) {
        case CancelReason::kUserCancelled:
          cancelled_metric->Add(1);
          break;
        case CancelReason::kDeadlineExceeded:
          timeout_metric->Add(1);
          if (outcome.stats.timed_out_in_queue) timeout_queued_metric->Add(1);
          break;
        case CancelReason::kPreempted:
          preempted_metric->Add(1);
          break;
        case CancelReason::kNone:
          break;
      }
    }
    static obs::Counter* completed_metric =
        obs::MetricsRegistry::Global()->GetCounter(
            "tqp_queries_completed_total",
            "Queries that finished executing (including failures)");
    completed_metric->Add(1);
    if (!outcome.status.ok()) {
      static obs::Counter* failed_metric =
          obs::MetricsRegistry::Global()->GetCounter(
              "tqp_queries_failed_total",
              "Queries that finished with an error status");
      failed_metric->Add(1);
    }
    static obs::Histogram* latency_hist =
        obs::MetricsRegistry::Global()->GetHistogram(
            "tqp_query_latency_seconds",
            "End-to-end query latency, admission to completion",
            obs::Histogram::LatencyBounds());
    latency_hist->Observe(
        static_cast<double>(NowNanos() - job.enqueue_nanos) * 1e-9);
    job.promise.set_value(std::move(outcome));
  }
}

QueryOutcome QueryScheduler::Execute(Job* job) {
  QueryOutcome outcome;
  outcome.stats.queue_nanos = NowNanos() - job->enqueue_nanos;
  static obs::Histogram* queue_hist =
      obs::MetricsRegistry::Global()->GetHistogram(
          "tqp_query_queue_seconds",
          "Admission-queue wait, enqueue to worker pickup",
          obs::Histogram::LatencyBounds());
  queue_hist->Observe(static_cast<double>(outcome.stats.queue_nanos) * 1e-9);

  // Ambient trace context for the whole query: every span below — and every
  // span recorded by tasks the executor fans out — lands in the scheduler's
  // session tagged with this query's id. With tracing off this attaches a
  // null session, which doubles as a mask over any context the pool task
  // running this worker might have inherited.
  obs::TraceContext trace_ctx(options_.trace, job->trace_query_id);
  // Queued-too-long shedding and pre-execution cancellation: the token was
  // armed at admission, so a deadline that expired during the queue wait —
  // or a Cancel that landed before pickup — terminates the query here with
  // a structured error instead of executing it late.
  if (job->token != nullptr && job->token->cancelled()) {
    outcome.status = job->token->CheckCancelled();
    outcome.termination_reason = job->token->reason();
    outcome.stats.timed_out_in_queue =
        outcome.termination_reason == CancelReason::kDeadlineExceeded;
    if (outcome.stats.timed_out_in_queue) {
      outcome.status = outcome.status.WithContext(
          "deadline expired in admission queue after " +
          std::to_string(outcome.stats.queue_nanos / 1000000) + " ms");
      obs::TraceInstant("query", "shed.expired", "queued_ms",
                        outcome.stats.queue_nanos / 1000000);
    }
    return outcome;
  }
  // The queue wait already happened (on no particular thread); record it
  // backdated as a top-level span so the timeline shows admission-to-pickup
  // next to the execution that follows.
  obs::TraceSpanWithTimes("query", "queue.wait", job->enqueue_nanos,
                          outcome.stats.queue_nanos);
  obs::TraceSpan query_span("query", "query");
  if (query_span.enabled()) query_span.SetDetail(job->sql);

  const std::string normalized = NormalizeSql(job->sql);
  // Cache lookup with in-flight dedup: a burst of identical statements
  // compiles once — the worker that claims the statement compiles it while
  // the others wait and pick the plan up from the cache. The cache is
  // (re)checked under the claim loop so a finish between lookup and claim
  // cannot cause a redundant compilation.
  std::shared_ptr<const CompiledQuery> plan;
  {
    MutexLock lock(compile_mu_);
    while (true) {
      lock.Unlock();
      plan = plan_cache_.Lookup(normalized, options_.compile);
      lock.Lock();
      if (plan != nullptr) break;
      if (compiling_.count(normalized) == 0) {
        compiling_.insert(normalized);  // our claim; compile below
        break;
      }
      compile_cv_.Wait(compile_mu_);
      // Woken: either the plan is cached now, or the compiling worker
      // failed (no cache entry) and the loop re-contends for the claim.
    }
  }
  if (plan != nullptr) {
    outcome.stats.cache_hit = true;
    obs::TraceInstant("compile", "plancache.hit", "query",
                      static_cast<int64_t>(job->trace_query_id));
  } else {
    Stopwatch compile_timer;
    auto compiled_or = [&] {
      obs::TraceSpan compile_span("compile", "compile");
      return compiler_.CompileSql(job->sql, *catalog_, options_.compile);
    }();
    outcome.stats.compile_nanos = compile_timer.ElapsedNanos();
    static obs::Histogram* compile_hist =
        obs::MetricsRegistry::Global()->GetHistogram(
            "tqp_query_compile_seconds",
            "SQL-to-executable compile latency (plan-cache misses only)",
            obs::Histogram::LatencyBounds());
    compile_hist->Observe(static_cast<double>(outcome.stats.compile_nanos) *
                          1e-9);
    if (compiled_or.ok()) {
      plan = std::make_shared<const CompiledQuery>(
          std::move(compiled_or).ValueOrDie());
      plan_cache_.Insert(normalized, options_.compile, plan);
    }
    {
      MutexLock lock(compile_mu_);
      compiling_.erase(normalized);
    }
    compile_cv_.NotifyAll();
    if (!compiled_or.ok()) {
      outcome.status = compiled_or.status();
      return outcome;
    }
  }

  Stopwatch exec_timer;
  // Ambient priority for the executor's step submissions: the query's
  // pipeline/node tasks enter the shared StepScheduler tagged with its
  // admission priority and interleave with other queries' steps accordingly.
  StepScheduler::ScopedPriority step_priority(
      static_cast<int>(job->priority));
  // Ambient per-query memory scope: every allocation the query makes — on
  // this worker or on any task it fans out — charges this scope, and with a
  // budget set (CompileOptions::memory_budget_bytes / TQP_MEMORY_BUDGET_MB)
  // an over-budget query spills cold intermediates to disk instead of
  // growing resident memory.
  BufferPool::QueryScope memory_scope(
      BufferPool::ResolveMemoryBudget(options_.compile.memory_budget_bytes));
  BufferPool::QueryScope::Attach memory_attach(&memory_scope);
  // Ambient cancellation token: the executors' ScopedQueryDeadline sees it
  // and polls it (instead of arming a second deadline), and every task the
  // query fans out re-attaches it via ThreadPool/StepScheduler submission.
  CancellationToken::Attach token_attach(job->token.get());
  auto result_or = [&] {
    obs::TraceSpan exec_span("query", "execute");
    return plan->Run(*catalog_);
  }();
  outcome.stats.exec_nanos = exec_timer.ElapsedNanos();
  static obs::Histogram* exec_hist =
      obs::MetricsRegistry::Global()->GetHistogram(
          "tqp_query_exec_seconds", "Plan execution latency",
          obs::Histogram::LatencyBounds());
  exec_hist->Observe(static_cast<double>(outcome.stats.exec_nanos) * 1e-9);
  const QueryMemoryStats mem = memory_scope.stats();
  outcome.stats.memory_budget_bytes = mem.budget_bytes;
  outcome.stats.peak_memory_bytes = mem.peak_live_bytes;
  outcome.stats.spilled_bytes = mem.spilled_bytes;
  if (!result_or.ok()) {
    outcome.status = result_or.status();
    // A termination status with the token fired means the stop was the
    // cooperative kind — surface the structured reason (a plain execution
    // error leaves kNone even if a late cancel raced in after the failure).
    if (outcome.status.IsTermination() && job->token != nullptr &&
        job->token->reason() != CancelReason::kNone) {
      outcome.termination_reason = job->token->reason();
      obs::TraceInstant("query", "terminated", "reason",
                        static_cast<int64_t>(outcome.termination_reason));
    }
    return outcome;
  }
  outcome.table = std::move(result_or).ValueOrDie();
  outcome.stats.result_rows = outcome.table.num_rows();
  if (query_span.enabled()) {
    query_span.AddArg("rows", outcome.stats.result_rows);
    query_span.AddArg("cache_hit", outcome.stats.cache_hit ? 1 : 0);
    query_span.AddArg("spilled_bytes", outcome.stats.spilled_bytes);
  }
  outcome.status = Status::OK();
  return outcome;
}

SchedulerCounters QueryScheduler::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

QuerySession::QuerySession(QueryScheduler* scheduler, std::string name,
                           QueryPriority priority)
    : scheduler_(scheduler), name_(std::move(name)), priority_(priority) {}

Result<std::future<QueryOutcome>> QuerySession::ExecuteAsync(
    const std::string& sql) {
  return scheduler_->Submit(sql, priority_);
}

Result<Table> QuerySession::Execute(const std::string& sql) {
  auto future_or = scheduler_->Submit(sql, priority_);
  if (!future_or.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return future_or.status();
  }
  QueryOutcome outcome = future_or.ValueOrDie().get();
  total_exec_nanos_.fetch_add(outcome.stats.exec_nanos,
                              std::memory_order_relaxed);
  if (!outcome.status.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return outcome.status;
  }
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  return std::move(outcome.table);
}

}  // namespace tqp::runtime
