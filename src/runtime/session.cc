#include "runtime/session.h"

#include <chrono>
#include <utility>

#include "common/stopwatch.h"

namespace tqp::runtime {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QueryScheduler::QueryScheduler(const Catalog* catalog, SchedulerOptions options)
    : catalog_(catalog),
      options_(options),
      plan_cache_(options.plan_cache_capacity) {
  const int n = options_.max_concurrent > 0 ? options_.max_concurrent : 1;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

Result<std::future<QueryOutcome>> QueryScheduler::Submit(const std::string& sql) {
  Job job;
  job.sql = sql;
  job.enqueue_nanos = NowNanos();
  std::future<QueryOutcome> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Invalid("scheduler is shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++counters_.rejected;
      return Status::Invalid("admission queue full (" +
                             std::to_string(options_.queue_capacity) +
                             " queries waiting); retry later");
    }
    ++counters_.admitted;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return future;
}

void QueryScheduler::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    QueryOutcome outcome = Execute(&job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.completed;
      if (!outcome.status.ok()) ++counters_.failed;
    }
    job.promise.set_value(std::move(outcome));
  }
}

QueryOutcome QueryScheduler::Execute(Job* job) {
  QueryOutcome outcome;
  outcome.stats.queue_nanos = NowNanos() - job->enqueue_nanos;

  const std::string normalized = NormalizeSql(job->sql);
  // Cache lookup with in-flight dedup: a burst of identical statements
  // compiles once — the worker that claims the statement compiles it while
  // the others wait and pick the plan up from the cache. The cache is
  // (re)checked under the claim loop so a finish between lookup and claim
  // cannot cause a redundant compilation.
  std::shared_ptr<const CompiledQuery> plan;
  {
    std::unique_lock<std::mutex> lock(compile_mu_);
    while (true) {
      lock.unlock();
      plan = plan_cache_.Lookup(normalized, options_.compile);
      lock.lock();
      if (plan != nullptr) break;
      if (compiling_.count(normalized) == 0) {
        compiling_.insert(normalized);  // our claim; compile below
        break;
      }
      compile_cv_.wait(lock);
      // Woken: either the plan is cached now, or the compiling worker
      // failed (no cache entry) and the loop re-contends for the claim.
    }
  }
  if (plan != nullptr) {
    outcome.stats.cache_hit = true;
  } else {
    Stopwatch compile_timer;
    auto compiled_or = compiler_.CompileSql(job->sql, *catalog_, options_.compile);
    outcome.stats.compile_nanos = compile_timer.ElapsedNanos();
    if (compiled_or.ok()) {
      plan = std::make_shared<const CompiledQuery>(
          std::move(compiled_or).ValueOrDie());
      plan_cache_.Insert(normalized, options_.compile, plan);
    }
    {
      std::lock_guard<std::mutex> lock(compile_mu_);
      compiling_.erase(normalized);
    }
    compile_cv_.notify_all();
    if (!compiled_or.ok()) {
      outcome.status = compiled_or.status();
      return outcome;
    }
  }

  Stopwatch exec_timer;
  auto result_or = plan->Run(*catalog_);
  outcome.stats.exec_nanos = exec_timer.ElapsedNanos();
  if (!result_or.ok()) {
    outcome.status = result_or.status();
    return outcome;
  }
  outcome.table = std::move(result_or).ValueOrDie();
  outcome.stats.result_rows = outcome.table.num_rows();
  outcome.status = Status::OK();
  return outcome;
}

SchedulerCounters QueryScheduler::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

QuerySession::QuerySession(QueryScheduler* scheduler, std::string name)
    : scheduler_(scheduler), name_(std::move(name)) {}

Result<std::future<QueryOutcome>> QuerySession::ExecuteAsync(
    const std::string& sql) {
  return scheduler_->Submit(sql);
}

Result<Table> QuerySession::Execute(const std::string& sql) {
  auto future_or = scheduler_->Submit(sql);
  if (!future_or.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return future_or.status();
  }
  QueryOutcome outcome = future_or.ValueOrDie().get();
  total_exec_nanos_.fetch_add(outcome.stats.exec_nanos,
                              std::memory_order_relaxed);
  if (!outcome.status.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return outcome.status;
  }
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  return std::move(outcome.table);
}

}  // namespace tqp::runtime
