#ifndef TQP_RUNTIME_TASK_GRAPH_H_
#define TQP_RUNTIME_TASK_GRAPH_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "runtime/thread_pool.h"

namespace tqp::runtime {

class StepScheduler;

/// \brief A one-shot DAG of Status-returning tasks executed with maximum
/// concurrency on a ThreadPool: a task becomes runnable the moment its last
/// dependency finishes, so independent subtrees (e.g. the two sides of a
/// join, or the per-aggregate branches of a group-by) run concurrently.
///
/// Usage:
///   TaskGraph graph;
///   int scan = graph.AddTask(scan_fn);
///   int agg  = graph.AddTask(agg_fn, {scan});
///   TQP_RETURN_NOT_OK(graph.Run(pool));
///
/// Error semantics: the first failing task cancels all not-yet-started tasks;
/// Run returns that first error after every in-flight task has finished.
/// Run may be called repeatedly (each call re-executes the whole graph).
class TaskGraph {
 public:
  using TaskFn = std::function<Status()>;

  /// \brief Adds a task depending on previously added task ids; returns its
  /// id (dense, starting at 0). Duplicate dependencies are tolerated.
  int AddTask(TaskFn fn, const std::vector<int>& deps = {});

  int num_tasks() const { return static_cast<int>(nodes_.size()); }

  /// \brief Executes the graph. With a null pool (or an empty graph) this
  /// degenerates to serial execution in insertion order, which is always a
  /// valid topological order. The calling thread participates in execution.
  Status Run(ThreadPool* pool);

  /// \brief Executes the graph with ready tasks dispatched through a shared
  /// StepScheduler at the calling thread's ambient priority
  /// (StepScheduler::CurrentPriority()). Tasks of concurrent graphs — e.g.
  /// the step DAGs of different admitted queries — then interleave on one
  /// pool in priority order instead of first-come-first-served.
  Status Run(StepScheduler* steps);

 private:
  Status RunImpl(ThreadPool* pool, StepScheduler* steps);

  struct Node {
    TaskFn fn;
    std::vector<int> deps;        // deduplicated
    std::vector<int> successors;  // tasks waiting on this one
  };
  std::vector<Node> nodes_;
};

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_TASK_GRAPH_H_
