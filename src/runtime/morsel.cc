#include "runtime/morsel.h"

#include <algorithm>
#include <cstdlib>

namespace tqp::runtime {

int64_t DefaultMorselRows() {
  static const int64_t rows = [] {
    const char* v = std::getenv("TQP_MORSEL_ROWS");
    if (v != nullptr && *v != '\0') {
      const int64_t parsed = std::strtoll(v, nullptr, 10);
      if (parsed > 0) return parsed;
    }
    return int64_t{16384};
  }();
  return rows;
}

std::vector<RowRange> PartitionRows(int64_t rows, int64_t morsel_rows) {
  if (morsel_rows <= 0) morsel_rows = DefaultMorselRows();
  std::vector<RowRange> out;
  if (rows <= 0) return out;
  out.reserve(static_cast<size_t>((rows + morsel_rows - 1) / morsel_rows));
  for (int64_t b = 0; b < rows; b += morsel_rows) {
    out.push_back(RowRange{b, std::min(rows, b + morsel_rows)});
  }
  return out;
}

}  // namespace tqp::runtime
