#include "runtime/morsel.h"

#include <algorithm>

#include "common/env.h"

namespace tqp::runtime {

int64_t DefaultMorselRows() {
  static const int64_t rows = EnvInt64OrDefault(
      "TQP_MORSEL_ROWS", 16384, 1, int64_t{1} << 30);
  return rows;
}

bool DefaultAdaptiveMorsels() {
  static const bool on =
      EnvInt64OrDefault("TQP_ADAPTIVE_MORSEL", 0, 0, 1) != 0;
  return on;
}

AdaptiveMorselController::AdaptiveMorselController(int64_t initial_rows)
    : rows_(std::clamp(initial_rows, kMinRows, kMaxRows)) {}

int64_t AdaptiveMorselController::rows() const {
  MutexLock lock(mu_);
  return rows_;
}

void AdaptiveMorselController::Observe(int64_t rows, int64_t wall_nanos) {
  if (rows <= 0 || wall_nanos <= 0) return;
  const double per_row =
      static_cast<double>(wall_nanos) / static_cast<double>(rows);
  MutexLock lock(mu_);
  ewma_nanos_per_row_ = ewma_nanos_per_row_ < 0.0
                            ? per_row
                            : 0.25 * per_row + 0.75 * ewma_nanos_per_row_;
  const double desired =
      static_cast<double>(kTargetNanos) / ewma_nanos_per_row_;
  // Geometric step bound (at most halve/double per adjustment), then the
  // absolute envelope.
  const double stepped =
      std::clamp(desired, static_cast<double>(rows_) * 0.5,
                 static_cast<double>(rows_) * 2.0);
  rows_ = std::clamp(static_cast<int64_t>(stepped), kMinRows, kMaxRows);
}

std::vector<RowRange> PartitionRows(int64_t rows, int64_t morsel_rows) {
  if (morsel_rows <= 0) morsel_rows = DefaultMorselRows();
  std::vector<RowRange> out;
  if (rows <= 0) return out;
  out.reserve(static_cast<size_t>((rows + morsel_rows - 1) / morsel_rows));
  for (int64_t b = 0; b < rows; b += morsel_rows) {
    out.push_back(RowRange{b, std::min(rows, b + morsel_rows)});
  }
  return out;
}

}  // namespace tqp::runtime
