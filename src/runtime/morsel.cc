#include "runtime/morsel.h"

#include <algorithm>

#include "common/env.h"

namespace tqp::runtime {

int64_t DefaultMorselRows() {
  static const int64_t rows = EnvInt64OrDefault(
      "TQP_MORSEL_ROWS", 16384, 1, int64_t{1} << 30);
  return rows;
}

std::vector<RowRange> PartitionRows(int64_t rows, int64_t morsel_rows) {
  if (morsel_rows <= 0) morsel_rows = DefaultMorselRows();
  std::vector<RowRange> out;
  if (rows <= 0) return out;
  out.reserve(static_cast<size_t>((rows + morsel_rows - 1) / morsel_rows));
  for (int64_t b = 0; b < rows; b += morsel_rows) {
    out.push_back(RowRange{b, std::min(rows, b + morsel_rows)});
  }
  return out;
}

}  // namespace tqp::runtime
