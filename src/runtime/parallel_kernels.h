#ifndef TQP_RUNTIME_PARALLEL_KERNELS_H_
#define TQP_RUNTIME_PARALLEL_KERNELS_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "graph/program.h"
#include "kernels/kernel_types.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"

namespace tqp::runtime {

/// \brief Executor-provided callbacks for partitioned pipeline-breaker
/// evaluation. Lives on the executor's stack for the duration of one step.
struct BreakerHooks {
  /// Releases the executor's value-slot handle for `operand` once a breaker
  /// has fully consumed it (e.g. after external-sort run formation), so the
  /// input buffer frees before the breaker's output allocates. Returns true
  /// when the slot was actually released. Must be safe to call from the
  /// step's calling thread.
  std::function<bool(int operand)> release_input;
};

/// \brief Shared knobs for morsel-parallel kernel execution.
struct ParallelContext {
  ThreadPool* pool = nullptr;  // null => serial
  /// Rows per morsel; <= 0 selects DefaultMorselRows().
  int64_t morsel_rows = 0;
  /// Kernels on fewer rows than this run serially (fan-out overhead would
  /// dominate).
  int64_t min_parallel_rows = 8192;
  /// Evaluate pipeline breakers (hash-join build, grouping, sort) through the
  /// radix-partitioned operators in src/operators/partitioned. Results stay
  /// bit-identical; partitions are cache-sized, spillable, and chosen from
  /// the ambient query budget.
  bool partitioned_breakers = false;
  /// Optional executor hooks, only consulted when partitioned_breakers is on.
  const BreakerHooks* breaker_hooks = nullptr;

  bool parallel() const { return pool != nullptr && pool->num_threads() > 1; }
};

/// \brief The context's morsel size with the global default applied.
int64_t MorselRows(const ParallelContext& ctx);

/// \brief True when `rows` is worth fanning out under `ctx`.
bool ShouldParallelize(const ParallelContext& ctx, int64_t rows);

/// Morsel-parallel kernels. Every function in this header is *exact*: its
/// result is bit-identical to the corresponding serial kernel in
/// src/kernels, for any thread count and morsel size. Decompositions that
/// cannot be made exact (whole-input floating-point sums, prefix scans) are
/// not parallelized — they delegate to the serial kernel. *Grouped* float
/// sums are exact in parallel: the partition-ordered accumulation in
/// src/operators/partitioned replays each group's additions in serial row
/// order, so segmented/grouped reductions parallelize for every op.

/// \brief Elementwise family (broadcast-aware): rows are independent, so
/// morsels of the output map to morsels of the row-aligned inputs.
Result<Tensor> ParallelBinaryOp(const ParallelContext& ctx, BinaryOpKind op,
                                const Tensor& a, const Tensor& b);
Result<Tensor> ParallelCompare(const ParallelContext& ctx, CompareOpKind op,
                               const Tensor& a, const Tensor& b);
Result<Tensor> ParallelLogical(const ParallelContext& ctx, LogicalOpKind op,
                               const Tensor& a, const Tensor& b);
Result<Tensor> ParallelUnary(const ParallelContext& ctx, UnaryOpKind op,
                             const Tensor& a);
Result<Tensor> ParallelCast(const ParallelContext& ctx, const Tensor& a, DType to);
Result<Tensor> ParallelWhere(const ParallelContext& ctx, const Tensor& cond,
                             const Tensor& a, const Tensor& b);

/// \brief Selection: count per morsel, exclusive scan over morsel counts,
/// then disjoint writes — output order equals the serial (stable) order.
Result<Tensor> ParallelNonzero(const ParallelContext& ctx, const Tensor& mask);
Result<Tensor> ParallelCompress(const ParallelContext& ctx, const Tensor& a,
                                const Tensor& mask);
Result<Tensor> ParallelGather(const ParallelContext& ctx, const Tensor& a,
                              const Tensor& indices);

/// \brief Full reduction. Exact-parallel cases: min/max (order-free),
/// count, and sums of *integer* inputs (double accumulation of integers is
/// exact below 2^53, so the morsel merge order cannot change the result).
/// Floating-point sums fall back to the serial kernel.
Result<Tensor> ParallelReduceAll(const ParallelContext& ctx, ReduceOpKind op,
                                 const Tensor& a);

/// \brief Segmented reduction with per-worker partial accumulator arrays
/// merged at a barrier (the classic morsel-driven aggregation shape).
/// Count/min/max and integer sums merge partials; float sums go through the
/// exact partition-ordered accumulation (each segment's additions happen in
/// serial row order), so no op falls back to a single thread.
Result<Tensor> ParallelSegmentedReduce(const ParallelContext& ctx, ReduceOpKind op,
                                       const Tensor& values,
                                       const Tensor& segment_ids,
                                       int64_t num_segments);

/// \brief Parallel stable argsort: chunks are stable-sorted concurrently and
/// then pairwise stable-merged (ties take the lower chunk, i.e. the lower
/// original index). A stable sort's permutation is unique, so this equals
/// std::stable_sort's answer exactly.
Result<Tensor> ParallelArgsortRows(const ParallelContext& ctx, const Tensor& a,
                                   bool ascending);

/// \brief Binary searches are independent per probe row.
Result<Tensor> ParallelSearchSorted(const ParallelContext& ctx, const Tensor& sorted,
                                    const Tensor& values, bool right);

/// \brief Row concatenation: an exclusive scan over part row counts gives
/// each part's output offset, then parts copy concurrently into disjoint
/// ranges (byte-for-byte the serial kernel's layout, including the
/// zero-padding of narrower uint8 string parts).
Result<Tensor> ParallelConcatRows(const ParallelContext& ctx,
                                  const std::vector<Tensor>& parts);

/// \brief repeat_interleave: a two-pass prefix sum over `counts` (per-morsel
/// totals, exclusive scan over morsels, local rescan) gives every input
/// row's output offset, then rows replicate concurrently into disjoint
/// ranges — exactly the serial row order.
Result<Tensor> ParallelRepeatInterleave(const ParallelContext& ctx, const Tensor& a,
                                        const Tensor& counts);

/// \brief Evaluates one tensor-program op, using the morsel-parallel kernels
/// above where an exact decomposition exists and the serial EvalNode
/// otherwise. Drop-in replacement for EvalNode: bit-identical results.
Result<Tensor> ParallelEvalNode(const ParallelContext& ctx,
                                const TensorProgram& program, const OpNode& node,
                                const std::vector<Tensor>& values);

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_PARALLEL_KERNELS_H_
