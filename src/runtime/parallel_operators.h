#ifndef TQP_RUNTIME_PARALLEL_OPERATORS_H_
#define TQP_RUNTIME_PARALLEL_OPERATORS_H_

#include <vector>

#include "operators/hash_groupby.h"
#include "operators/hash_join.h"
#include "runtime/parallel_kernels.h"

namespace tqp::runtime {

/// Morsel-driven variants of the CPU hash operators. All of them produce
/// output *identical* to their serial counterparts in src/operators (same
/// rows, same order), for any thread count:
///
///  - the build side is radix-partitioned by key hash with a per-morsel
///    histogram + order-preserving scatter, so each partition sees its rows
///    in global row order and reconstructs the exact chain layout the serial
///    build produces;
///  - the probe side is morsel-parallel with per-morsel match buffers
///    concatenated in morsel order, which equals the serial scan order.
///
/// With ctx.partitioned_breakers set, the join and grouping route through
/// the radix-partitioned breakers in src/operators/partitioned (grace hash
/// join, partitioned aggregation): budget-aware partition counts, recursive
/// re-partitioning of skewed partitions, and spillable partition buffers —
/// still bit-identical to the serial operators.

/// \brief Parallel build + probe hash join (see op::HashJoinIndices).
Result<op::JoinIndices> ParallelHashJoinIndices(const ParallelContext& ctx,
                                                const Tensor& left_keys,
                                                const Tensor& right_keys);

/// \brief Parallel semi/anti join (see op::SemiJoinIndices).
Result<Tensor> ParallelSemiJoinIndices(const ParallelContext& ctx,
                                       const Tensor& left_keys,
                                       const Tensor& right_keys, bool anti);

/// \brief Parallel grouping with dense ids in first-seen order (see
/// op::HashGroupIds). Partitions discover their groups independently; a
/// barrier pass re-ranks group ids by first-occurrence row so the output
/// matches the serial scan exactly.
Result<op::GroupIds> ParallelHashGroupIds(const ParallelContext& ctx,
                                          const std::vector<Tensor>& keys);

/// \brief Parallel per-group aggregation (see op::GroupedReduce).
/// Count/min/max and integer sums merge per-worker accumulators at a
/// barrier; float sums go through the exact partition-ordered accumulation
/// (each group's additions replay in serial row order), so no op falls back
/// to a single thread.
Result<Tensor> ParallelGroupedReduce(const ParallelContext& ctx, ReduceOpKind op,
                                     const Tensor& values,
                                     const op::GroupIds& groups);

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_PARALLEL_OPERATORS_H_
