#include "runtime/parallel_kernels.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "graph/eval.h"
#include "kernels/kernels.h"
#include "operators/partitioned/external_sort.h"
#include "operators/partitioned/partitioned_agg.h"
#include "runtime/morsel.h"
#include "tensor/buffer_pool.h"

namespace tqp::runtime {

namespace {

using kernels::BinaryOp;
using kernels::Cast;
using kernels::Compare;
using kernels::Logical;
using kernels::Unary;
using kernels::Where;

}  // namespace

int64_t MorselRows(const ParallelContext& ctx) {
  return ctx.morsel_rows > 0 ? ctx.morsel_rows : DefaultMorselRows();
}

bool ShouldParallelize(const ParallelContext& ctx, int64_t rows) {
  return ctx.parallel() && rows >= ctx.min_parallel_rows &&
         rows > MorselRows(ctx);
}

namespace {

/// Returns `t` restricted to output rows [b, e): sliced when row-aligned with
/// the output, whole when broadcast (1 row) or deliberately global.
Tensor SliceAligned(const Tensor& t, int64_t out_rows, int64_t b, int64_t e) {
  return t.rows() == out_rows ? t.SliceRows(b, e) : t;
}

/// Runs `fn` (a serial kernel over output row range [b, e), returning exactly
/// e - b rows) morsel-parallel and assembles the full output. Morsel 0 runs
/// first on the calling thread to learn the output dtype/cols — this also
/// surfaces validation errors exactly as the serial kernel would.
Result<Tensor> MorselMap(const ParallelContext& ctx, int64_t out_rows,
                         const std::function<Result<Tensor>(int64_t, int64_t)>& fn) {
  if (!ShouldParallelize(ctx, out_rows)) return fn(0, out_rows);
  const int64_t morsel = MorselRows(ctx);
  TQP_ASSIGN_OR_RETURN(Tensor head, fn(0, morsel));
  if (head.rows() != morsel) {
    return Status::Internal("MorselMap: kernel returned wrong row count");
  }
  TQP_ASSIGN_OR_RETURN(
      Tensor out, Tensor::Empty(head.dtype(), out_rows, head.cols(), head.device()));
  const int64_t row_bytes = head.cols() * DTypeSize(head.dtype());
  auto* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  std::memcpy(dst, head.raw_data(), static_cast<size_t>(head.nbytes()));
  Status st = ctx.pool->ParallelFor(
      out_rows - morsel, morsel, [&](int64_t b, int64_t e) -> Status {
        const int64_t begin = b + morsel;
        const int64_t end = e + morsel;
        TQP_ASSIGN_OR_RETURN(Tensor part, fn(begin, end));
        if (part.rows() != end - begin || part.cols() != out.cols() ||
            part.dtype() != out.dtype()) {
          return Status::Internal("MorselMap: inconsistent morsel output");
        }
        std::memcpy(dst + begin * row_bytes, part.raw_data(),
                    static_cast<size_t>(part.nbytes()));
        return Status::OK();
      });
  TQP_RETURN_NOT_OK(st);
  return out;
}

/// Broadcast output rows for a set of inputs where each must either span the
/// output or be a single broadcast row. Returns -1 when the shapes don't fit
/// that pattern (callers then fall back to the serial kernel, which produces
/// the proper error or handles the exotic case).
int64_t AlignedRows(std::initializer_list<const Tensor*> inputs) {
  int64_t rows = 1;
  for (const Tensor* t : inputs) {
    if (t->rows() == 1) continue;
    if (rows == 1) {
      rows = t->rows();
    } else if (t->rows() != rows) {
      return -1;
    }
  }
  return rows;
}

}  // namespace

Result<Tensor> ParallelBinaryOp(const ParallelContext& ctx, BinaryOpKind op,
                                const Tensor& a, const Tensor& b) {
  const int64_t rows = AlignedRows({&a, &b});
  if (rows < 0) return BinaryOp(op, a, b);
  return MorselMap(ctx, rows, [&](int64_t lo, int64_t hi) {
    return BinaryOp(op, SliceAligned(a, rows, lo, hi), SliceAligned(b, rows, lo, hi));
  });
}

Result<Tensor> ParallelCompare(const ParallelContext& ctx, CompareOpKind op,
                               const Tensor& a, const Tensor& b) {
  const int64_t rows = AlignedRows({&a, &b});
  if (rows < 0) return Compare(op, a, b);
  return MorselMap(ctx, rows, [&](int64_t lo, int64_t hi) {
    return Compare(op, SliceAligned(a, rows, lo, hi), SliceAligned(b, rows, lo, hi));
  });
}

Result<Tensor> ParallelLogical(const ParallelContext& ctx, LogicalOpKind op,
                               const Tensor& a, const Tensor& b) {
  const int64_t rows = AlignedRows({&a, &b});
  if (rows < 0) return Logical(op, a, b);
  return MorselMap(ctx, rows, [&](int64_t lo, int64_t hi) {
    return Logical(op, SliceAligned(a, rows, lo, hi), SliceAligned(b, rows, lo, hi));
  });
}

Result<Tensor> ParallelUnary(const ParallelContext& ctx, UnaryOpKind op,
                             const Tensor& a) {
  return MorselMap(ctx, a.rows(), [&](int64_t lo, int64_t hi) {
    return Unary(op, a.SliceRows(lo, hi));
  });
}

Result<Tensor> ParallelCast(const ParallelContext& ctx, const Tensor& a, DType to) {
  if (a.dtype() == to) return a;  // serial fast path: no copy at all
  return MorselMap(ctx, a.rows(), [&](int64_t lo, int64_t hi) {
    return Cast(a.SliceRows(lo, hi), to);
  });
}

Result<Tensor> ParallelWhere(const ParallelContext& ctx, const Tensor& cond,
                             const Tensor& a, const Tensor& b) {
  const int64_t rows = AlignedRows({&cond, &a, &b});
  if (rows < 0) return Where(cond, a, b);
  return MorselMap(ctx, rows, [&](int64_t lo, int64_t hi) {
    return Where(SliceAligned(cond, rows, lo, hi), SliceAligned(a, rows, lo, hi),
                 SliceAligned(b, rows, lo, hi));
  });
}

Result<Tensor> ParallelGather(const ParallelContext& ctx, const Tensor& a,
                              const Tensor& indices) {
  return MorselMap(ctx, indices.rows(), [&](int64_t lo, int64_t hi) {
    return kernels::Gather(a, indices.SliceRows(lo, hi));
  });
}

Result<Tensor> ParallelSearchSorted(const ParallelContext& ctx, const Tensor& sorted,
                                    const Tensor& values, bool right) {
  if (sorted.cols() != 1 || values.cols() != 1 || sorted.dtype() != values.dtype()) {
    return kernels::SearchSorted(sorted, values, right);  // serial error path
  }
  return MorselMap(ctx, values.rows(), [&](int64_t lo, int64_t hi) {
    return kernels::SearchSorted(sorted, values.SliceRows(lo, hi), right);
  });
}

Result<Tensor> ParallelNonzero(const ParallelContext& ctx, const Tensor& mask) {
  if (mask.dtype() != DType::kBool || mask.cols() != 1) {
    return kernels::Nonzero(mask);  // serial error path
  }
  const int64_t n = mask.rows();
  if (!ShouldParallelize(ctx, n)) return kernels::Nonzero(mask);
  const std::vector<RowRange> morsels = PartitionRows(n, MorselRows(ctx));
  const bool* pm = mask.data<bool>();
  // Pass 1: per-morsel true counts.
  std::vector<int64_t> counts(morsels.size(), 0);
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          int64_t c = 0;
          for (int64_t i = morsels[static_cast<size_t>(m)].begin;
               i < morsels[static_cast<size_t>(m)].end; ++i) {
            c += pm[i] ? 1 : 0;
          }
          counts[static_cast<size_t>(m)] = c;
        }
        return Status::OK();
      }));
  // Exclusive scan over morsel counts gives each morsel's output offset.
  std::vector<int64_t> offsets(morsels.size() + 1, 0);
  for (size_t m = 0; m < morsels.size(); ++m) {
    offsets[m + 1] = offsets[m] + counts[m];
  }
  TQP_ASSIGN_OR_RETURN(
      Tensor out, Tensor::Empty(DType::kInt64, offsets.back(), 1, mask.device()));
  int64_t* po = out.mutable_data<int64_t>();
  // Pass 2: disjoint writes; within a morsel, ascending row order — overall
  // output equals the serial scan order.
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          int64_t w = offsets[static_cast<size_t>(m)];
          for (int64_t i = morsels[static_cast<size_t>(m)].begin;
               i < morsels[static_cast<size_t>(m)].end; ++i) {
            if (pm[i]) po[w++] = i;
          }
        }
        return Status::OK();
      }));
  return out;
}

Result<Tensor> ParallelCompress(const ParallelContext& ctx, const Tensor& a,
                                const Tensor& mask) {
  if (mask.dtype() != DType::kBool || mask.cols() != 1 || mask.rows() != a.rows()) {
    return kernels::Compress(a, mask);  // serial error path
  }
  // Same decomposition as the serial kernel (Nonzero then Gather), with each
  // stage morsel-parallel.
  TQP_ASSIGN_OR_RETURN(Tensor idx, ParallelNonzero(ctx, mask));
  return ParallelGather(ctx, a, idx);
}

Result<Tensor> ParallelReduceAll(const ParallelContext& ctx, ReduceOpKind op,
                                 const Tensor& a) {
  // Min/max: int64 -> double rounding is monotone, so min(round(x)) ==
  // round(min(x)) and the per-morsel merge stays exact for every dtype.
  const bool exact_parallel =
      op == ReduceOpKind::kMin || op == ReduceOpKind::kMax ||
      (op == ReduceOpKind::kSum && !IsFloatingPoint(a.dtype()));
  if (!exact_parallel || a.cols() != 1 || a.numel() == 0 ||
      !ShouldParallelize(ctx, a.rows())) {
    return kernels::ReduceAll(op, a);
  }
  const std::vector<RowRange> morsels = PartitionRows(a.rows(), MorselRows(ctx));
  std::vector<double> partials(morsels.size(), 0.0);
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          const RowRange r = morsels[static_cast<size_t>(m)];
          TQP_ASSIGN_OR_RETURN(Tensor part,
                               kernels::ReduceAll(op, a.SliceRows(r.begin, r.end)));
          partials[static_cast<size_t>(m)] = part.ScalarAsDouble(0);
        }
        return Status::OK();
      }));
  // Merge in morsel (= row) order. Min/max are order-free; integer sums are
  // exact in double below 2^53, so this matches the serial left-to-right scan.
  double acc = partials[0];
  for (size_t m = 1; m < partials.size(); ++m) {
    if (op == ReduceOpKind::kSum) {
      acc += partials[m];
    } else if (op == ReduceOpKind::kMin) {
      acc = std::min(acc, partials[m]);
    } else {
      acc = std::max(acc, partials[m]);
    }
  }
  const DType dt = op == ReduceOpKind::kSum ? DType::kFloat64 : a.dtype();
  return Tensor::Full(dt, 1, 1, acc, a.device());
}

Result<Tensor> ParallelSegmentedReduce(const ParallelContext& ctx, ReduceOpKind op,
                                       const Tensor& values,
                                       const Tensor& segment_ids,
                                       int64_t num_segments) {
  const bool float_sum =
      op == ReduceOpKind::kSum && IsFloatingPoint(values.dtype());
  const bool exact_parallel =
      op == ReduceOpKind::kCount || op == ReduceOpKind::kMin ||
      op == ReduceOpKind::kMax || op == ReduceOpKind::kSum;
  const int64_t n = values.rows();
  // Partial accumulator arrays cost slots * num_segments doubles; past ~64 MiB
  // total the merge pass stops paying for itself. The partition-ordered
  // float-sum path uses no per-slot arrays, so it is exempt.
  const bool partials_fit =
      ctx.pool != nullptr &&
      (float_sum ||
       num_segments <=
           (int64_t{1} << 23) / std::max(1, ctx.pool->max_parallel_slots()));
  if (!exact_parallel || !partials_fit || !ShouldParallelize(ctx, n) ||
      segment_ids.dtype() != DType::kInt64 || segment_ids.cols() != 1 ||
      values.cols() != 1 || segment_ids.rows() != n || num_segments <= 0) {
    return kernels::SegmentedReduce(op, values, segment_ids, num_segments);
  }
  if (float_sum) {
    // Exact: each segment's additions replay in serial row order.
    TQP_ASSIGN_OR_RETURN(Tensor cv, ParallelCast(ctx, values, DType::kFloat64));
    return op::partitioned::PartitionOrderedFloatSums(ctx, cv, segment_ids,
                                                      num_segments,
                                                      /*validate=*/true);
  }
  const int64_t* seg = segment_ids.data<int64_t>();
  const int slots = ctx.pool->max_parallel_slots();
  const size_t g = static_cast<size_t>(num_segments);

  if (op == ReduceOpKind::kCount) {
    std::vector<std::vector<int64_t>> partial(static_cast<size_t>(slots));
    TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
        n, MorselRows(ctx), [&](int64_t b, int64_t e, int slot) -> Status {
          auto& acc = partial[static_cast<size_t>(slot)];
          if (acc.empty()) acc.assign(g, 0);
          for (int64_t i = b; i < e; ++i) {
            if (seg[i] < 0 || seg[i] >= num_segments) {
              return Status::IndexError("segment id out of range");
            }
            ++acc[static_cast<size_t>(seg[i])];
          }
          return Status::OK();
        }));
    TQP_ASSIGN_OR_RETURN(
        Tensor out, Tensor::Full(DType::kInt64, num_segments, 1, 0, values.device()));
    int64_t* o = out.mutable_data<int64_t>();
    for (const auto& acc : partial) {
      if (acc.empty()) continue;
      for (size_t s = 0; s < g; ++s) o[s] += acc[s];
    }
    return out;
  }

  // Sum/min/max accumulate in float64, exactly as the serial kernel does.
  TQP_ASSIGN_OR_RETURN(Tensor cv, ParallelCast(ctx, values, DType::kFloat64));
  const double* pv = cv.data<double>();
  const bool is_sum = op == ReduceOpKind::kSum;
  const double init = is_sum ? 0.0
                             : (op == ReduceOpKind::kMin
                                    ? std::numeric_limits<double>::infinity()
                                    : -std::numeric_limits<double>::infinity());
  std::vector<std::vector<double>> partial(static_cast<size_t>(slots));
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      n, MorselRows(ctx), [&](int64_t b, int64_t e, int slot) -> Status {
        auto& acc = partial[static_cast<size_t>(slot)];
        if (acc.empty()) acc.assign(g, init);
        for (int64_t i = b; i < e; ++i) {
          const int64_t s = seg[i];
          if (s < 0 || s >= num_segments) {
            return Status::IndexError("segment id out of range");
          }
          if (is_sum) {
            acc[static_cast<size_t>(s)] += pv[i];
          } else if (op == ReduceOpKind::kMin) {
            acc[static_cast<size_t>(s)] = std::min(acc[static_cast<size_t>(s)], pv[i]);
          } else {
            acc[static_cast<size_t>(s)] = std::max(acc[static_cast<size_t>(s)], pv[i]);
          }
        }
        return Status::OK();
      }));
  TQP_ASSIGN_OR_RETURN(
      Tensor acc_t, Tensor::Full(DType::kFloat64, num_segments, 1, init, values.device()));
  double* o = acc_t.mutable_data<double>();
  for (const auto& acc : partial) {
    if (acc.empty()) continue;
    for (size_t s = 0; s < g; ++s) {
      if (is_sum) {
        o[s] += acc[s];
      } else if (op == ReduceOpKind::kMin) {
        o[s] = std::min(o[s], acc[s]);
      } else {
        o[s] = std::max(o[s], acc[s]);
      }
    }
  }
  if (!is_sum) {
    // Empty segments become 0, matching the serial kernel.
    for (size_t s = 0; s < g; ++s) {
      if (o[s] == init) o[s] = 0.0;
    }
  }
  const DType out_dt = is_sum ? DType::kFloat64 : values.dtype();
  return Cast(acc_t, out_dt);
}

Result<Tensor> ParallelConcatRows(const ParallelContext& ctx,
                                  const std::vector<Tensor>& parts) {
  if (parts.empty()) return kernels::ConcatRows(parts);  // serial error path
  const DType dt = parts[0].dtype();
  int64_t m = parts[0].cols();
  int64_t total = 0;
  for (const Tensor& t : parts) {
    if (t.dtype() != dt) return kernels::ConcatRows(parts);  // serial error path
    if (t.cols() != m) {
      if (dt != DType::kUInt8) return kernels::ConcatRows(parts);
      m = std::max(m, t.cols());
    }
    total += t.rows();
  }
  if (!ShouldParallelize(ctx, total)) return kernels::ConcatRows(parts);
  // Exclusive scan over part row counts: each part's output row offset.
  std::vector<int64_t> row_offsets(parts.size() + 1, 0);
  for (size_t i = 0; i < parts.size(); ++i) {
    row_offsets[i + 1] = row_offsets[i] + parts[i].rows();
  }
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(dt, total, m, parts[0].device()));
  const int64_t elem = DTypeSize(dt);
  const int64_t out_row_bytes = m * elem;
  uint8_t* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  // Parts copy concurrently into disjoint row ranges; the wide parts go
  // through one big memcpy, narrower uint8 parts pad per row like the serial
  // kernel (Tensor::Empty memory is already zeroed, so the pad bytes hold).
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(parts.size()), 1,
      [&](int64_t pb, int64_t pe) -> Status {
        for (int64_t pi = pb; pi < pe; ++pi) {
          const Tensor& t = parts[static_cast<size_t>(pi)];
          uint8_t* base = dst + row_offsets[static_cast<size_t>(pi)] * out_row_bytes;
          if (t.cols() == m) {
            if (t.nbytes() > 0) {
              std::memcpy(base, t.raw_data(), static_cast<size_t>(t.nbytes()));
            }
            continue;
          }
          const auto* src = static_cast<const uint8_t*>(t.raw_data());
          const size_t row_bytes = static_cast<size_t>(t.cols() * elem);
          for (int64_t r = 0; r < t.rows(); ++r) {
            std::memcpy(base + r * out_row_bytes,
                        src + static_cast<size_t>(r) * row_bytes, row_bytes);
          }
        }
        return Status::OK();
      }));
  return out;
}

Result<Tensor> ParallelRepeatInterleave(const ParallelContext& ctx, const Tensor& a,
                                        const Tensor& counts) {
  if (counts.dtype() != DType::kInt64 || counts.cols() != 1 ||
      counts.rows() != a.rows() || !ShouldParallelize(ctx, a.rows())) {
    return kernels::RepeatInterleave(a, counts);  // serial / error path
  }
  const int64_t n = a.rows();
  const int64_t* pc = counts.data<int64_t>();
  const std::vector<RowRange> morsels = PartitionRows(n, MorselRows(ctx));
  // Pass 1: per-morsel count totals (validating non-negative counts).
  std::vector<int64_t> morsel_totals(morsels.size(), 0);
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t mi = mb; mi < me; ++mi) {
          const RowRange r = morsels[static_cast<size_t>(mi)];
          int64_t sum = 0;
          for (int64_t i = r.begin; i < r.end; ++i) {
            if (pc[i] < 0) {
              return Status::Invalid("RepeatInterleave: negative count");
            }
            sum += pc[i];
          }
          morsel_totals[static_cast<size_t>(mi)] = sum;
        }
        return Status::OK();
      }));
  // Exclusive scan over morsel totals gives each morsel's output offset.
  std::vector<int64_t> morsel_offsets(morsels.size() + 1, 0);
  for (size_t mi = 0; mi < morsels.size(); ++mi) {
    morsel_offsets[mi + 1] = morsel_offsets[mi] + morsel_totals[mi];
  }
  const int64_t total = morsel_offsets.back();
  const int64_t row_bytes = a.cols() * DTypeSize(a.dtype());
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(a.dtype(), total, a.cols(), a.device()));
  const uint8_t* src = static_cast<const uint8_t*>(a.raw_data());
  uint8_t* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  // Pass 2: local rescan per morsel; every input row writes its replicas at
  // a disjoint offset, reproducing the serial row order exactly.
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t mi = mb; mi < me; ++mi) {
          const RowRange r = morsels[static_cast<size_t>(mi)];
          uint8_t* w = dst + morsel_offsets[static_cast<size_t>(mi)] * row_bytes;
          for (int64_t i = r.begin; i < r.end; ++i) {
            for (int64_t rep = 0; rep < pc[i]; ++rep) {
              std::memcpy(w, src + i * row_bytes, static_cast<size_t>(row_bytes));
              w += row_bytes;
            }
          }
        }
        return Status::OK();
      }));
  return out;
}

namespace {

// Three-way lexicographic row comparison, mirroring src/kernels/sort.cc.
template <typename T>
int CompareRows(const T* p, int64_t cols, int64_t i, int64_t j) {
  const T* ri = p + i * cols;
  const T* rj = p + j * cols;
  for (int64_t c = 0; c < cols; ++c) {
    if (ri[c] < rj[c]) return -1;
    if (rj[c] < ri[c]) return 1;
  }
  return 0;
}

template <typename T>
Status ParallelStableArgsortTyped(const ParallelContext& ctx, const Tensor& a,
                                  bool ascending, int64_t* out) {
  const int64_t n = a.rows();
  const T* p = a.data<T>();
  const int64_t cols = a.cols();
  auto cmp = [p, cols, ascending](int64_t i, int64_t j) {
    const int c = CompareRows<T>(p, cols, i, j);
    return ascending ? c < 0 : c > 0;
  };
  // Fixed chunking: enough chunks to keep every worker busy, but each chunk
  // big enough that the O(n log n) sort dominates the O(n) merge rounds.
  const int64_t target_chunks =
      std::min<int64_t>(2 * ctx.pool->num_threads(),
                        std::max<int64_t>(1, n / ctx.min_parallel_rows));
  const int64_t chunk = (n + target_chunks - 1) / target_chunks;
  std::iota(out, out + n, int64_t{0});
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(n, chunk, [&](int64_t b, int64_t e) -> Status {
    std::stable_sort(out + b, out + e, cmp);
    return Status::OK();
  }));
  // Pairwise stable merge rounds. std::merge takes from the first range on
  // ties, and every index in the left chunk is smaller than every index in
  // the right chunk, so the final permutation is *the* stable permutation —
  // identical to a single std::stable_sort.
  std::vector<int64_t> scratch(static_cast<size_t>(n));
  int64_t* src = out;
  int64_t* dst = scratch.data();
  for (int64_t width = chunk; width < n; width *= 2) {
    const int64_t pairs = (n + 2 * width - 1) / (2 * width);
    TQP_RETURN_NOT_OK(
        ctx.pool->ParallelFor(pairs, 1, [&](int64_t pb, int64_t pe) -> Status {
          for (int64_t pr = pb; pr < pe; ++pr) {
            const int64_t lo = pr * 2 * width;
            const int64_t mid = std::min(n, lo + width);
            const int64_t hi = std::min(n, lo + 2 * width);
            std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, cmp);
          }
          return Status::OK();
        }));
    std::swap(src, dst);
  }
  if (src != out) std::memcpy(out, src, static_cast<size_t>(n) * sizeof(int64_t));
  return Status::OK();
}

}  // namespace

Result<Tensor> ParallelArgsortRows(const ParallelContext& ctx, const Tensor& a,
                                   bool ascending) {
  if (!ShouldParallelize(ctx, a.rows())) {
    return kernels::ArgsortRows(a, ascending);
  }
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kInt64, a.rows(), 1, a.device()));
  int64_t* po = out.mutable_data<int64_t>();
  Status st;
  switch (a.dtype()) {
    case DType::kBool:
      st = ParallelStableArgsortTyped<bool>(ctx, a, ascending, po);
      break;
    case DType::kUInt8:
      st = ParallelStableArgsortTyped<uint8_t>(ctx, a, ascending, po);
      break;
    case DType::kInt32:
      st = ParallelStableArgsortTyped<int32_t>(ctx, a, ascending, po);
      break;
    case DType::kInt64:
      st = ParallelStableArgsortTyped<int64_t>(ctx, a, ascending, po);
      break;
    case DType::kFloat32:
      st = ParallelStableArgsortTyped<float>(ctx, a, ascending, po);
      break;
    case DType::kFloat64:
      st = ParallelStableArgsortTyped<double>(ctx, a, ascending, po);
      break;
  }
  TQP_RETURN_NOT_OK(st);
  return out;
}

Result<Tensor> ParallelEvalNode(const ParallelContext& ctx,
                                const TensorProgram& program, const OpNode& node,
                                const std::vector<Tensor>& values) {
  auto in = [&](int i) -> const Tensor& {
    return values[static_cast<size_t>(node.inputs[static_cast<size_t>(i)])];
  };
  // Partitioned breakers engage even with a 1-thread pool: the external merge
  // sort's budget-sized spillable runs matter for memory, not just speed.
  if (ctx.partitioned_breakers && ctx.pool != nullptr &&
      node.type == OpType::kArgsortRows &&
      in(0).rows() >= ctx.min_parallel_rows) {
    op::partitioned::PartitionConfig config;
    auto* scope = BufferPool::QueryScope::Current();
    config.budget_bytes = scope != nullptr ? scope->budget_bytes() : 0;
    config.forced_bits = op::partitioned::ForcedPartitionBits();
    std::function<void()> release;
    if (ctx.breaker_hooks != nullptr && ctx.breaker_hooks->release_input) {
      release = [&ctx, slot = node.inputs[0]] {
        ctx.breaker_hooks->release_input(static_cast<int>(slot));
      };
    }
    return op::partitioned::ExternalSortRows(ctx, in(0),
                                             node.attrs.GetBool("ascending"),
                                             config, nullptr, release);
  }
  if (ctx.parallel()) {
    switch (node.type) {
      case OpType::kBinary:
        return ParallelBinaryOp(ctx,
                                static_cast<BinaryOpKind>(node.attrs.GetInt("op")),
                                in(0), in(1));
      case OpType::kCompare:
        return ParallelCompare(ctx,
                               static_cast<CompareOpKind>(node.attrs.GetInt("op")),
                               in(0), in(1));
      case OpType::kLogical:
        return ParallelLogical(ctx,
                               static_cast<LogicalOpKind>(node.attrs.GetInt("op")),
                               in(0), in(1));
      case OpType::kUnary:
        return ParallelUnary(ctx, static_cast<UnaryOpKind>(node.attrs.GetInt("op")),
                             in(0));
      case OpType::kCast:
        return ParallelCast(ctx, in(0),
                            static_cast<DType>(node.attrs.GetInt("dtype")));
      case OpType::kWhere:
        return ParallelWhere(ctx, in(0), in(1), in(2));
      case OpType::kNonzero:
        return ParallelNonzero(ctx, in(0));
      case OpType::kCompress:
        return ParallelCompress(ctx, in(0), in(1));
      case OpType::kGather:
        return ParallelGather(ctx, in(0), in(1));
      case OpType::kConcatRows: {
        std::vector<Tensor> parts;
        parts.reserve(node.inputs.size());
        for (size_t i = 0; i < node.inputs.size(); ++i) {
          parts.push_back(in(static_cast<int>(i)));
        }
        return ParallelConcatRows(ctx, parts);
      }
      case OpType::kRepeatInterleave:
        return ParallelRepeatInterleave(ctx, in(0), in(1));
      case OpType::kReduceAll:
        return ParallelReduceAll(
            ctx, static_cast<ReduceOpKind>(node.attrs.GetInt("op")), in(0));
      case OpType::kSegmentedReduce: {
        const Tensor& count = in(2);
        if (count.numel() != 1) break;  // serial error path
        return ParallelSegmentedReduce(
            ctx, static_cast<ReduceOpKind>(node.attrs.GetInt("op")), in(0), in(1),
            count.ScalarAsInt64(0));
      }
      case OpType::kArgsortRows:
        return ParallelArgsortRows(ctx, in(0), node.attrs.GetBool("ascending"));
      case OpType::kSearchSorted:
        return ParallelSearchSorted(ctx, in(0), in(1), node.attrs.GetBool("right"));
      case OpType::kHashRows:
        return MorselMap(ctx, in(0).rows(), [&](int64_t lo, int64_t hi) {
          return kernels::HashRows(in(0).SliceRows(lo, hi));
        });
      case OpType::kHashCombine: {
        const Tensor& h = in(0);
        const Tensor& x = in(1);
        if (h.rows() != x.rows()) break;  // serial error path
        return MorselMap(ctx, h.rows(), [&](int64_t lo, int64_t hi) {
          return kernels::HashCombine(h.SliceRows(lo, hi), x.SliceRows(lo, hi));
        });
      }
      case OpType::kGatherCols: {
        const Tensor& t = in(0);
        const Tensor& idx = in(1);
        if (t.rows() != idx.rows()) break;  // serial error path
        return MorselMap(ctx, t.rows(), [&](int64_t lo, int64_t hi) {
          return kernels::GatherCols(t.SliceRows(lo, hi), idx.SliceRows(lo, hi));
        });
      }
      case OpType::kMatMul: {
        const Tensor& a = in(0);
        const Tensor& b = in(1);
        return MorselMap(ctx, a.rows(), [&](int64_t lo, int64_t hi) {
          return kernels::MatMul(a.SliceRows(lo, hi), b);
        });
      }
      case OpType::kMatMulAddBias: {
        const Tensor& a = in(0);
        const Tensor& b = in(1);
        const Tensor& bias = in(2);
        return MorselMap(ctx, a.rows(), [&](int64_t lo, int64_t hi) {
          return kernels::MatMulAddBias(a.SliceRows(lo, hi), b, bias);
        });
      }
      case OpType::kEmbeddingBagSum: {
        const Tensor& table = in(0);
        const Tensor& ids = in(1);
        return MorselMap(ctx, ids.rows(), [&](int64_t lo, int64_t hi) {
          return kernels::EmbeddingBagSum(table, ids.SliceRows(lo, hi));
        });
      }
      case OpType::kStringCompareScalar:
        return MorselMap(ctx, in(0).rows(), [&](int64_t lo, int64_t hi) {
          return kernels::StringCompareScalar(
              static_cast<CompareOpKind>(node.attrs.GetInt("op")),
              in(0).SliceRows(lo, hi), node.attrs.GetString("literal"));
        });
      case OpType::kStringCompare: {
        const Tensor& a = in(0);
        const Tensor& b = in(1);
        if (a.rows() != b.rows()) break;  // serial error path
        return MorselMap(ctx, a.rows(), [&](int64_t lo, int64_t hi) {
          return kernels::StringCompare(
              static_cast<CompareOpKind>(node.attrs.GetInt("op")),
              a.SliceRows(lo, hi), b.SliceRows(lo, hi));
        });
      }
      case OpType::kStringLike:
        return MorselMap(ctx, in(0).rows(), [&](int64_t lo, int64_t hi) {
          return kernels::StringLike(in(0).SliceRows(lo, hi),
                                     node.attrs.GetString("pattern"));
        });
      case OpType::kSubstring:
        return MorselMap(ctx, in(0).rows(), [&](int64_t lo, int64_t hi) {
          return kernels::Substring(in(0).SliceRows(lo, hi),
                                    node.attrs.GetInt("start"),
                                    node.attrs.GetInt("len"));
        });
      case OpType::kHashTokenize:
        return MorselMap(ctx, in(0).rows(), [&](int64_t lo, int64_t hi) {
          return kernels::HashTokenize(in(0).SliceRows(lo, hi),
                                       node.attrs.GetInt("vocab"),
                                       node.attrs.GetInt("max_tokens"));
        });
      default:
        break;  // sequential-by-nature ops (prefix scans, unique, boundaries)
    }
  }
  return EvalNode(program, node, values);
}

}  // namespace tqp::runtime
