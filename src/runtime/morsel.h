#ifndef TQP_RUNTIME_MORSEL_H_
#define TQP_RUNTIME_MORSEL_H_

#include <cstdint>
#include <vector>

#include "common/sync.h"

namespace tqp::runtime {

/// Morsel-driven parallelism (Leis et al., SIGMOD'14) adapted to the tensor
/// setting: inputs are partitioned into fixed-size row ranges ("morsels") that
/// workers claim dynamically, so skewed kernels load-balance without any
/// up-front cost model.

/// \brief Half-open row range [begin, end) — one unit of work.
struct RowRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// \brief Default rows per morsel. Overridable per executor via
/// ExecOptions::morsel_rows and globally via the TQP_MORSEL_ROWS env var.
/// 16k rows of an 8-byte column is 128 KiB — roughly half an L2 slice, so a
/// morsel's input and output both stay cache-resident.
int64_t DefaultMorselRows();

/// \brief Splits [0, rows) into morsels of at most `morsel_rows` rows.
/// `morsel_rows <= 0` selects DefaultMorselRows().
std::vector<RowRange> PartitionRows(int64_t rows, int64_t morsel_rows);

/// \brief Whether adaptive morsel sizing is on by default for executors that
/// left ExecOptions::adaptive_morsels unset (TQP_ADAPTIVE_MORSEL=1).
bool DefaultAdaptiveMorsels();

/// \brief Service-time-driven morsel sizing: observes per-morsel wall times
/// and steers the morsel size toward a target per-morsel service time
/// (~1 ms), so cheap chains get large morsels (amortized dispatch) and
/// expensive chains get small ones (load balance, cache residency).
///
/// The recommendation only moves geometrically (at most 2x per adjustment)
/// and stays inside [kMinRows, kMaxRows], so one noisy observation cannot
/// swing it. Results are unaffected by construction: executors read rows()
/// once per pipeline run and chunk assembly is bit-identical at any morsel
/// size — only wall time and scheduling granularity change.
class AdaptiveMorselController {
 public:
  static constexpr int64_t kMinRows = 256;
  static constexpr int64_t kMaxRows = int64_t{1} << 20;
  static constexpr int64_t kTargetNanos = 1'000'000;  // ~1 ms per morsel

  explicit AdaptiveMorselController(int64_t initial_rows);

  /// Current recommendation (clamped to [kMinRows, kMaxRows]).
  int64_t rows() const;

  /// Feeds one completed morsel's size and wall time. Thread-safe; called
  /// from worker threads as morsels finish.
  void Observe(int64_t rows, int64_t wall_nanos);

 private:
  mutable Mutex mu_;
  int64_t rows_ TQP_GUARDED_BY(mu_);
  /// < 0 until the first observation.
  double ewma_nanos_per_row_ TQP_GUARDED_BY(mu_) = -1.0;
};

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_MORSEL_H_
