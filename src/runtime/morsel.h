#ifndef TQP_RUNTIME_MORSEL_H_
#define TQP_RUNTIME_MORSEL_H_

#include <cstdint>
#include <vector>

namespace tqp::runtime {

/// Morsel-driven parallelism (Leis et al., SIGMOD'14) adapted to the tensor
/// setting: inputs are partitioned into fixed-size row ranges ("morsels") that
/// workers claim dynamically, so skewed kernels load-balance without any
/// up-front cost model.

/// \brief Half-open row range [begin, end) — one unit of work.
struct RowRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// \brief Default rows per morsel. Overridable per executor via
/// ExecOptions::morsel_rows and globally via the TQP_MORSEL_ROWS env var.
/// 16k rows of an 8-byte column is 128 KiB — roughly half an L2 slice, so a
/// morsel's input and output both stay cache-resident.
int64_t DefaultMorselRows();

/// \brief Splits [0, rows) into morsels of at most `morsel_rows` rows.
/// `morsel_rows <= 0` selects DefaultMorselRows().
std::vector<RowRange> PartitionRows(int64_t rows, int64_t morsel_rows);

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_MORSEL_H_
