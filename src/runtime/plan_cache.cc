#include "runtime/plan_cache.h"

#include <cctype>
#include <cstdint>

#include "obs/metrics.h"
#include "operators/partitioned/partition.h"

namespace tqp::runtime {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (in_string) {
      out.push_back(c);
      // '' is an escaped quote inside a literal, not a terminator.
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out.push_back(sql[++i]);
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') {
      in_string = true;
      out.push_back(c);
      continue;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  // Trailing ';' (and any space before it) does not change the statement.
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

std::string PlanCache::MakeKey(const std::string& normalized_sql,
                               const CompileOptions& options) {
  // Every option that shapes the compiled artifact participates in the key:
  // target/device pick the executor, num_threads/morsel_rows are baked into
  // a Parallel/Pipelined executor, and an explicit shared pool is bound at
  // construction (a cache shared across schedulers must never hand one
  // scheduler an executor wired to another's pool).
  std::string key = normalized_sql;
  key.push_back('\x1f');
  key += std::to_string(static_cast<int>(options.target));
  key.push_back('/');
  key += std::to_string(static_cast<int>(options.device));
  key.push_back('/');
  key += std::to_string(options.num_threads);
  key.push_back('/');
  key += std::to_string(options.morsel_rows);
  key.push_back('/');
  key += std::to_string(reinterpret_cast<uintptr_t>(options.pool));
  key.push_back('/');
  key += options.pipeline_overlap ? '1' : '0';
  key.push_back('/');
  key += options.expr_fusion ? '1' : '0';
  key.push_back('/');
  // Resolved, not raw: two sessions with kDefault under different
  // TQP_EXPR_BACKEND values never share a process, and within one process
  // the resolution is stable — so kDefault and its resolution are the same
  // artifact.
  key += std::to_string(static_cast<int>(ResolveExprBackend(options.expr_backend)));
  key.push_back('/');
  key += options.adaptive_morsels ? '1' : '0';
  key.push_back('/');
  // Resolved like expr_backend: the TQP_PARTITIONED_BREAKERS default is
  // stable within a process, so the unset option and its resolution are the
  // same compiled artifact.
  key += (options.partitioned_breakers ||
          op::partitioned::DefaultPartitionedBreakers())
             ? '1'
             : '0';
  key.push_back('/');
  key += std::to_string(reinterpret_cast<uintptr_t>(options.step_scheduler));
  key.push_back('/');
  key += std::to_string(options.memory_budget_bytes);
  key.push_back('/');
  key += std::to_string(options.deadline_ms);
  return key;
}

std::shared_ptr<const CompiledQuery> PlanCache::Lookup(
    const std::string& normalized_sql, const CompileOptions& options) {
  const std::string key = MakeKey(normalized_sql, options);
  MutexLock lock(mu_);
  auto it = index_.find(key);
  // Process-wide mirror of the per-cache counters (all PlanCaches sum here).
  static obs::Counter* hits_metric = obs::MetricsRegistry::Global()->GetCounter(
      "tqp_plan_cache_hits_total", "Compiled-plan cache lookup hits");
  static obs::Counter* misses_metric =
      obs::MetricsRegistry::Global()->GetCounter(
          "tqp_plan_cache_misses_total", "Compiled-plan cache lookup misses");
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric->Add(1);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hits_metric->Add(1);
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  return it->second->plan;
}

void PlanCache::Insert(const std::string& normalized_sql,
                       const CompileOptions& options,
                       std::shared_ptr<const CompiledQuery> plan) {
  if (capacity_ == 0) return;
  const std::string key = MakeKey(normalized_sql, options);
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace tqp::runtime
