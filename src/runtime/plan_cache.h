#ifndef TQP_RUNTIME_PLAN_CACHE_H_
#define TQP_RUNTIME_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/sync.h"
#include "compile/compiler.h"

namespace tqp::runtime {

/// \brief Canonical form of a SQL statement for plan-cache keying: lowercases
/// everything outside single-quoted literals, collapses whitespace runs to
/// one space, trims, and drops a trailing semicolon. Two statements differing
/// only in case/whitespace share one cache entry.
std::string NormalizeSql(const std::string& sql);

/// \brief Thread-safe LRU cache of compiled queries, keyed on normalized SQL
/// text plus every CompileOptions field baked into the compiled artifact
/// (target, device, num_threads, morsel_rows).
///
/// Entries are shared_ptr<const CompiledQuery>: executors keep no per-run
/// state, so concurrent sessions can Run() one cached plan simultaneously.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// \brief Returns the cached plan for (sql, options) or null.
  std::shared_ptr<const CompiledQuery> Lookup(const std::string& normalized_sql,
                                              const CompileOptions& options);

  /// \brief Inserts (replacing any same-key entry), evicting the least
  /// recently used entry when over capacity. No-op for capacity 0.
  void Insert(const std::string& normalized_sql, const CompileOptions& options,
              std::shared_ptr<const CompiledQuery> plan);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  static std::string MakeKey(const std::string& normalized_sql,
                             const CompileOptions& options);

  struct Entry {
    std::string key;
    std::shared_ptr<const CompiledQuery> plan;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  std::list<Entry> lru_ TQP_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      TQP_GUARDED_BY(mu_);
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_PLAN_CACHE_H_
