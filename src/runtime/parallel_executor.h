#ifndef TQP_RUNTIME_PARALLEL_EXECUTOR_H_
#define TQP_RUNTIME_PARALLEL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/executor.h"
#include "runtime/parallel_kernels.h"
#include "runtime/thread_pool.h"

namespace tqp {

/// \brief Morsel-driven multi-core executor (the src/runtime subsystem's
/// entry point into the executor registry).
///
/// Two axes of parallelism, both on the same work-stealing pool:
///  - *Inter-op*: the tensor program runs as a TaskGraph — independent
///    subtrees (join sides, per-aggregate branches) execute concurrently.
///  - *Intra-op*: each node evaluates through ParallelEvalNode, which fans
///    the hot kernels out over row morsels.
///
/// Results are bit-identical to EagerExecutor/InterpExecutor for any thread
/// count and morsel size: only decompositions that are exactly associative
/// (or produce per-row-independent outputs) are parallelized; everything
/// else runs the shared serial kernels.
///
/// Intermediate values carry last-use refcounts: a node's output releases
/// back to the BufferPool the moment its final consumer finishes (program
/// outputs stay pinned), so this path's peak-allocation proxy is comparable
/// to the pipelined executor's eager-release schedule. When
/// ExecOptions::step_scheduler is set, node tasks dispatch through the
/// shared priority-aware StepScheduler and interleave with other queries'
/// steps by QueryPriority class.
///
/// Scheduling comes from ExecOptions: an explicit `pool` (the shared
/// cross-query pool of the QueryScheduler) wins; otherwise num_threads picks
/// one — 0 uses the process-wide pool, 1 runs serially (no pool), N > 1
/// creates a private N-thread pool owned by this executor. Run() is safe to
/// call from concurrent threads (the QuerySession layer shares cached
/// executors across queries).
class ParallelExecutor : public Executor {
 public:
  ParallelExecutor(std::shared_ptr<const TensorProgram> program,
                   ExecOptions options);

  Result<std::vector<Tensor>> Run(const std::vector<Tensor>& inputs) override;
  std::string name() const override { return "parallel"; }
  ExecutorTarget target() const override { return ExecutorTarget::kParallel; }

  /// \brief The pool this executor schedules on (null when running serially).
  runtime::ThreadPool* pool() const { return pool_; }
  int64_t morsel_rows() const;

 private:
  std::shared_ptr<const TensorProgram> program_;
  ExecOptions options_;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;  // when num_threads > 1
  runtime::ThreadPool* pool_ = nullptr;              // owned or global; may be null
};

}  // namespace tqp

#endif  // TQP_RUNTIME_PARALLEL_EXECUTOR_H_
