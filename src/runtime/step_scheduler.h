#ifndef TQP_RUNTIME_STEP_SCHEDULER_H_
#define TQP_RUNTIME_STEP_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/sync.h"
#include "runtime/thread_pool.h"

namespace tqp::runtime {

/// \brief Priority-aware dispatch of fine-grained execution steps onto one
/// shared ThreadPool.
///
/// The work-stealing pool itself is priority-blind: once a task is in a
/// worker deque its position is fixed. The StepScheduler therefore keeps
/// *ready* steps in per-priority FIFO queues of its own and feeds the pool
/// with at most `max_inflight` small "pump" tasks; each pump pops the
/// highest-priority ready step, runs it, and re-submits itself while work
/// remains. Priority selection thus happens at pop time — when the pool is
/// saturated, a queued step of a high-priority query always starts before a
/// queued step of a low-priority one, regardless of submission order.
///
/// One pump runs exactly one step per pool task. That keeps cooperative
/// waiters (TaskGraph::Run, ParallelFor) from being captured by an unbounded
/// drain loop when they help out via TryRunOneTask, and re-applies priority
/// selection between every two steps.
///
/// This is the mechanism behind cross-query step interleaving: every query
/// admitted by a QueryScheduler tags its execution-DAG steps with the query's
/// QueryPriority (via the ambient ScopedPriority below), and all queries'
/// steps merge into these queues instead of each query running as one opaque
/// pool task.
class StepScheduler {
 public:
  /// Mirrors runtime::QueryPriority (kLow=0 < kNormal=1 < kHigh=2) without
  /// depending on the session layer.
  static constexpr int kNumPriorities = 3;

  /// `max_inflight <= 0` selects pool->num_threads(): enough pumps to keep
  /// every worker busy, few enough that ready queues stay the point of
  /// priority choice.
  explicit StepScheduler(ThreadPool* pool, int max_inflight = 0);

  /// Drains: waits until every dispatched pump has retired (pumps reference
  /// this object). Runs pool tasks while waiting, so destruction from a pool
  /// worker cannot self-deadlock.
  ~StepScheduler();

  StepScheduler(const StepScheduler&) = delete;
  StepScheduler& operator=(const StepScheduler&) = delete;

  /// \brief Enqueues one step. Among steps that are ready but not yet
  /// running, higher `priority` always starts first (FIFO within a class).
  /// Never blocks. `priority` is clamped to [0, kNumPriorities).
  void Submit(std::function<void()> step, int priority);

  ThreadPool* pool() const { return pool_; }

  /// \brief Steps submitted per priority class since construction.
  std::array<int64_t, kNumPriorities> submitted() const;
  /// \brief Steps that finished executing since construction.
  int64_t executed() const;

  /// \brief RAII ambient priority for the calling thread. The QueryScheduler
  /// wraps a query's execution in one of these so executors deep in the call
  /// stack (TaskGraph::Run(StepScheduler*)) tag their step tasks with the
  /// query's admission priority without threading a parameter through every
  /// layer.
  class ScopedPriority {
   public:
    explicit ScopedPriority(int priority);
    ~ScopedPriority();
    ScopedPriority(const ScopedPriority&) = delete;
    ScopedPriority& operator=(const ScopedPriority&) = delete;

   private:
    int prev_;
  };

  /// \brief The calling thread's ambient priority (1 = normal by default).
  static int CurrentPriority();

 private:
  /// Pops the highest-priority ready step.
  bool PopReadyLocked(std::function<void()>* step) TQP_REQUIRES(mu_);
  /// One pump: run at most one step, then re-submit while work remains.
  void PumpOne();

  ThreadPool* pool_;
  const int max_inflight_;
  mutable Mutex mu_;
  std::array<std::deque<std::function<void()>>, kNumPriorities> ready_
      TQP_GUARDED_BY(mu_);
  size_t ready_total_ TQP_GUARDED_BY(mu_) = 0;
  /// Pump tasks handed to the pool and not yet retired.
  int inflight_ TQP_GUARDED_BY(mu_) = 0;
  std::array<int64_t, kNumPriorities> submitted_ TQP_GUARDED_BY(mu_){};
  int64_t executed_ TQP_GUARDED_BY(mu_) = 0;
};

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_STEP_SCHEDULER_H_
