#include "runtime/task_graph.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "common/logging.h"
#include "common/sync.h"
#include "runtime/step_scheduler.h"

namespace tqp::runtime {

int TaskGraph::AddTask(TaskFn fn, const std::vector<int>& deps) {
  const int id = static_cast<int>(nodes_.size());
  Node node;
  node.fn = std::move(fn);
  node.deps = deps;
  std::sort(node.deps.begin(), node.deps.end());
  node.deps.erase(std::unique(node.deps.begin(), node.deps.end()),
                  node.deps.end());
  for (int d : node.deps) {
    TQP_DCHECK(d >= 0 && d < id);
    nodes_[static_cast<size_t>(d)].successors.push_back(id);
  }
  nodes_.push_back(std::move(node));
  return id;
}

Status TaskGraph::Run(ThreadPool* pool) { return RunImpl(pool, nullptr); }

Status TaskGraph::Run(StepScheduler* steps) {
  return RunImpl(steps == nullptr ? nullptr : steps->pool(), steps);
}

Status TaskGraph::RunImpl(ThreadPool* pool, StepScheduler* steps) {
  const int n = num_tasks();
  if (n == 0) return Status::OK();
  if (pool == nullptr || pool->num_threads() <= 1) {
    // Insertion order is topological (AddTask only accepts earlier ids).
    for (Node& node : nodes_) {
      TQP_RETURN_NOT_OK(node.fn());
    }
    return Status::OK();
  }

  struct RunState {
    explicit RunState(int n) : pending(static_cast<size_t>(n)) {}
    std::vector<std::atomic<int>> pending;  // unfinished deps per task
    std::atomic<int> completed{0};
    std::atomic<bool> failed{false};
    Mutex mu;
    Status first_error TQP_GUARDED_BY(mu) = Status::OK();
    CondVar done_cv;
  };
  auto state = std::make_shared<RunState>(n);
  for (int i = 0; i < n; ++i) {
    state->pending[static_cast<size_t>(i)].store(
        static_cast<int>(nodes_[static_cast<size_t>(i)].deps.size()),
        std::memory_order_relaxed);
  }

  // Steps of one graph all carry the submitting query's ambient priority.
  const int priority = StepScheduler::CurrentPriority();

  // Submits `id` and, transitively, every successor that its completion
  // unblocks. Declared as a std::function so the lambda can recurse.
  std::function<void(int)> submit = [&submit, state, pool, steps, priority,
                                     this](int id) {
    auto task = [&submit, state, this, id] {
      const Node& node = nodes_[static_cast<size_t>(id)];
      if (!state->failed.load(std::memory_order_acquire)) {
        Status st = node.fn();
        if (!st.ok()) {
          MutexLock lock(state->mu);
          if (state->first_error.ok()) state->first_error = std::move(st);
          state->failed.store(true, std::memory_order_release);
        }
      }
      // Successor wakeups still run after a failure so `completed` reaches n
      // and Run can return (cancelled tasks just skip their fn).
      for (int succ : node.successors) {
        if (state->pending[static_cast<size_t>(succ)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          submit(succ);
        }
      }
      if (state->completed.fetch_add(1, std::memory_order_acq_rel) == num_tasks() - 1) {
        MutexLock lock(state->mu);
        state->done_cv.NotifyAll();
      }
    };
    if (steps != nullptr) {
      steps->Submit(std::move(task), priority);
    } else {
      pool->Submit(std::move(task));
    }
  };

  for (int i = 0; i < n; ++i) {
    if (nodes_[static_cast<size_t>(i)].deps.empty()) submit(i);
  }

  // Participate while waiting (required when Run is called from a pool
  // worker; beneficial otherwise).
  while (state->completed.load(std::memory_order_acquire) < n) {
    if (pool->TryRunOneTask()) continue;
    MutexLock lock(state->mu);
    state->done_cv.WaitFor(state->mu, std::chrono::milliseconds(1), [&] {
      return state->completed.load(std::memory_order_acquire) >= n;
    });
  }
  MutexLock lock(state->mu);
  return state->first_error;
}

}  // namespace tqp::runtime
