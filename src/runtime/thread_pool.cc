#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

#include "common/cancel.h"
#include "common/env.h"
#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/morsel.h"
#include "tensor/buffer_pool.h"

namespace tqp::runtime {

namespace {

// Thread-local index of the worker running on this thread (-1 off-pool).
// Keyed by pool so tasks of a private pool don't misroute submissions made
// while running on the global pool (and vice versa).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

int ThreadPool::DefaultThreadCount() {
  static const int count = [] {
    // 0 (the fallback) selects hardware concurrency; garbage or negative
    // values warn and fall back instead of silently truncating.
    const int64_t env = EnvInt64OrDefault("TQP_THREADS", 0, 0, 256);
    if (env > 0) return static_cast<int>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 2;
  }();
  return count;
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(DefaultThreadCount());
    // The process-wide pool publishes itself as callback gauges: values are
    // sampled at exposition time, so the task hot path pays nothing beyond
    // its own relaxed counters.
    auto* registry = obs::MetricsRegistry::Global();
    registry->RegisterCallbackGauge(
        "tqp_threadpool_threads", "Worker threads in the process-wide pool",
        [p] { return static_cast<int64_t>(p->num_threads()); });
    registry->RegisterCallbackGauge(
        "tqp_threadpool_tasks_executed_total",
        "Tasks executed on the process-wide pool",
        [p] { return p->tasks_executed(); });
    registry->RegisterCallbackGauge(
        "tqp_threadpool_steals_total",
        "Tasks stolen from another worker's queue on the process-wide pool",
        [p] { return p->steals(); });
    return p;
  }();
  return pool;
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  // Same empty critical section as Submit: a worker that read stop_==false
  // under wake_mu_ must be fully asleep before the notify, or it would miss
  // it and hang this join forever.
  { MutexLock wake_lock(wake_mu_); }
  wake_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Tasks inherit the submitting thread's ambient query-memory scope: a
  // query's morsel fan-out and DAG continuations charge the query's budget
  // no matter which worker runs them. Fan-out joins (ParallelFor,
  // TaskGraph::Run) complete before the scope dies, so the captured pointer
  // outlives every task that dereferences it (Attach itself never does).
  if (auto* scope = BufferPool::QueryScope::Current(); scope != nullptr) {
    task = [scope, inner = std::move(task)] {
      BufferPool::QueryScope::Attach attach(scope);
      inner();
    };
  }
  // And the ambient cancellation token, with the same lifetime argument: a
  // cancelled query's fan-out observes the request at its next morsel/step
  // poll no matter which worker picked the task up.
  if (auto* token = CancellationToken::Current(); token != nullptr) {
    task = [token, inner = std::move(task)] {
      CancellationToken::Attach attach(token);
      inner();
    };
  }
  // Tasks likewise inherit the submitter's ambient trace context (session +
  // query id + submitting span), so a traced query's fan-out records into
  // its session from any worker, parented to the span that spawned it. Same
  // lifetime argument as the scope above: fan-out joins before the traced
  // run returns, and every context detach flushes the thread buffer.
  if (const obs::TraceContextState trace = obs::CaptureTraceContext();
      trace.session != nullptr) {
    task = [trace, inner = std::move(task)] {
      obs::TraceContext ctx(trace);
      inner();
    };
  }
  // Fault seam: a hit degrades this submission to inline execution on the
  // submitting thread — a benign perturbation that reorders completion and
  // removes asynchrony, proving no caller depends on tasks actually running
  // elsewhere (results must stay bit-identical).
  if (FaultHit(FaultSite::kTaskSubmit)) {
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Worker threads push to their own queue (the back, where they also pop:
  // depth-first execution keeps the working set hot); external threads spray
  // round-robin.
  int target;
  if (tls_pool == this && tls_worker_index >= 0) {
    target = tls_worker_index;
  } else {
    target = static_cast<int>(next_queue_.fetch_add(1, std::memory_order_relaxed) %
                              workers_.size());
  }
  {
    MutexLock lock(workers_[static_cast<size_t>(target)]->mu);
    workers_[static_cast<size_t>(target)]->queue.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Empty critical section: a worker that evaluated the wait predicate before
  // our increment is either fully asleep (notify reaches it) or still holds
  // wake_mu_ and will re-check the predicate — no lost wakeup either way.
  { MutexLock wake_lock(wake_mu_); }
  wake_cv_.NotifyOne();
}

bool ThreadPool::PopTask(int self_index, std::function<void()>* task) {
  const int n = num_threads();
  // Own queue first (LIFO), then steal round-robin (FIFO).
  if (self_index >= 0) {
    Worker& own = *workers_[static_cast<size_t>(self_index)];
    MutexLock lock(own.mu);
    if (!own.queue.empty()) {
      *task = std::move(own.queue.back());
      own.queue.pop_back();
      return true;
    }
  }
  const int start = self_index >= 0 ? self_index + 1 : 0;
  for (int k = 0; k < n; ++k) {
    Worker& victim = *workers_[static_cast<size_t>((start + k) % n)];
    MutexLock lock(victim.mu);
    if (!victim.queue.empty()) {
      *task = std::move(victim.queue.front());
      victim.queue.pop_front();
      // A steal is one worker taking from another's queue; an external
      // thread helping out (self_index < 0) has no queue to prefer.
      if (self_index >= 0 && (start + k) % n != self_index) {
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  const int self = tls_pool == this ? tls_worker_index : -1;
  if (!PopTask(self, &task)) return false;
  queued_.fetch_sub(1, std::memory_order_acquire);
  task();
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker_index = index;
  while (true) {
    std::function<void()> task;
    if (PopTask(index, &task)) {
      queued_.fetch_sub(1, std::memory_order_acquire);
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    MutexLock lock(wake_mu_);
    wake_cv_.Wait(wake_mu_, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

Status ThreadPool::ParallelFor(
    int64_t total, int64_t morsel_rows,
    const std::function<Status(int64_t, int64_t, int)>& fn) {
  if (total <= 0) return Status::OK();
  if (morsel_rows <= 0) morsel_rows = DefaultMorselRows();
  const int64_t num_morsels = (total + morsel_rows - 1) / morsel_rows;
  if (num_morsels == 1) return fn(0, total, 0);

  struct ForState {
    std::atomic<int64_t> cursor{0};
    std::atomic<int> unfinished_helpers{0};
    std::atomic<bool> failed{false};
    Mutex mu;
    Status first_error TQP_GUARDED_BY(mu) = Status::OK();
    CondVar done_cv;
  };
  auto state = std::make_shared<ForState>();

  auto drain = [state, fn, total, morsel_rows, num_morsels](int slot) {
    while (!state->failed.load(std::memory_order_acquire)) {
      // Cancellation poll before claiming each morsel: breaker internals
      // (partition scans, hash builds, merge passes) all fan out through
      // here, so a cancelled query stops within one morsel everywhere, not
      // just at pipeline step boundaries.
      if (Status st = CheckAmbientCancelled(); !st.ok()) {
        MutexLock lock(state->mu);
        if (state->first_error.ok()) state->first_error = std::move(st);
        state->failed.store(true, std::memory_order_release);
        break;
      }
      const int64_t m = state->cursor.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) break;
      const int64_t begin = m * morsel_rows;
      const int64_t end = std::min(total, begin + morsel_rows);
      Status st = fn(begin, end, slot);
      if (!st.ok()) {
        MutexLock lock(state->mu);
        if (state->first_error.ok()) state->first_error = std::move(st);
        state->failed.store(true, std::memory_order_release);
      }
    }
  };

  const int helpers = static_cast<int>(
      std::min<int64_t>(num_threads(), num_morsels - 1));
  state->unfinished_helpers.store(helpers, std::memory_order_relaxed);
  for (int h = 0; h < helpers; ++h) {
    // Slot 0 is the caller; helper h owns slot h + 1.
    Submit([state, drain, h] {
      drain(h + 1);
      if (state->unfinished_helpers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(state->mu);
        state->done_cv.NotifyAll();
      }
    });
  }
  drain(0);
  // Wait for every helper to exit before returning: `fn` may reference caller
  // stack state. While waiting, keep executing pool tasks — the helpers might
  // be queued behind other work (including other ParallelFors), and running
  // it here is what makes nested waits deadlock-free.
  while (state->unfinished_helpers.load(std::memory_order_acquire) > 0) {
    if (TryRunOneTask()) continue;
    MutexLock lock(state->mu);
    state->done_cv.WaitFor(state->mu, std::chrono::milliseconds(1), [&] {
      return state->unfinished_helpers.load(std::memory_order_acquire) == 0;
    });
  }
  MutexLock lock(state->mu);
  return state->first_error;
}

Status ThreadPool::ParallelFor(int64_t total, int64_t morsel_rows,
                               const std::function<Status(int64_t, int64_t)>& fn) {
  return ParallelFor(total, morsel_rows,
                     [&fn](int64_t b, int64_t e, int) { return fn(b, e); });
}

}  // namespace tqp::runtime
