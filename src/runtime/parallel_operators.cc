#include "runtime/parallel_operators.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "kernels/kernels.h"
#include "operators/partitioned/grace_join.h"
#include "operators/partitioned/partitioned_agg.h"
#include "runtime/morsel.h"
#include "tensor/buffer_pool.h"

namespace tqp::runtime {

namespace {

/// Breaker config from the ambient query scope plus the TQP_PARTITION_BITS
/// differential-sweep override.
op::partitioned::PartitionConfig BreakerConfig() {
  op::partitioned::PartitionConfig config;
  auto* scope = BufferPool::QueryScope::Current();
  config.budget_bytes = scope != nullptr ? scope->budget_bytes() : 0;
  config.forced_bits = op::partitioned::ForcedPartitionBits();
  return config;
}

constexpr int kPartitionBits = 6;
constexpr int64_t kNumPartitions = int64_t{1} << kPartitionBits;  // 64

// SplitMix64 finalizer — deterministic partition assignment for int64 keys.
inline int64_t PartitionOfKey(int64_t key) {
  uint64_t x = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int64_t>(x & (kNumPartitions - 1));
}

Status CheckKeys(const Tensor& keys) {
  if (keys.dtype() != DType::kInt64 || keys.cols() != 1) {
    return Status::TypeError("join keys must be int64 (n x 1)");
  }
  return Status::OK();
}

/// Order-preserving radix partition of [0, n) by PartitionOfKey(keys[i]):
/// per-morsel histograms, an exclusive scan, then a scatter — after which
/// partition p's slice of `row_of` lists p's rows in ascending row order.
struct Partitioned {
  std::vector<int64_t> row_of;           // size n, grouped by partition
  std::vector<int64_t> partition_start;  // size kNumPartitions + 1
};

Result<Partitioned> PartitionByKey(const ParallelContext& ctx, const int64_t* keys,
                                   int64_t n) {
  const std::vector<RowRange> morsels = PartitionRows(n, MorselRows(ctx));
  const size_t num_morsels = morsels.size();
  std::vector<std::vector<int64_t>> counts(
      num_morsels, std::vector<int64_t>(static_cast<size_t>(kNumPartitions), 0));
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(num_morsels), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          auto& c = counts[static_cast<size_t>(m)];
          const RowRange r = morsels[static_cast<size_t>(m)];
          for (int64_t i = r.begin; i < r.end; ++i) {
            ++c[static_cast<size_t>(PartitionOfKey(keys[i]))];
          }
        }
        return Status::OK();
      }));
  Partitioned out;
  out.partition_start.assign(static_cast<size_t>(kNumPartitions) + 1, 0);
  for (int64_t p = 0; p < kNumPartitions; ++p) {
    int64_t total = 0;
    for (size_t m = 0; m < num_morsels; ++m) total += counts[m][static_cast<size_t>(p)];
    out.partition_start[static_cast<size_t>(p) + 1] =
        out.partition_start[static_cast<size_t>(p)] + total;
  }
  // offsets[m][p]: where morsel m writes its partition-p rows.
  std::vector<std::vector<int64_t>> offsets(
      num_morsels, std::vector<int64_t>(static_cast<size_t>(kNumPartitions), 0));
  for (int64_t p = 0; p < kNumPartitions; ++p) {
    int64_t cursor = out.partition_start[static_cast<size_t>(p)];
    for (size_t m = 0; m < num_morsels; ++m) {
      offsets[m][static_cast<size_t>(p)] = cursor;
      cursor += counts[m][static_cast<size_t>(p)];
    }
  }
  out.row_of.resize(static_cast<size_t>(n));
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(num_morsels), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          auto cursor = offsets[static_cast<size_t>(m)];  // private copy
          const RowRange r = morsels[static_cast<size_t>(m)];
          for (int64_t i = r.begin; i < r.end; ++i) {
            const size_t p = static_cast<size_t>(PartitionOfKey(keys[i]));
            out.row_of[static_cast<size_t>(cursor[p]++)] = i;
          }
        }
        return Status::OK();
      }));
  return out;
}

/// The serial build's chain layout: first[key] = latest row, next[r] =
/// previous row with the same key (-1 at chain end). Built per partition in
/// ascending row order — identical to the serial whole-table build.
struct JoinBuild {
  std::vector<std::unordered_map<int64_t, int64_t>> first;  // per partition
  std::vector<int64_t> next;                                // size R
};

Result<JoinBuild> BuildPartitionedTable(const ParallelContext& ctx,
                                        const int64_t* rk, int64_t rows) {
  TQP_ASSIGN_OR_RETURN(Partitioned parts, PartitionByKey(ctx, rk, rows));
  JoinBuild build;
  build.first.resize(static_cast<size_t>(kNumPartitions));
  build.next.assign(static_cast<size_t>(rows), -1);
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      kNumPartitions, 1, [&](int64_t pb, int64_t pe) -> Status {
        for (int64_t p = pb; p < pe; ++p) {
          auto& first = build.first[static_cast<size_t>(p)];
          const int64_t begin = parts.partition_start[static_cast<size_t>(p)];
          const int64_t end = parts.partition_start[static_cast<size_t>(p) + 1];
          first.reserve(static_cast<size_t>(end - begin) * 2);
          for (int64_t k = begin; k < end; ++k) {
            const int64_t r = parts.row_of[static_cast<size_t>(k)];
            auto [it, inserted] = first.try_emplace(rk[r], r);
            if (!inserted) {
              build.next[static_cast<size_t>(r)] = it->second;
              it->second = r;
            }
          }
        }
        return Status::OK();
      }));
  return build;
}

}  // namespace

Result<op::JoinIndices> ParallelHashJoinIndices(const ParallelContext& ctx,
                                                const Tensor& left_keys,
                                                const Tensor& right_keys) {
  TQP_RETURN_NOT_OK(CheckKeys(left_keys));
  TQP_RETURN_NOT_OK(CheckKeys(right_keys));
  const int64_t l_rows = left_keys.rows();
  const int64_t r_rows = right_keys.rows();
  // The grace join engages even with a 1-thread pool: budget-sized spillable
  // partitions matter for memory, not just speed.
  if (ctx.partitioned_breakers && ctx.pool != nullptr &&
      std::max(l_rows, r_rows) >= ctx.min_parallel_rows) {
    return op::partitioned::GraceHashJoinIndices(ctx, left_keys, right_keys,
                                                 BreakerConfig(), nullptr);
  }
  if (!ctx.parallel() || std::max(l_rows, r_rows) < ctx.min_parallel_rows) {
    return op::HashJoinIndices(left_keys, right_keys);
  }
  const int64_t* lk = left_keys.data<int64_t>();
  const int64_t* rk = right_keys.data<int64_t>();
  TQP_ASSIGN_OR_RETURN(JoinBuild build, BuildPartitionedTable(ctx, rk, r_rows));

  // Probe: per-morsel match buffers, concatenated in morsel order (= the
  // serial left-scan order).
  const std::vector<RowRange> morsels = PartitionRows(l_rows, MorselRows(ctx));
  std::vector<std::vector<int64_t>> lout(morsels.size());
  std::vector<std::vector<int64_t>> rout(morsels.size());
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          auto& lo = lout[static_cast<size_t>(m)];
          auto& ro = rout[static_cast<size_t>(m)];
          const RowRange range = morsels[static_cast<size_t>(m)];
          for (int64_t l = range.begin; l < range.end; ++l) {
            const auto& first =
                build.first[static_cast<size_t>(PartitionOfKey(lk[l]))];
            auto it = first.find(lk[l]);
            if (it == first.end()) continue;
            for (int64_t r = it->second; r >= 0;
                 r = build.next[static_cast<size_t>(r)]) {
              lo.push_back(l);
              ro.push_back(r);
            }
          }
        }
        return Status::OK();
      }));
  int64_t total = 0;
  for (const auto& part : lout) total += static_cast<int64_t>(part.size());
  op::JoinIndices out;
  TQP_ASSIGN_OR_RETURN(out.left_ids,
                       Tensor::Empty(DType::kInt64, total, 1, left_keys.device()));
  TQP_ASSIGN_OR_RETURN(out.right_ids,
                       Tensor::Empty(DType::kInt64, total, 1, left_keys.device()));
  int64_t* pl = out.left_ids.mutable_data<int64_t>();
  int64_t* pr = out.right_ids.mutable_data<int64_t>();
  int64_t w = 0;
  for (size_t m = 0; m < morsels.size(); ++m) {
    if (!lout[m].empty()) {
      std::memcpy(pl + w, lout[m].data(), lout[m].size() * sizeof(int64_t));
      std::memcpy(pr + w, rout[m].data(), rout[m].size() * sizeof(int64_t));
    }
    w += static_cast<int64_t>(lout[m].size());
  }
  return out;
}

Result<Tensor> ParallelSemiJoinIndices(const ParallelContext& ctx,
                                       const Tensor& left_keys,
                                       const Tensor& right_keys, bool anti) {
  TQP_RETURN_NOT_OK(CheckKeys(left_keys));
  TQP_RETURN_NOT_OK(CheckKeys(right_keys));
  const int64_t l_rows = left_keys.rows();
  const int64_t r_rows = right_keys.rows();
  if (!ctx.parallel() || std::max(l_rows, r_rows) < ctx.min_parallel_rows) {
    return op::SemiJoinIndices(left_keys, right_keys, anti);
  }
  const int64_t* lk = left_keys.data<int64_t>();
  const int64_t* rk = right_keys.data<int64_t>();
  // Presence only — chain layout is irrelevant for semi joins.
  TQP_ASSIGN_OR_RETURN(JoinBuild build, BuildPartitionedTable(ctx, rk, r_rows));
  const std::vector<RowRange> morsels = PartitionRows(l_rows, MorselRows(ctx));
  std::vector<std::vector<int64_t>> lout(morsels.size());
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          auto& lo = lout[static_cast<size_t>(m)];
          const RowRange range = morsels[static_cast<size_t>(m)];
          for (int64_t l = range.begin; l < range.end; ++l) {
            const auto& first =
                build.first[static_cast<size_t>(PartitionOfKey(lk[l]))];
            const bool matched = first.find(lk[l]) != first.end();
            if (matched != anti) lo.push_back(l);
          }
        }
        return Status::OK();
      }));
  int64_t total = 0;
  for (const auto& part : lout) total += static_cast<int64_t>(part.size());
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kInt64, total, 1, left_keys.device()));
  int64_t* po = out.mutable_data<int64_t>();
  int64_t w = 0;
  for (const auto& part : lout) {
    if (!part.empty()) {
      std::memcpy(po + w, part.data(), part.size() * sizeof(int64_t));
    }
    w += static_cast<int64_t>(part.size());
  }
  return out;
}

namespace {

// Byte-encodes the key tuple of row i — mirrors src/operators/hash_groupby.cc
// so grouping decisions are identical.
std::string RowKey(const std::vector<Tensor>& keys, int64_t i) {
  std::string out;
  for (const Tensor& k : keys) {
    const int64_t row_bytes = k.cols() * DTypeSize(k.dtype());
    const char* p = reinterpret_cast<const char*>(k.raw_data()) + i * row_bytes;
    out.append(p, static_cast<size_t>(row_bytes));
    out.push_back('\x1f');
  }
  return out;
}

// FNV-1a over the encoded key bytes — deterministic partition assignment for
// composite keys.
int64_t PartitionOfRowKey(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  // Final mix: FNV's low bits are weak for short keys.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<int64_t>(h & (kNumPartitions - 1));
}

}  // namespace

Result<op::GroupIds> ParallelHashGroupIds(const ParallelContext& ctx,
                                          const std::vector<Tensor>& keys) {
  if (keys.empty()) return Status::Invalid("HashGroupIds: no keys");
  const int64_t n = keys[0].rows();
  for (const Tensor& k : keys) {
    if (k.rows() != n) return Status::Invalid("HashGroupIds: length mismatch");
  }
  if (ctx.partitioned_breakers && ctx.pool != nullptr &&
      n >= ctx.min_parallel_rows) {
    return op::partitioned::PartitionedHashGroupIds(ctx, keys, BreakerConfig(),
                                                    nullptr);
  }
  if (!ctx.parallel() || n < ctx.min_parallel_rows) {
    return op::HashGroupIds(keys);
  }

  // Pass 1 (parallel over morsels): partition id per row.
  std::vector<int32_t> part_of(static_cast<size_t>(n));
  const std::vector<RowRange> morsels = PartitionRows(n, MorselRows(ctx));
  std::vector<std::vector<int64_t>> counts(
      morsels.size(), std::vector<int64_t>(static_cast<size_t>(kNumPartitions), 0));
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          const RowRange r = morsels[static_cast<size_t>(m)];
          auto& c = counts[static_cast<size_t>(m)];
          for (int64_t i = r.begin; i < r.end; ++i) {
            const int64_t p = PartitionOfRowKey(RowKey(keys, i));
            part_of[static_cast<size_t>(i)] = static_cast<int32_t>(p);
            ++c[static_cast<size_t>(p)];
          }
        }
        return Status::OK();
      }));
  // Order-preserving scatter of row ids into partitions.
  std::vector<int64_t> partition_start(static_cast<size_t>(kNumPartitions) + 1, 0);
  for (int64_t p = 0; p < kNumPartitions; ++p) {
    int64_t total = 0;
    for (size_t m = 0; m < morsels.size(); ++m) {
      total += counts[m][static_cast<size_t>(p)];
    }
    partition_start[static_cast<size_t>(p) + 1] =
        partition_start[static_cast<size_t>(p)] + total;
  }
  std::vector<std::vector<int64_t>> offsets(
      morsels.size(), std::vector<int64_t>(static_cast<size_t>(kNumPartitions), 0));
  for (int64_t p = 0; p < kNumPartitions; ++p) {
    int64_t cursor = partition_start[static_cast<size_t>(p)];
    for (size_t m = 0; m < morsels.size(); ++m) {
      offsets[m][static_cast<size_t>(p)] = cursor;
      cursor += counts[m][static_cast<size_t>(p)];
    }
  }
  std::vector<int64_t> row_of(static_cast<size_t>(n));
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), 1, [&](int64_t mb, int64_t me) -> Status {
        for (int64_t m = mb; m < me; ++m) {
          auto cursor = offsets[static_cast<size_t>(m)];
          const RowRange r = morsels[static_cast<size_t>(m)];
          for (int64_t i = r.begin; i < r.end; ++i) {
            const auto p = static_cast<size_t>(part_of[static_cast<size_t>(i)]);
            row_of[static_cast<size_t>(cursor[p]++)] = i;
          }
        }
        return Status::OK();
      }));

  // Pass 2 (parallel over partitions): local grouping in ascending row order.
  // local_id[i] is the row's group rank within its partition; first_rows[p]
  // lists each local group's first row (ascending, by construction).
  std::vector<int64_t> local_id(static_cast<size_t>(n));
  std::vector<std::vector<int64_t>> first_rows(static_cast<size_t>(kNumPartitions));
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      kNumPartitions, 1, [&](int64_t pb, int64_t pe) -> Status {
        for (int64_t p = pb; p < pe; ++p) {
          const int64_t begin = partition_start[static_cast<size_t>(p)];
          const int64_t end = partition_start[static_cast<size_t>(p) + 1];
          auto& reps = first_rows[static_cast<size_t>(p)];
          std::unordered_map<std::string, int64_t> table;
          table.reserve(static_cast<size_t>(end - begin) * 2);
          for (int64_t k = begin; k < end; ++k) {
            const int64_t i = row_of[static_cast<size_t>(k)];
            auto [it, inserted] =
                table.try_emplace(RowKey(keys, i), static_cast<int64_t>(reps.size()));
            if (inserted) reps.push_back(i);
            local_id[static_cast<size_t>(i)] = it->second;
          }
        }
        return Status::OK();
      }));

  // Barrier: rank all groups by first-occurrence row — that *is* the serial
  // first-seen order — and build per-partition local -> global remaps.
  std::vector<std::pair<int64_t, int32_t>> all_reps;  // (first_row, partition)
  for (int64_t p = 0; p < kNumPartitions; ++p) {
    for (int64_t row : first_rows[static_cast<size_t>(p)]) {
      all_reps.emplace_back(row, static_cast<int32_t>(p));
    }
  }
  std::sort(all_reps.begin(), all_reps.end());
  std::vector<std::vector<int64_t>> remap(static_cast<size_t>(kNumPartitions));
  for (int64_t p = 0; p < kNumPartitions; ++p) {
    remap[static_cast<size_t>(p)].resize(first_rows[static_cast<size_t>(p)].size());
  }
  std::vector<int64_t> local_rank(static_cast<size_t>(kNumPartitions), 0);
  std::vector<int64_t> reps;
  reps.reserve(all_reps.size());
  for (size_t g = 0; g < all_reps.size(); ++g) {
    const auto p = static_cast<size_t>(all_reps[g].second);
    remap[p][static_cast<size_t>(local_rank[p]++)] = static_cast<int64_t>(g);
    reps.push_back(all_reps[g].first);
  }

  // Pass 3 (parallel over rows): translate local ids to global ids.
  op::GroupIds out;
  TQP_ASSIGN_OR_RETURN(out.group_ids,
                       Tensor::Empty(DType::kInt64, n, 1, keys[0].device()));
  int64_t* ids = out.group_ids.mutable_data<int64_t>();
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      n, MorselRows(ctx), [&](int64_t b, int64_t e) -> Status {
        for (int64_t i = b; i < e; ++i) {
          ids[i] = remap[static_cast<size_t>(part_of[static_cast<size_t>(i)])]
                        [static_cast<size_t>(local_id[static_cast<size_t>(i)])];
        }
        return Status::OK();
      }));
  out.representatives = Tensor::FromVector(reps);
  out.num_groups = static_cast<int64_t>(reps.size());
  return out;
}

Result<Tensor> ParallelGroupedReduce(const ParallelContext& ctx, ReduceOpKind op,
                                     const Tensor& values,
                                     const op::GroupIds& groups) {
  const int64_t n = values.rows();
  const int64_t g = groups.num_groups;
  const bool float_sum =
      op == ReduceOpKind::kSum && IsFloatingPoint(values.dtype());
  const bool exact_parallel =
      op == ReduceOpKind::kCount || op == ReduceOpKind::kMin ||
      op == ReduceOpKind::kMax || op == ReduceOpKind::kSum;
  // The partition-ordered float-sum path uses no per-slot arrays, so the
  // partial-accumulator size cap does not apply to it.
  const bool partials_fit =
      ctx.pool != nullptr &&
      (float_sum ||
       g <= (int64_t{1} << 23) / std::max(1, ctx.pool->max_parallel_slots()));
  if (!exact_parallel || !partials_fit || !ShouldParallelize(ctx, n) || g <= 0) {
    return op::GroupedReduce(op, values, groups);
  }
  if (float_sum) {
    // Exact: each group's additions replay in serial row order, and the sum
    // stays float64 like the serial kernel's.
    TQP_ASSIGN_OR_RETURN(Tensor cv, ParallelCast(ctx, values, DType::kFloat64));
    return op::partitioned::PartitionOrderedFloatSums(ctx, cv, groups.group_ids,
                                                      g, /*validate=*/false);
  }
  const int64_t* ids = groups.group_ids.data<int64_t>();
  const int slots = ctx.pool->max_parallel_slots();

  if (op == ReduceOpKind::kCount) {
    std::vector<std::vector<int64_t>> partial(static_cast<size_t>(slots));
    TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
        n, MorselRows(ctx), [&](int64_t b, int64_t e, int slot) -> Status {
          auto& acc = partial[static_cast<size_t>(slot)];
          if (acc.empty()) acc.assign(static_cast<size_t>(g), 0);
          for (int64_t i = b; i < e; ++i) ++acc[static_cast<size_t>(ids[i])];
          return Status::OK();
        }));
    TQP_ASSIGN_OR_RETURN(Tensor out,
                         Tensor::Full(DType::kInt64, g, 1, 0.0, values.device()));
    int64_t* po = out.mutable_data<int64_t>();
    for (const auto& acc : partial) {
      if (acc.empty()) continue;
      for (int64_t s = 0; s < g; ++s) po[s] += acc[static_cast<size_t>(s)];
    }
    return out;
  }

  TQP_ASSIGN_OR_RETURN(Tensor cv, ParallelCast(ctx, values, DType::kFloat64));
  const double* pv = cv.data<double>();
  struct SlotAcc {
    std::vector<double> value;
    std::vector<bool> seen;  // min/max only
  };
  std::vector<SlotAcc> partial(static_cast<size_t>(slots));
  const bool is_sum = op == ReduceOpKind::kSum;
  TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
      n, MorselRows(ctx), [&](int64_t b, int64_t e, int slot) -> Status {
        SlotAcc& acc = partial[static_cast<size_t>(slot)];
        if (acc.value.empty()) {
          acc.value.assign(static_cast<size_t>(g), 0.0);
          if (!is_sum) acc.seen.assign(static_cast<size_t>(g), false);
        }
        for (int64_t i = b; i < e; ++i) {
          const auto id = static_cast<size_t>(ids[i]);
          if (is_sum) {
            acc.value[id] += pv[i];
          } else if (!acc.seen[id]) {
            acc.value[id] = pv[i];
            acc.seen[id] = true;
          } else if (op == ReduceOpKind::kMin ? pv[i] < acc.value[id]
                                              : pv[i] > acc.value[id]) {
            acc.value[id] = pv[i];
          }
        }
        return Status::OK();
      }));
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Full(DType::kFloat64, g, 1, 0.0, values.device()));
  double* po = out.mutable_data<double>();
  if (is_sum) {
    for (const auto& acc : partial) {
      if (acc.value.empty()) continue;
      for (int64_t s = 0; s < g; ++s) po[s] += acc.value[static_cast<size_t>(s)];
    }
  } else {
    std::vector<bool> seen(static_cast<size_t>(g), false);
    for (const auto& acc : partial) {
      if (acc.value.empty()) continue;
      for (int64_t s = 0; s < g; ++s) {
        const auto us = static_cast<size_t>(s);
        if (!acc.seen[us]) continue;
        if (!seen[us]) {
          po[s] = acc.value[us];
          seen[us] = true;
        } else if (op == ReduceOpKind::kMin ? acc.value[us] < po[s]
                                            : acc.value[us] > po[s]) {
          po[s] = acc.value[us];
        }
      }
    }
  }
  // The serial kernel keeps sums in float64 but casts min/max back to the
  // input dtype; mirror that exactly.
  if (!is_sum && values.dtype() != DType::kFloat64) {
    return kernels::Cast(out, values.dtype());
  }
  return out;
}

}  // namespace tqp::runtime
