#include "runtime/pipelined_executor.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include <atomic>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/stopwatch.h"
#include "compile/expr_simd.h"
#include "graph/eval.h"
#include "graph/op_type.h"
#include "kernels/expr_exec.h"
#include "kernels/selection.h"
#include "kernels/simd_exec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "operators/partitioned/partition.h"
#include "runtime/morsel.h"
#include "runtime/step_scheduler.h"
#include "runtime/task_graph.h"

namespace tqp {

using runtime::MorselRows;
using runtime::ParallelContext;
using runtime::ThreadPool;

PipelinedExecutor::PipelinedExecutor(std::shared_ptr<const TensorProgram> program,
                                     ExecOptions options)
    : program_(std::move(program)), options_(options) {
  options_.num_threads = std::min(options_.num_threads, 256);
  if (options_.pool != nullptr) {
    pool_ = options_.pool;  // shared cross-query pool
  } else if (options_.num_threads == 0) {
    pool_ = ThreadPool::Global();
  } else if (options_.num_threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = owned_pool_.get();
  }  // num_threads == 1 (or negative): pool_ stays null -> serial morsel loop
  expr_backend_ = ResolveExprBackend(options_.expr_backend);
  if (options_.adaptive_morsels || runtime::DefaultAdaptiveMorsels()) {
    adaptive_ =
        std::make_unique<runtime::AdaptiveMorselController>(morsel_rows());
  }
  plan_ = BuildPipelinePlan(*program_);
  fusion_cache_.resize(plan_.pipelines.size());
}

int64_t PipelinedExecutor::morsel_rows() const {
  return options_.morsel_rows > 0 ? options_.morsel_rows
                                  : runtime::DefaultMorselRows();
}

namespace {

/// Evaluates one streamed node over the morsel [b, e) of the driver domain.
/// `scratch` holds this morsel's bound sources and previously evaluated
/// chain values, indexed by global node id. The three offset-corrected ops
/// (arange_like, head, nonzero) are only streamed when their input domain is
/// the driver domain itself, so `b` is their global row offset.
Result<Tensor> EvalMorselNode(const TensorProgram& prog, const OpNode& node,
                              const std::vector<Tensor>& scratch, int64_t b) {
  switch (node.type) {
    case OpType::kArangeLike: {
      const Tensor& in0 = scratch[static_cast<size_t>(node.inputs[0])];
      TQP_ASSIGN_OR_RETURN(
          Tensor out, Tensor::Arange(in0.rows(), DType::kInt64, in0.device()));
      if (b > 0) {
        int64_t* po = out.mutable_data<int64_t>();
        for (int64_t i = 0; i < out.rows(); ++i) po[i] += b;
      }
      return out;
    }
    case OpType::kHeadRows: {
      const Tensor& in0 = scratch[static_cast<size_t>(node.inputs[0])];
      const int64_t n = node.attrs.GetInt("n");
      const int64_t keep = std::clamp<int64_t>(n - b, 0, in0.rows());
      return in0.SliceRows(0, keep);  // view; chunks are copied on assembly
    }
    case OpType::kNonzero: {
      TQP_ASSIGN_OR_RETURN(Tensor out, EvalNode(prog, node, scratch));
      if (b > 0) {
        int64_t* po = out.mutable_data<int64_t>();
        for (int64_t i = 0; i < out.rows(); ++i) po[i] += b;
      }
      return out;
    }
    default:
      return EvalNode(prog, node, scratch);
  }
}

}  // namespace

Status PipelinedExecutor::EvalWholeNode(const OpNode& node,
                                        std::vector<Tensor>* values,
                                        const ParallelContext& ctx) {
  Device* device = GetDevice(options_.device);
  Stopwatch timer;
  obs::TraceSpan op_span("op", OpTypeName(node.type));
  if (op_span.enabled()) op_span.AddArg("node", node.id);
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       runtime::ParallelEvalNode(ctx, *program_, node, *values));
  if (op_span.enabled()) op_span.AddArg("output_bytes", out.nbytes());
  if (device->is_simulated()) {
    bool irregular = false;
    const KernelCost cost = EstimateNodeCost(node, *values, out, &irregular);
    device->RecordKernel(cost, irregular);  // internally serialized
  }
  if (options_.profiler != nullptr) {
    // RecordOp may run concurrently for independent steps; the OpProfiler
    // contract requires thread-safety.
    options_.profiler->RecordOp(node, timer.ElapsedNanos(), out.nbytes());
  }
  (*values)[static_cast<size_t>(node.id)] = std::move(out);
  return Status::OK();
}

Status PipelinedExecutor::RunPipelineSerial(const Pipeline& p,
                                            std::vector<Tensor>* values,
                                            const ParallelContext& ctx) {
  for (const PipelineNode& pn : p.nodes) {
    TQP_RETURN_NOT_OK(EvalWholeNode(program_->node(pn.id), values, ctx));
  }
  // Chain nodes that are not pipeline outputs have no readers outside this
  // step (FinalizePipelines materializes every externally-read node): drop
  // them now so the fallback's footprint matches the streaming path's.
  for (const PipelineNode& pn : p.nodes) {
    if (std::find(p.outputs.begin(), p.outputs.end(), pn.id) ==
        p.outputs.end()) {
      (*values)[static_cast<size_t>(pn.id)] = Tensor();
    }
  }
  return Status::OK();
}

Status PipelinedExecutor::RunPipeline(int pipeline_index, const Pipeline& p,
                                      std::vector<Tensor>* values,
                                      const ParallelContext& ctx) {
  // Resolve the driver domain from the sliced sources. A source whose row
  // count matches neither the driver nor 1 (a runtime broadcast the splitter
  // could not see) falls back to whole-node evaluation — same results, no
  // streaming.
  obs::TraceSpan pipeline_span("pipeline", "pipeline");
  if (pipeline_span.enabled()) {
    pipeline_span.AddArg("index", pipeline_index);
    pipeline_span.AddArg("ops", static_cast<int64_t>(p.nodes.size()));
  }
  int64_t driver_rows = -1;
  std::vector<bool> slice_now(p.sliced_sources.size(), false);
  for (size_t i = 0; i < p.sliced_sources.size(); ++i) {
    const Tensor& t = (*values)[static_cast<size_t>(p.sliced_sources[i])];
    if (!t.defined()) {
      return Status::Internal("pipelined executor: undefined sliced source");
    }
    if (driver_rows < 0) driver_rows = t.rows();
    if (t.rows() == driver_rows) {
      slice_now[i] = true;
    } else if (t.rows() != 1) {
      return RunPipelineSerial(p, values, ctx);
    } else if (p.has_offset_op) {
      // A 1-row broadcast source means some "driver-aligned" value really
      // lives in the broadcast domain; an offset-corrected op downstream
      // would add morsel offsets to non-driver rows. Evaluate whole.
      return RunPipelineSerial(p, values, ctx);
    }
  }
  if (driver_rows < 0) {
    return Status::Internal("pipelined executor: pipeline without a driver");
  }

  // Adaptive sizing reads one size per pipeline run; the per-morsel
  // decomposition below is then fixed for this run, so chunk assembly (in
  // morsel order) produces bit-identical results at whatever size the
  // controller settled on. Chosen before the fusion probe: the probe IS
  // morsel 0's evaluation, so it must cover exactly this run's first morsel.
  const int64_t morsel = adaptive_ != nullptr ? adaptive_->rows()
                                              : MorselRows(ctx);
  static obs::Gauge* morsel_rows_gauge =
      obs::MetricsRegistry::Global()->GetGauge(
          "tqp_morsel_rows", "Rows per morsel used by the last pipeline run");
  morsel_rows_gauge->Set(morsel);
  if (pipeline_span.enabled()) pipeline_span.AddArg("morsel_rows", morsel);

  // Expression fusion: maximal elementwise/selection runs of this pipeline
  // execute as one compiled ExprProgram per morsel instead of node-at-a-time.
  // A compile (cache miss) probes one morsel node-at-a-time; its outputs
  // seed morsel 0 below, so the probe is that morsel's one evaluation, not
  // discarded work.
  std::shared_ptr<const ExprFusionPlan> fusion;
  ProbeResult probe;
  if (options_.expr_fusion) {
    TQP_ASSIGN_OR_RETURN(fusion, FusionFor(pipeline_index, p, *values,
                                           slice_now, driver_rows, morsel,
                                           &probe));
  }
  const int64_t num_morsels =
      driver_rows == 0 ? 1 : (driver_rows + morsel - 1) / morsel;
  const size_t num_nodes = static_cast<size_t>(program_->num_nodes());

  std::vector<std::vector<Tensor>> chunks(
      p.outputs.size(), std::vector<Tensor>(static_cast<size_t>(num_morsels)));

  // Out-of-core streaming: under a memory budget, every *completed* morsel
  // chunk registers as an eviction candidate — the accumulation phase of a
  // long pipeline holds only the chunks the budget allows, the rest wait on
  // disk, and assembly below faults them back one at a time. Per-chunk
  // shape metadata is recorded at evaluation time so assembly can size the
  // output without touching spilled chunks.
  BufferPool::QueryScope* scope = BufferPool::QueryScope::Current();
  const bool spill_chunks = scope != nullptr && scope->spill_enabled();
  struct ChunkMeta {
    int64_t rows = 0;
    int64_t cols = 0;
    DType dtype = DType::kFloat64;
  };
  std::vector<std::vector<uint64_t>> chunk_ids;
  std::vector<std::vector<ChunkMeta>> chunk_meta;
  if (spill_chunks) {
    chunk_ids.assign(p.outputs.size(),
                     std::vector<uint64_t>(static_cast<size_t>(num_morsels), 0));
    chunk_meta.assign(
        p.outputs.size(),
        std::vector<ChunkMeta>(static_cast<size_t>(num_morsels)));
  }
  // Registered chunk records point into `chunks`; drop them on every exit
  // path (assembly zeroes the ids it consumes) so no record outlives it.
  struct ChunkSpillGuard {
    BufferPool::QueryScope* scope;
    std::vector<std::vector<uint64_t>>* ids;
    ~ChunkSpillGuard() {
      if (scope == nullptr) return;
      for (auto& per_output : *ids) {
        for (uint64_t id : per_output) {
          if (id != 0) scope->Drop(id);
        }
      }
    }
  } chunk_guard{spill_chunks ? scope : nullptr, &chunk_ids};

  // Per-slot morsel state: the node-indexed scratch, the fused runs'
  // register arena, and a bound flag so unchanged non-driver sources
  // (broadcasts, whole operands) bind once per pipeline run, not per morsel.
  struct MorselSlot {
    std::vector<Tensor> scratch;
    kernels::ExprScratch expr;
    std::vector<Tensor> run_sources;
    std::vector<Tensor> run_outputs;
    bool bound = false;
  };

  auto eval_morsel = [&](int64_t b, int64_t e, int64_t m,
                         MorselSlot* slot) -> Status {
    // Cooperative cancellation poll: a cancelled/expired query stops before
    // the next morsel evaluates, and the resulting non-OK status unwinds
    // through the same cleanup every real error takes (chunk guard, spill
    // drops, scope teardown).
    TQP_RETURN_NOT_OK(CheckAmbientCancelled());
    morsel_evals_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* morsel_metric =
        obs::MetricsRegistry::Global()->GetCounter(
            "tqp_morsel_evals_total",
            "Morsel batches evaluated by pipelined executors");
    morsel_metric->Add(1);
    obs::TraceSpan morsel_span("morsel", "morsel");
    if (morsel_span.enabled()) {
      morsel_span.AddArg("begin", b);
      morsel_span.AddArg("rows", e - b);
    }
    Stopwatch morsel_timer;
    std::vector<Tensor>& scratch = slot->scratch;
    if (scratch.empty()) scratch.resize(num_nodes);
    if (!slot->bound) {
      for (size_t i = 0; i < p.sliced_sources.size(); ++i) {
        const size_t src = static_cast<size_t>(p.sliced_sources[i]);
        if (!slice_now[i]) scratch[src] = (*values)[src];
      }
      for (int src : p.whole_sources) {
        scratch[static_cast<size_t>(src)] = (*values)[static_cast<size_t>(src)];
      }
      slot->bound = true;
    }
    for (size_t i = 0; i < p.sliced_sources.size(); ++i) {
      const size_t src = static_cast<size_t>(p.sliced_sources[i]);
      if (slice_now[i]) scratch[src] = (*values)[src].SliceRows(b, e);
    }
    size_t ni = 0;
    while (ni < p.nodes.size()) {
      const int run_id =
          fusion != nullptr ? fusion->run_start[ni] : -1;
      if (run_id >= 0) {
        const ExprFusionPlan::Run& run =
            fusion->runs[static_cast<size_t>(run_id)];
        const ExprProgram& ep = *run.program;
        slot->run_sources.clear();
        for (int id : ep.source_nodes()) {
          slot->run_sources.push_back(scratch[static_cast<size_t>(id)]);
        }
        const ExprSimdPlan* simd_plan =
            expr_backend_ == ExprBackend::kSimd ? run.simd.get() : nullptr;
        kernels::ExprRunStats rstats;
        TQP_RETURN_NOT_OK(kernels::RunExprProgram(
            ep, slot->run_sources, b, options_.device, &slot->expr,
            &slot->run_outputs, simd_plan, &rstats));
        // Tally the backend that *actually* ran: a kSimd dispatch whose
        // program has no covered shapes interprets everything and counts as
        // interp. The compile probe never reaches this branch (it evaluates
        // node-at-a-time), so these tallies reflect fused execution only.
        static obs::Counter* interp_runs =
            obs::MetricsRegistry::Global()->GetCounter(
                "tqp_expr_backend_interp_total",
                "Fused-run morsel executions fully interpreted");
        static obs::Counter* simd_runs =
            obs::MetricsRegistry::Global()->GetCounter(
                "tqp_expr_backend_simd_total",
                "Fused-run morsel executions with SIMD-tier instructions");
        (rstats.simd_instrs > 0 ? simd_runs : interp_runs)->Add(1);
        if (run.exec_stats != nullptr) {
          ExprRunExecStats& st = *run.exec_stats;
          (rstats.simd_instrs > 0 ? st.simd_morsels : st.interp_morsels)
              .fetch_add(1, std::memory_order_relaxed);
          st.simd_instrs.fetch_add(rstats.simd_instrs,
                                   std::memory_order_relaxed);
          st.interp_instrs.fetch_add(rstats.interp_instrs,
                                     std::memory_order_relaxed);
        }
        for (size_t k = 0; k < ep.output_nodes().size(); ++k) {
          scratch[static_cast<size_t>(ep.output_nodes()[k])] =
              std::move(slot->run_outputs[k]);
        }
        ni = run.end;
        continue;
      }
      const OpNode& node = program_->node(p.nodes[ni].id);
      TQP_ASSIGN_OR_RETURN(Tensor out,
                           EvalMorselNode(*program_, node, scratch, b));
      scratch[static_cast<size_t>(node.id)] = std::move(out);
      ++ni;
    }
    for (size_t oi = 0; oi < p.outputs.size(); ++oi) {
      // Move, not copy: the scratch slot is re-produced before its next
      // read (topological order), and leaving a second reference would keep
      // an evicted chunk's bytes resident.
      Tensor& chunk = chunks[oi][static_cast<size_t>(m)];
      chunk = std::move(scratch[static_cast<size_t>(p.outputs[oi])]);
      if (spill_chunks) {
        chunk_meta[oi][static_cast<size_t>(m)] = {chunk.rows(), chunk.cols(),
                                                  chunk.dtype()};
        chunk_ids[oi][static_cast<size_t>(m)] = scope->AddSpillable(&chunk);
      }
    }
    if (adaptive_ != nullptr) {
      adaptive_->Observe(e - b, morsel_timer.ElapsedNanos());
    }
    return Status::OK();
  };

  // A fusion compile already evaluated morsel 0 (the probe): reuse its
  // outputs instead of evaluating the first morsel twice.
  const bool seeded = probe.probed;
  if (seeded) {
    for (size_t oi = 0; oi < p.outputs.size(); ++oi) {
      chunks[oi][0] = std::move(probe.outputs[oi]);
      if (spill_chunks) {
        chunk_meta[oi][0] = {chunks[oi][0].rows(), chunks[oi][0].cols(),
                             chunks[oi][0].dtype()};
        chunk_ids[oi][0] = scope->AddSpillable(&chunks[oi][0]);
      }
    }
  }

  const bool fan_out = ctx.parallel() && num_morsels > 1;
  if (!fan_out) {
    MorselSlot slot;
    for (int64_t m = seeded ? 1 : 0; m < num_morsels; ++m) {
      const int64_t b = m * morsel;
      const int64_t e = std::min(driver_rows, b + morsel);
      TQP_RETURN_NOT_OK(eval_morsel(b, e, m, &slot));
    }
  } else {
    std::vector<MorselSlot> slots(
        static_cast<size_t>(ctx.pool->max_parallel_slots()));
    TQP_RETURN_NOT_OK(ctx.pool->ParallelFor(
        driver_rows, morsel, [&](int64_t b, int64_t e, int slot) -> Status {
          if (seeded && b == 0) return Status::OK();  // probe covered it
          return eval_morsel(b, e, b / morsel,
                             &slots[static_cast<size_t>(slot)]);
        }));
  }

  // Assemble pipeline outputs from chunks in morsel order — the stable
  // per-morsel decomposition makes the concatenation bit-identical to the
  // serial evaluation of the whole chain. Under a budget, chunks fault back
  // from disk one at a time and release right after their copy, so assembly
  // holds one output plus one chunk instead of one output plus all chunks
  // (the layout below mirrors ConcatRows exactly, zero-padded narrow uint8
  // parts included).
  for (size_t oi = 0; oi < p.outputs.size(); ++oi) {
    std::vector<Tensor>& parts = chunks[oi];
    Tensor& dst = (*values)[static_cast<size_t>(p.outputs[oi])];
    if (parts.size() == 1) {
      if (spill_chunks) {
        TQP_RETURN_NOT_OK(scope->Pin(chunk_ids[oi][0]));
        scope->Drop(chunk_ids[oi][0]);
        chunk_ids[oi][0] = 0;
      }
      dst = std::move(parts[0]);
    } else if (!spill_chunks) {
      TQP_ASSIGN_OR_RETURN(dst, runtime::ParallelConcatRows(ctx, parts));
    } else {
      const std::vector<ChunkMeta>& meta = chunk_meta[oi];
      const DType dt = meta[0].dtype;
      int64_t total = 0;
      int64_t out_cols = meta[0].cols;
      bool mixed_width = false;
      for (const ChunkMeta& cm : meta) {
        total += cm.rows;
        if (cm.cols != out_cols) mixed_width = true;
        out_cols = std::max(out_cols, cm.cols);
      }
      if (mixed_width && dt != DType::kUInt8) {
        // Mirror ConcatRows: only padded strings may differ in width.
        // Fault everything back and let the kernel raise its error.
        for (size_t m = 0; m < parts.size(); ++m) {
          TQP_RETURN_NOT_OK(scope->Pin(chunk_ids[oi][m]));
          scope->Drop(chunk_ids[oi][m]);
          chunk_ids[oi][m] = 0;
        }
        TQP_ASSIGN_OR_RETURN(dst, runtime::ParallelConcatRows(ctx, parts));
        parts.clear();
        continue;
      }
      TQP_ASSIGN_OR_RETURN(
          Tensor out, Tensor::Empty(dt, total, out_cols, options_.device));
      auto* out_bytes = static_cast<uint8_t*>(out.raw_mutable_data());
      for (size_t m = 0; m < parts.size(); ++m) {
        TQP_RETURN_NOT_OK(scope->Pin(chunk_ids[oi][m]));
        const Tensor& c = parts[m];
        if (c.defined() && c.nbytes() > 0) {
          // The one shared definition of the row-concat byte layout
          // (mixed-width uint8 padding included) — see ConcatRows.
          kernels::AppendRowsPadded(c, out_cols, &out_bytes);
        }
        scope->Drop(chunk_ids[oi][m]);
        chunk_ids[oi][m] = 0;
        parts[m] = Tensor();  // one chunk resident at a time
      }
      dst = std::move(out);
    }
    parts.clear();  // release morsel chunks back to the buffer pool early
  }
  return Status::OK();
}

Result<std::shared_ptr<const ExprFusionPlan>> PipelinedExecutor::FusionFor(
    int pipeline_index, const Pipeline& p, const std::vector<Tensor>& values,
    const std::vector<bool>& slice_now, int64_t driver_rows,
    int64_t morsel_rows, ProbeResult* probe) {
  // Source signature: everything lowering depends on that can drift between
  // runs — dtype, broadcast binding, and the shape rank/stride class (the
  // actual column arity plus a scalar/driver-aligned/other row class, so a
  // batch that changes broadcast arity can never be served the previous
  // shape's program). Streamed node dtypes/shapes are a function of the
  // sources, so they need not participate.
  std::string sig;
  const auto append = [&sig, driver_rows](int id, const Tensor& t,
                                          bool broadcast) {
    sig += std::to_string(id);
    sig.push_back(':');
    sig += std::to_string(static_cast<int>(t.dtype()));
    sig.push_back(broadcast ? 'b' : 'v');
    sig += std::to_string(t.cols());
    sig.push_back(t.rows() == 1 ? 's'
                                : (t.rows() == driver_rows ? 'd' : 'o'));
    sig.push_back('/');
  };
  for (size_t i = 0; i < p.sliced_sources.size(); ++i) {
    const Tensor& t = values[static_cast<size_t>(p.sliced_sources[i])];
    append(p.sliced_sources[i], t, !slice_now[i]);
  }
  for (int src : p.whole_sources) {
    const Tensor& t = values[static_cast<size_t>(src)];
    append(src, t, t.rows() == 1);
  }

  {
    MutexLock lock(fusion_mu_);
    FusionCacheEntry& entry =
        fusion_cache_[static_cast<size_t>(pipeline_index)];
    if (entry.compiled && entry.signature == sig) return entry.fusion;
  }

  // Cache miss: probe and compile WITHOUT the executor-wide lock, so
  // first-run compiles of independent pipelines overlap and report readers
  // never wait on a probe. Concurrent compiles of one pipeline are benign —
  // lowering is deterministic per signature, and each racer returns the
  // plan matching its own bound sources (and seeds its own morsel 0 from
  // its own probe).
  // Probe one morsel node-at-a-time so the compiler sees every streamed
  // value's dtype/shape. The probe is exactly morsel 0's evaluation — its
  // outputs are handed back through `probe` so the caller does not evaluate
  // that morsel again.
  obs::TraceSpan fusion_span("compile", "fusion.compile");
  if (fusion_span.enabled()) fusion_span.AddArg("pipeline", pipeline_index);
  morsel_evals_.fetch_add(1, std::memory_order_relaxed);
  const int64_t probe_rows = std::min(driver_rows, morsel_rows);
  std::vector<Tensor> scratch(static_cast<size_t>(program_->num_nodes()));
  for (size_t i = 0; i < p.sliced_sources.size(); ++i) {
    const size_t src = static_cast<size_t>(p.sliced_sources[i]);
    scratch[src] =
        slice_now[i] ? values[src].SliceRows(0, probe_rows) : values[src];
  }
  for (int src : p.whole_sources) {
    scratch[static_cast<size_t>(src)] = values[static_cast<size_t>(src)];
  }
  for (const PipelineNode& pn : p.nodes) {
    const OpNode& node = program_->node(pn.id);
    TQP_ASSIGN_OR_RETURN(Tensor out, EvalMorselNode(*program_, node, scratch, 0));
    scratch[static_cast<size_t>(pn.id)] = std::move(out);
  }
  probe->probed = true;
  probe->outputs.resize(p.outputs.size());
  for (size_t oi = 0; oi < p.outputs.size(); ++oi) {
    probe->outputs[oi] = scratch[static_cast<size_t>(p.outputs[oi])];
  }

  std::unordered_map<int, ExprExternal> externals;
  for (size_t i = 0; i < p.sliced_sources.size(); ++i) {
    const int id = p.sliced_sources[i];
    const Tensor& t = values[static_cast<size_t>(id)];
    ExprExternal ext;
    ext.dtype = t.dtype();
    ext.scalar = !slice_now[i];
    ext.single_col = t.cols() == 1;
    ext.driver_aligned = slice_now[i];
    externals.emplace(id, ext);
  }
  for (int id : p.whole_sources) {
    const Tensor& t = values[static_cast<size_t>(id)];
    ExprExternal ext;
    ext.dtype = t.dtype();
    ext.scalar = t.rows() == 1;
    ext.single_col = t.cols() == 1;
    ext.driver_aligned = false;
    ext.constant =
        program_->node(id).type == OpType::kConstant ? &t : nullptr;
    externals.emplace(id, ext);
  }
  std::vector<int> candidates;
  candidates.reserve(p.nodes.size());
  for (const PipelineNode& pn : p.nodes) candidates.push_back(pn.id);
  const auto external = [&](int id, ExprExternal* info) {
    auto it = externals.find(id);
    if (it != externals.end()) {
      *info = it->second;
      return true;
    }
    // A streamed value of this pipeline: the probe knows its dtype/shape.
    const Tensor& t = scratch[static_cast<size_t>(id)];
    if (!t.defined()) return false;
    info->dtype = t.dtype();
    info->scalar = false;
    info->single_col = t.cols() == 1;
    info->driver_aligned = false;  // overridden by the builder's own tracking
    info->constant = nullptr;
    return true;
  };
  ExprFusionPlan compiled =
      BuildExprFusionPlan(*program_, candidates, p.outputs, external);
  std::shared_ptr<const ExprFusionPlan> fusion =
      compiled.runs.empty()
          ? nullptr
          : std::make_shared<const ExprFusionPlan>(std::move(compiled));

  MutexLock lock(fusion_mu_);
  FusionCacheEntry& entry = fusion_cache_[static_cast<size_t>(pipeline_index)];
  entry.compiled = true;
  entry.signature = std::move(sig);
  entry.fusion = fusion;
  return fusion;
}

std::shared_ptr<const ExprFusionPlan> PipelinedExecutor::pipeline_fusion(
    int index) const {
  MutexLock lock(fusion_mu_);
  if (index < 0 || index >= static_cast<int>(fusion_cache_.size())) {
    return nullptr;
  }
  return fusion_cache_[static_cast<size_t>(index)].fusion;
}

std::string PipelinedExecutor::pipeline_fusion_signature(int index) const {
  MutexLock lock(fusion_mu_);
  if (index < 0 || index >= static_cast<int>(fusion_cache_.size())) {
    return std::string();
  }
  return fusion_cache_[static_cast<size_t>(index)].signature;
}

std::string PipelinedExecutor::FusionReport() const {
  MutexLock lock(fusion_mu_);
  std::ostringstream os;
  os << "expr backend: " << ExprBackendName(expr_backend_);
  if (expr_backend_ == ExprBackend::kSimd) {
    os << " ("
       << kernels::simd::SimdLevelName(kernels::simd::ActiveLevel()) << ")";
  }
  os << "; morsel rows: " << current_morsel_rows()
     << (adaptive_ != nullptr ? " (adaptive)" : "") << "\n";
  for (size_t pi = 0; pi < fusion_cache_.size(); ++pi) {
    const FusionCacheEntry& entry = fusion_cache_[pi];
    const Pipeline& p = plan_.pipelines[pi];
    os << "pipeline #" << pi << " (" << p.nodes.size() << " ops): ";
    if (!entry.compiled) {
      os << "not yet executed\n";
      continue;
    }
    if (entry.fusion == nullptr) {
      os << "no fusible runs\n";
      continue;
    }
    os << entry.fusion->num_fused_nodes << " ops in "
       << entry.fusion->runs.size() << " fused run(s)\n";
    for (size_t ri = 0; ri < entry.fusion->runs.size(); ++ri) {
      const ExprFusionPlan::Run& run = entry.fusion->runs[ri];
      os << "  run " << ri << " [";
      for (size_t i = run.begin; i < run.end; ++i) {
        os << (i > run.begin ? " " : "") << "n" << p.nodes[i].id;
      }
      os << "]: " << run.program->ToString();
      if (run.simd != nullptr) {
        os << "    " << run.simd->Summary();
        if (run.exec_stats != nullptr) {
          const int64_t si =
              run.exec_stats->simd_morsels.load(std::memory_order_relaxed);
          const int64_t in =
              run.exec_stats->interp_morsels.load(std::memory_order_relaxed);
          // Compile-probe morsels evaluate node-at-a-time (always
          // interpreted) and are not part of either tally.
          os << "; executed: simd=" << si << " interp=" << in
             << " morsels (probe morsels interpret node-at-a-time)";
        }
        os << "\n";
      }
    }
  }
  return os.str();
}

Result<std::vector<Tensor>> PipelinedExecutor::Run(
    const std::vector<Tensor>& inputs) {
  const TensorProgram& prog = *program_;
  if (inputs.size() != prog.input_nodes().size()) {
    return Status::Invalid("executor expects " +
                           std::to_string(prog.input_nodes().size()) +
                           " inputs, got " + std::to_string(inputs.size()));
  }
  Device* device = GetDevice(options_.device);
  ParallelContext ctx;
  ctx.pool = pool_;
  ctx.morsel_rows = options_.morsel_rows;
  ctx.partitioned_breakers = options_.partitioned_breakers ||
                             op::partitioned::DefaultPartitionedBreakers();

  // Per-query memory: the ambient scope (the QueryScheduler's) or a local
  // one when this executor carries its own budget. Worker tasks inherit it
  // through ThreadPool/StepScheduler submission.
  ScopedQueryBudget budget_scope(options_.memory_budget_bytes);
  BufferPool::QueryScope* const scope = budget_scope.scope();

  // Per-query cancellation/deadline, same precedence as the memory scope:
  // the ambient token (the QueryScheduler's) or a locally armed deadline
  // from ExecOptions::deadline_ms / TQP_QUERY_TIMEOUT_MS. Morsel and step
  // loops poll it through CheckAmbientCancelled().
  ScopedQueryDeadline deadline_scope(options_.deadline_ms);

  std::vector<Tensor> values(static_cast<size_t>(prog.num_nodes()));
  for (size_t i = 0; i < inputs.size(); ++i) {
    values[static_cast<size_t>(prog.input_nodes()[i])] = inputs[i];
    if (device->is_simulated() && options_.charge_transfers) {
      device->RecordTransfer(inputs[i].nbytes());
    }
  }

  // Spill bookkeeping (inert without a budget): a step output that stays
  // materialized for later consumers registers as an eviction candidate the
  // moment its producer step completes, gets pinned (and faulted back in if
  // it went to disk) around each consumer step's reads, and unregisters
  // when its refcount releases it. Registration ids follow the same
  // produce-before-consume ordering as `values` itself.
  SpillableSet spill(scope, static_cast<size_t>(prog.num_nodes()));

  // Consumer refcount per node: how many schedule steps still have to read
  // the value, plus one pin for program outputs (collected after the walk).
  // The zero crossing — a step's completion decrementing its read set —
  // releases the value's buffer back to the BufferPool: under DAG overlap
  // that is "after the last consumer completes", under the sequential walk
  // exactly the plan's per-step release sets.
  std::vector<std::atomic<int>> refs(static_cast<size_t>(prog.num_nodes()));
  for (const PipelineStep& step : plan_.schedule) {
    for (int r : step.reads) {
      refs[static_cast<size_t>(r)].fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (int out : prog.outputs()) {
    refs[static_cast<size_t>(out)].fetch_add(1, std::memory_order_relaxed);
  }

  auto run_step = [&](int step_index, const PipelineStep& step) -> Status {
    // Step-boundary cancellation poll plus the step-execution fault seam:
    // an injected hit fails the step with a structured error, which the
    // TaskGraph turns into cancellation of every not-yet-started step.
    TQP_RETURN_NOT_OK(CheckAmbientCancelled());
    if (FaultHit(FaultSite::kStepExec)) {
      return Status::Internal("injected fault: step_exec (step " +
                              std::to_string(step_index) + ")");
    }
    // One span per schedule step (the EXPLAIN ANALYZE unit): covers the
    // spill pin/unpin bookkeeping as well as the kernels, so per-step
    // durations sum to the walk's wall time.
    obs::TraceSpan step_span(
        "step", step.serial_node >= 0 ? "step.serial" : "step.pipeline");
    if (step_span.enabled()) step_span.AddArg("step", step_index);
    // Pin (faulting back in if spilled) everything this step reads before
    // any kernel touches it.
    for (int r : step.reads) {
      TQP_RETURN_NOT_OK(spill.PinSlot(static_cast<size_t>(r)));
    }
    // Read slots a partitioned breaker released mid-step (its hook drops the
    // consumed input before the breaker's output allocates); the release loop
    // below must not unpin or drop them a second time.
    std::vector<int> released;
    if (step.serial_node >= 0) {
      runtime::BreakerHooks hooks;
      ParallelContext step_ctx = ctx;
      if (ctx.partitioned_breakers) {
        hooks.release_input = [&](int operand) -> bool {
          if (std::find(step.reads.begin(), step.reads.end(), operand) ==
              step.reads.end()) {
            return false;
          }
          const size_t on = static_cast<size_t>(operand);
          // refs == 1 means this step is the only remaining consumer and the
          // value is not a program output — every other reader already
          // decremented, so nothing touches the slot concurrently.
          if (refs[on].load(std::memory_order_acquire) != 1) return false;
          spill.UnpinSlot(on);
          spill.DropSlot(on);
          values[on] = Tensor();
          released.push_back(operand);
          return true;
        };
        step_ctx.breaker_hooks = &hooks;
      }
      TQP_RETURN_NOT_OK(
          EvalWholeNode(prog.node(step.serial_node), &values, step_ctx));
      // Dead store (no consumer step, not an output): release immediately.
      if (refs[static_cast<size_t>(step.serial_node)].load(
              std::memory_order_acquire) == 0) {
        values[static_cast<size_t>(step.serial_node)] = Tensor();
      }
    } else {
      const Pipeline& p = plan_.pipelines[static_cast<size_t>(step.pipeline)];
      if (device->is_simulated()) {
        // Stream-invisible kernel launches would undercharge the simulated
        // clock; meter every node instead (results are identical).
        TQP_RETURN_NOT_OK(RunPipelineSerial(p, &values, ctx));
      } else {
        TQP_RETURN_NOT_OK(RunPipeline(step.pipeline, p, &values, ctx));
      }
    }
    if (step_span.enabled()) {
      int64_t out_rows = 0;
      int64_t out_bytes = 0;
      const auto tally = [&](int id) {
        const Tensor& t = values[static_cast<size_t>(id)];
        if (t.defined()) {
          out_rows += t.rows();
          out_bytes += t.nbytes();
        }
      };
      if (step.serial_node >= 0) {
        tally(step.serial_node);
      } else {
        const Pipeline& p =
            plan_.pipelines[static_cast<size_t>(step.pipeline)];
        for (int out : p.outputs) tally(out);
      }
      step_span.AddArg("rows", out_rows);
      step_span.AddArg("bytes", out_bytes);
    }
    // Produced values that later steps (or output collection) will read are
    // now pinned-but-idle: register them as eviction candidates.
    if (spill.enabled()) {
      const auto register_value = [&](int id) {
        const size_t n = static_cast<size_t>(id);
        if (refs[n].load(std::memory_order_acquire) > 0) {
          spill.Register(n, &values[n]);
        }
      };
      if (step.serial_node >= 0) {
        register_value(step.serial_node);
      } else {
        const Pipeline& p =
            plan_.pipelines[static_cast<size_t>(step.pipeline)];
        for (int out : p.outputs) register_value(out);
      }
    }
    for (int r : step.reads) {
      const size_t rn = static_cast<size_t>(r);
      const bool freed =
          std::find(released.begin(), released.end(), r) != released.end();
      if (!freed) spill.UnpinSlot(rn);
      if (refs[rn].fetch_sub(1, std::memory_order_acq_rel) == 1 && !freed) {
        spill.DropSlot(rn);
        values[rn] = Tensor();
      }
    }
    return Status::OK();
  };

  // Each step becomes a task gated on the steps that materialize its
  // sources; independent pipelines overlap. On the simulated device the
  // sequential walk is kept so kernel metering order stays deterministic;
  // TaskGraph::Run(nullptr) degenerates to exactly that walk (with the same
  // eager release points).
  const bool overlap = options_.pipeline_overlap && pool_ != nullptr &&
                       pool_->num_threads() > 1 && !device->is_simulated();
  runtime::TaskGraph graph;
  for (size_t si = 0; si < plan_.schedule.size(); ++si) {
    const PipelineStep& step = plan_.schedule[si];
    graph.AddTask(
        [&run_step, &step, si] {
          return run_step(static_cast<int>(si), step);
        },
        step.deps);
  }
  Status run_status;
  if (!overlap) {
    run_status = graph.Run(static_cast<ThreadPool*>(nullptr));
  } else if (options_.step_scheduler != nullptr &&
             options_.step_scheduler->pool() == pool_) {
    run_status = graph.Run(options_.step_scheduler);
  } else {
    run_status = graph.Run(pool_);
  }
  TQP_RETURN_NOT_OK(run_status);

  std::vector<Tensor> outputs;
  outputs.reserve(prog.outputs().size());
  for (int id : prog.outputs()) {
    // A program output may sit on disk (produced early, never read again):
    // fault it back in before handing it to the caller.
    TQP_RETURN_NOT_OK(spill.PinSlot(static_cast<size_t>(id)));
    outputs.push_back(values[static_cast<size_t>(id)]);
    if (device->is_simulated() && options_.charge_transfers) {
      device->RecordTransfer(outputs.back().nbytes());
    }
  }
  return outputs;
}

}  // namespace tqp
