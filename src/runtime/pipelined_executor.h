#ifndef TQP_RUNTIME_PIPELINED_EXECUTOR_H_
#define TQP_RUNTIME_PIPELINED_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "compile/pipeline.h"
#include "graph/executor.h"
#include "runtime/parallel_kernels.h"
#include "runtime/thread_pool.h"

namespace tqp {

/// \brief Pipelined morsel-streaming executor (ExecutorTarget::kPipelined).
///
/// Where ParallelExecutor still runs node-at-a-time (every op materializes
/// its full output before any consumer starts), this executor follows the
/// PipelinePlan built by the compiler (src/compile/pipeline.h): morsels of
/// the driver domain stream through each pipeline's fused operator chain —
/// scan -> filter -> project -> probe — holding only morsel-sized
/// intermediates, and only pipeline *outputs* materialize (assembled from
/// per-morsel chunks in morsel order, which makes every result bit-identical
/// to the serial executors for any thread count and morsel size). Pipeline
/// breakers (sorts, reductions, scans, concats) evaluate whole through the
/// same exact morsel-parallel kernels ParallelExecutor uses.
///
/// Morsel scratch churn is soaked up by the process-wide BufferPool, so a
/// streamed chain re-uses a handful of recycled blocks instead of allocating
/// one full-column tensor per op.
///
/// The schedule executes as a dependency DAG, not a list: each PipelineStep
/// becomes a TaskGraph task gated on the steps that materialize its sources,
/// so independent pipelines (the build sides of a multi-join query) run
/// concurrently — each still morsel-parallel inside — whenever a
/// multi-thread pool is available and ExecOptions::pipeline_overlap is on.
/// Node values carry consumer refcounts and release back to the BufferPool
/// the moment their last consumer step completes, so overlap does not grow
/// the peak working set; with overlap off the same refcounts make the
/// sequential walk release at each step's last-use set. When
/// ExecOptions::step_scheduler is set (the QueryScheduler's shared
/// dispatcher), step tasks are tagged with the running query's priority and
/// interleave with other queries' steps in priority order.
///
/// Scheduling: ExecOptions::pool, when set, is used directly (the shared
/// cross-query pool of the QueryScheduler). Otherwise num_threads selects a
/// pool exactly as in ParallelExecutor (0 = process-wide, 1 = serial,
/// N > 1 = private pool).
///
/// On a simulated accelerator device the executor falls back to whole-node
/// evaluation so every kernel launch is metered — streaming would hide
/// per-node costs from the simulated clock. Results are identical either
/// way. The per-op profiler hook likewise only fires for whole-node steps.
class PipelinedExecutor : public Executor {
 public:
  PipelinedExecutor(std::shared_ptr<const TensorProgram> program,
                    ExecOptions options);

  Result<std::vector<Tensor>> Run(const std::vector<Tensor>& inputs) override;
  std::string name() const override { return "pipelined"; }
  ExecutorTarget target() const override { return ExecutorTarget::kPipelined; }

  const PipelinePlan& plan() const { return plan_; }
  /// \brief The pool this executor schedules on (null when running serially).
  runtime::ThreadPool* pool() const { return pool_; }
  int64_t morsel_rows() const;

 private:
  /// Evaluates one node whole (breakers, scalars, fallback pipelines) with
  /// intra-op parallelism, simulated-device metering and the profiler hook.
  Status EvalWholeNode(const OpNode& node, std::vector<Tensor>* values,
                       const runtime::ParallelContext& ctx);

  /// Streams one pipeline: morsels of the driver domain evaluate the fused
  /// chain into per-slot scratch, output chunks concatenate in morsel order.
  Status RunPipeline(const Pipeline& p, std::vector<Tensor>* values,
                     const runtime::ParallelContext& ctx);

  /// Whole-node evaluation of a pipeline (shape surprises, simulated
  /// devices): same results, no streaming.
  Status RunPipelineSerial(const Pipeline& p, std::vector<Tensor>* values,
                           const runtime::ParallelContext& ctx);

  std::shared_ptr<const TensorProgram> program_;
  ExecOptions options_;
  PipelinePlan plan_;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;  // when num_threads > 1
  runtime::ThreadPool* pool_ = nullptr;              // owned, shared or global
};

}  // namespace tqp

#endif  // TQP_RUNTIME_PIPELINED_EXECUTOR_H_
