#ifndef TQP_RUNTIME_PIPELINED_EXECUTOR_H_
#define TQP_RUNTIME_PIPELINED_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "compile/expr_program.h"
#include "compile/pipeline.h"
#include "graph/executor.h"
#include "runtime/morsel.h"
#include "runtime/parallel_kernels.h"
#include "runtime/thread_pool.h"
#include "tensor/buffer_pool.h"

namespace tqp {

/// \brief Pipelined morsel-streaming executor (ExecutorTarget::kPipelined).
///
/// Where ParallelExecutor still runs node-at-a-time (every op materializes
/// its full output before any consumer starts), this executor follows the
/// PipelinePlan built by the compiler (src/compile/pipeline.h): morsels of
/// the driver domain stream through each pipeline's fused operator chain —
/// scan -> filter -> project -> probe — holding only morsel-sized
/// intermediates, and only pipeline *outputs* materialize (assembled from
/// per-morsel chunks in morsel order, which makes every result bit-identical
/// to the serial executors for any thread count and morsel size). Pipeline
/// breakers (sorts, reductions, scans, concats) evaluate whole through the
/// same exact morsel-parallel kernels ParallelExecutor uses.
///
/// Morsel scratch churn is soaked up by the process-wide BufferPool, so a
/// streamed chain re-uses a handful of recycled blocks instead of allocating
/// one full-column tensor per op.
///
/// Within a pipeline, maximal runs of elementwise/selection ops additionally
/// execute through the expression-fusion layer (ExecOptions::expr_fusion,
/// default on): each run is lowered once into a register-based ExprProgram
/// (src/compile/expr_program.h — constant folding, CSE, shared selection
/// vectors, register reuse) and then interpreted over every morsel in a
/// single sweep (src/kernels/expr_exec.h), so chain intermediates live in a
/// few recycled register buffers and only run *outputs* allocate tensors.
/// Lowering needs runtime dtypes, so the first execution of a pipeline
/// probes one morsel node-at-a-time and compiles against the observed
/// source signature; the compiled plan is cached on the executor and
/// revalidated (recompiled on drift) per run. The probe's outputs seed the
/// first morsel's chunks, so a compiling run still evaluates every driver
/// morsel exactly once. Fused results are bit-identical to node-at-a-time
/// evaluation by construction.
///
/// The schedule executes as a dependency DAG, not a list: each PipelineStep
/// becomes a TaskGraph task gated on the steps that materialize its sources,
/// so independent pipelines (the build sides of a multi-join query) run
/// concurrently — each still morsel-parallel inside — whenever a
/// multi-thread pool is available and ExecOptions::pipeline_overlap is on.
/// Node values carry consumer refcounts and release back to the BufferPool
/// the moment their last consumer step completes, so overlap does not grow
/// the peak working set; with overlap off the same refcounts make the
/// sequential walk release at each step's last-use set. When
/// ExecOptions::step_scheduler is set (the QueryScheduler's shared
/// dispatcher), step tasks are tagged with the running query's priority and
/// interleave with other queries' steps in priority order.
///
/// Scheduling: ExecOptions::pool, when set, is used directly (the shared
/// cross-query pool of the QueryScheduler). Otherwise num_threads selects a
/// pool exactly as in ParallelExecutor (0 = process-wide, 1 = serial,
/// N > 1 = private pool).
///
/// On a simulated accelerator device the executor falls back to whole-node
/// evaluation so every kernel launch is metered — streaming would hide
/// per-node costs from the simulated clock. Results are identical either
/// way. The per-op profiler hook likewise only fires for whole-node steps.
class PipelinedExecutor : public Executor {
 public:
  PipelinedExecutor(std::shared_ptr<const TensorProgram> program,
                    ExecOptions options);

  Result<std::vector<Tensor>> Run(const std::vector<Tensor>& inputs) override;
  std::string name() const override { return "pipelined"; }
  ExecutorTarget target() const override { return ExecutorTarget::kPipelined; }

  const PipelinePlan& plan() const { return plan_; }
  /// \brief The pool this executor schedules on (null when running serially).
  runtime::ThreadPool* pool() const { return pool_; }
  int64_t morsel_rows() const;

  /// \brief The expression backend this executor dispatches fused runs to,
  /// resolved at construction (kDefault -> TQP_EXPR_BACKEND).
  ExprBackend expr_backend() const { return expr_backend_; }

  /// \brief Whether adaptive morsel sizing is active (option or
  /// TQP_ADAPTIVE_MORSEL=1), and the size the next pipeline run would use.
  bool adaptive_morsels() const { return adaptive_ != nullptr; }
  int64_t current_morsel_rows() const {
    return adaptive_ != nullptr ? adaptive_->rows() : morsel_rows();
  }

  /// \brief The expression-fusion plan compiled for pipeline `index` (null
  /// before the pipeline first executes, when fusion is disabled, or when
  /// nothing in the pipeline fused).
  std::shared_ptr<const ExprFusionPlan> pipeline_fusion(int index) const;

  /// \brief The runtime source signature pipeline `index`'s cached fusion was
  /// compiled against (empty before the first execution). Covers, per
  /// source, everything lowering can depend on: dtype, broadcast binding,
  /// and the shape rank/stride class (column arity + scalar/driver/other
  /// row class) — exposed so tests can pin that shape drift recompiles.
  std::string pipeline_fusion_signature(int index) const;

  /// \brief Driver-morsel evaluations since construction (fused or
  /// node-at-a-time; the compile probe counts as the first morsel it
  /// seeds). A run evaluates each driver morsel of each pipeline exactly
  /// once — the probe-reuse regression test pins this.
  int64_t num_morsel_evals() const {
    return morsel_evals_.load(std::memory_order_relaxed);
  }

  /// \brief Human-readable fused-run boundaries and register counts for
  /// every pipeline compiled so far (`\explain pipelines` in the shell).
  std::string FusionReport() const;

 private:
  /// The first morsel's node values observed while compiling a pipeline's
  /// fusion: FusionFor evaluates one probe morsel node-at-a-time to learn
  /// runtime dtypes, and RunPipeline reuses its outputs as morsel 0's
  /// chunks instead of evaluating that morsel a second time.
  struct ProbeResult {
    bool probed = false;
    std::vector<Tensor> outputs;  // parallel to Pipeline::outputs
  };

  /// Evaluates one node whole (breakers, scalars, fallback pipelines) with
  /// intra-op parallelism, simulated-device metering and the profiler hook.
  Status EvalWholeNode(const OpNode& node, std::vector<Tensor>* values,
                       const runtime::ParallelContext& ctx);

  /// Streams one pipeline: morsels of the driver domain evaluate the fused
  /// chain into per-slot scratch, output chunks concatenate in morsel order.
  Status RunPipeline(int pipeline_index, const Pipeline& p,
                     std::vector<Tensor>* values,
                     const runtime::ParallelContext& ctx);

  /// Returns the (possibly cached) expression-fusion plan for one pipeline,
  /// compiling it against the current source signature when needed. The
  /// compile probes one morsel node-at-a-time to learn streamed dtypes;
  /// `probe` receives that morsel's pipeline outputs so the caller can seed
  /// morsel 0 with them (untouched on a cache hit). `morsel_rows` is the
  /// size chosen for this run (adaptive or static) — the probe must span
  /// exactly the run's first morsel.
  Result<std::shared_ptr<const ExprFusionPlan>> FusionFor(
      int pipeline_index, const Pipeline& p, const std::vector<Tensor>& values,
      const std::vector<bool>& slice_now, int64_t driver_rows,
      int64_t morsel_rows, ProbeResult* probe);

  /// Whole-node evaluation of a pipeline (shape surprises, simulated
  /// devices): same results, no streaming.
  Status RunPipelineSerial(const Pipeline& p, std::vector<Tensor>* values,
                           const runtime::ParallelContext& ctx);

  std::shared_ptr<const TensorProgram> program_;
  ExecOptions options_;
  PipelinePlan plan_;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;  // when num_threads > 1
  runtime::ThreadPool* pool_ = nullptr;              // owned, shared or global
  /// Resolved once at construction; every fused-run dispatch consults this.
  ExprBackend expr_backend_ = ExprBackend::kInterp;
  /// Non-null when adaptive morsel sizing is on: each RunPipeline reads one
  /// size from it (fixed for that pipeline run, so chunk assembly stays
  /// bit-identical) and feeds completed morsels' wall times back.
  std::unique_ptr<runtime::AdaptiveMorselController> adaptive_;

  /// Per-pipeline compiled fusion, keyed by the runtime source signature
  /// (dtypes + broadcast-ness); concurrent Run() calls share one cache.
  struct FusionCacheEntry {
    bool compiled = false;
    std::string signature;
    std::shared_ptr<const ExprFusionPlan> fusion;  // null = nothing fused
  };
  mutable Mutex fusion_mu_;
  mutable std::vector<FusionCacheEntry> fusion_cache_ TQP_GUARDED_BY(fusion_mu_);

  /// Driver-morsel evaluations (streamed pipelines only; whole-node
  /// fallbacks and breakers do not count).
  std::atomic<int64_t> morsel_evals_{0};
};

}  // namespace tqp

#endif  // TQP_RUNTIME_PIPELINED_EXECUTOR_H_
