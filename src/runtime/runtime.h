#ifndef TQP_RUNTIME_RUNTIME_H_
#define TQP_RUNTIME_RUNTIME_H_

/// \file Umbrella header for the morsel-driven parallel runtime: the
/// work-stealing thread pool, DAG task scheduler, exact morsel-parallel
/// kernels/operators, the ParallelExecutor and PipelinedExecutor backends,
/// and the concurrent query-session layer (scheduler, priority admission
/// queue, plan cache) multiplexed onto one cross-query pool.

#include "runtime/morsel.h"              // IWYU pragma: export
#include "runtime/parallel_executor.h"   // IWYU pragma: export
#include "runtime/parallel_kernels.h"    // IWYU pragma: export
#include "runtime/parallel_operators.h"  // IWYU pragma: export
#include "runtime/pipelined_executor.h"  // IWYU pragma: export
#include "runtime/plan_cache.h"          // IWYU pragma: export
#include "runtime/session.h"             // IWYU pragma: export
#include "runtime/step_scheduler.h"      // IWYU pragma: export
#include "runtime/task_graph.h"          // IWYU pragma: export
#include "runtime/thread_pool.h"         // IWYU pragma: export

#endif  // TQP_RUNTIME_RUNTIME_H_
