#ifndef TQP_RUNTIME_SESSION_H_
#define TQP_RUNTIME_SESSION_H_

#include <array>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/sync.h"
#include "compile/compiler.h"
#include "obs/trace.h"
#include "plan/catalog.h"
#include "runtime/plan_cache.h"
#include "runtime/step_scheduler.h"
#include "runtime/thread_pool.h"

namespace tqp::runtime {

/// \brief Admission priority of one query. Under backpressure (a filling
/// admission queue) low-priority work is shed first; at the queue head,
/// higher priorities dispatch before older lower-priority queries.
enum class QueryPriority : int8_t { kLow = 0, kNormal = 1, kHigh = 2 };

inline constexpr int kNumQueryPriorities = 3;

/// \brief Per-query execution record returned alongside the result.
struct QueryStats {
  int64_t queue_nanos = 0;    // admission -> worker pickup
  int64_t compile_nanos = 0;  // 0 on a plan-cache hit
  int64_t exec_nanos = 0;
  bool cache_hit = false;
  int64_t result_rows = 0;
  /// Per-query memory (BufferPool::QueryScope): the budget the query ran
  /// under (0 = unlimited), its peak live tensor bytes, and how much it
  /// spilled to disk to stay inside the budget.
  int64_t memory_budget_bytes = 0;
  int64_t peak_memory_bytes = 0;
  int64_t spilled_bytes = 0;
  /// True when the deadline expired while the query was still in the
  /// admission queue — it was shed at worker pickup and never executed.
  bool timed_out_in_queue = false;
};

/// \brief Result + stats of one scheduled query.
struct QueryOutcome {
  Status status;  // OK iff `table` is valid
  Table table;
  QueryStats stats;
  /// Structured termination reason when the query was stopped cooperatively
  /// (user cancel, deadline, preemption); kNone for success and for plain
  /// execution errors. `status` carries the matching kCancelled /
  /// kDeadlineExceeded code.
  CancelReason termination_reason = CancelReason::kNone;
};

/// \brief Aggregate scheduler counters (monotonic since construction).
struct SchedulerCounters {
  int64_t admitted = 0;
  int64_t rejected = 0;      // all rejections (full queue + backpressure)
  int64_t shed_low_priority = 0;  // rejections due to backpressure shedding
  int64_t completed = 0;     // includes failed
  int64_t failed = 0;
  /// Bytes completed queries wrote to the disk spill tier to stay inside
  /// their memory budget (a query over budget spills instead of OOM-ing),
  /// and how many completed queries spilled at all (per-eviction counts
  /// live in each query's QueryMemoryStats::spill_events).
  int64_t spilled_bytes = 0;
  int64_t queries_spilled = 0;
  /// Cooperative-termination tallies (all three also count into `failed`).
  int64_t cancelled = 0;         // user requests (Cancel)
  int64_t timed_out = 0;         // deadline expiries, queued or running
  int64_t timed_out_queued = 0;  // subset: expired before execution started
  int64_t preempted = 0;         // kLow queries stopped by PreemptLowPriority
};

struct SchedulerOptions {
  /// Queries executing at once. Each admitted query runs as a task on the
  /// shared thread pool (and fans its kernels out on that same pool), so
  /// this bounds intra-process query concurrency without dedicating threads
  /// per scheduler.
  int max_concurrent = 4;
  /// Bounded admission queue: Submit rejects (does not block) beyond this
  /// many queued-but-not-started queries.
  size_t queue_capacity = 64;
  /// Admission-aware backpressure: once the queue holds at least
  /// `backpressure_watermark * queue_capacity` queries, kLow submissions are
  /// shed immediately instead of queueing behind normal traffic.
  double backpressure_watermark = 0.5;
  /// LRU plan-cache entries (0 disables caching).
  size_t plan_cache_capacity = 32;
  /// The thread pool queries execute and parallelize on. Null selects the
  /// process-wide ThreadPool::Global(), which is how every scheduler (and
  /// every session of every scheduler) ends up sharing one pool. A non-null
  /// pool must outlive the scheduler.
  ThreadPool* pool = nullptr;
  /// Backend/device every admitted query compiles for. The default target is
  /// the morsel-driven ParallelExecutor on the shared pool; kPipelined
  /// streams morsels through fused operator chains instead.
  CompileOptions compile;
  /// Whole-lifecycle tracing (not owned; must outlive the scheduler). When
  /// set, every admitted query records admission, queue wait, compile /
  /// plan-cache-hit, and execution spans into this session, tagged with a
  /// per-query id — concurrent queries interleave in one exported timeline.
  /// Null (the default) keeps every trace hook to a null-pointer branch.
  obs::TraceSession* trace = nullptr;

  SchedulerOptions() { compile.target = ExecutorTarget::kParallel; }
};

/// \brief Admission control + dispatch for concurrent queries over a shared
/// catalog: a bounded, priority-ordered admission queue dispatched as at
/// most `max_concurrent` tasks on one shared ThreadPool, with an LRU
/// compiled-plan cache keyed on normalized SQL text.
///
/// There are no per-scheduler worker threads and no per-executor pools: any
/// number of schedulers and sessions multiplex onto the same process-wide
/// pool, queries included — a query's morsel fan-out and another query's
/// admission dispatch interleave on the same workers.
///
/// A query does not execute as one opaque task either: every compiled
/// executor is wired to this scheduler's StepScheduler, so an admitted
/// query's execution DAG — its pipeline steps (kPipelined) or node tasks
/// (kParallel) — is admitted step by step into shared per-priority ready
/// queues, tagged with the query's QueryPriority. Steps of different queries
/// therefore interleave at step granularity, and a long breaker in one query
/// no longer starves every other admitted query; a queued high-priority step
/// always starts before a queued low-priority one. Admission and
/// backpressure semantics (queue capacity, watermark shedding) are
/// unchanged.
///
/// The scheduler owns no table data; the catalog must outlive it. Destruction
/// drains: queued queries still execute, then the destructor waits for every
/// in-flight worker task to finish.
class QueryScheduler {
 public:
  explicit QueryScheduler(const Catalog* catalog, SchedulerOptions options = {});
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// \brief Admits a query. Fails fast with an error (no future) when the
  /// admission queue is full, or — for kLow priority — when the queue is
  /// past the backpressure watermark. When `query_id` is non-null it
  /// receives the admitted query's id, the handle Cancel takes; ids are
  /// process-unique and never 0.
  Result<std::future<QueryOutcome>> Submit(
      const std::string& sql, QueryPriority priority = QueryPriority::kNormal,
      uint64_t* query_id = nullptr);

  /// \brief Requests cooperative cancellation of an admitted query (queued
  /// or executing). Returns false when the id is unknown or the query
  /// already completed. A queued query terminates at worker pickup without
  /// executing; a running one stops within a morsel/step boundary. Either
  /// way its future resolves with Status::Cancelled and a structured
  /// termination reason.
  bool Cancel(uint64_t query_id);

  /// \brief Memory-pressure relief: requests cancellation (reason
  /// kPreempted) of every admitted kLow query, queued and running. Returns
  /// how many tokens were signalled. Callers invoke this when the pool is
  /// under pressure; preempted queries release all memory and fail with a
  /// structured reason so clients can resubmit later.
  int PreemptLowPriority();

  SchedulerCounters counters() const;
  const PlanCache& plan_cache() const { return plan_cache_; }
  const SchedulerOptions& options() const { return options_; }
  /// \brief The shared pool this scheduler executes on (never null).
  ThreadPool* pool() const { return pool_; }
  /// \brief The priority-aware step dispatcher every admitted query's
  /// execution DAG flows through.
  StepScheduler* step_scheduler() { return &steps_; }
  const StepScheduler& step_scheduler() const { return steps_; }

 private:
  struct Job {
    std::string sql;
    QueryPriority priority = QueryPriority::kNormal;
    std::promise<QueryOutcome> promise;
    int64_t enqueue_nanos = 0;
    uint64_t trace_query_id = 0;  // 0 when tracing is off
    uint64_t query_id = 0;        // Cancel handle; assigned at admission
    /// The query's cancellation token, created at admission with the
    /// deadline (CompileOptions::deadline_ms / TQP_QUERY_TIMEOUT_MS) armed
    /// from enqueue time — so queue wait counts against the deadline and
    /// queued-too-long queries shed at pickup. shared_ptr because Cancel /
    /// PreemptLowPriority signal it from other threads via tokens_.
    std::shared_ptr<CancellationToken> token;
  };

  /// Spawns worker tasks on the pool while capacity and work both exist.
  void DispatchLocked() TQP_REQUIRES(mu_);
  /// Pops the highest-priority job (FIFO within a priority).
  bool PopJobLocked(Job* job) TQP_REQUIRES(mu_);
  /// One worker task: drains jobs until the queue is empty, then retires.
  void WorkerBody();
  QueryOutcome Execute(Job* job);

  const Catalog* catalog_;
  SchedulerOptions options_;
  ThreadPool* pool_;
  StepScheduler steps_;  // after pool_: constructed from it, drains before it
  PlanCache plan_cache_;
  QueryCompiler compiler_;

  mutable Mutex mu_;
  std::array<std::deque<Job>, kNumQueryPriorities> queues_ TQP_GUARDED_BY(mu_);
  /// Admitted-and-not-yet-completed queries' tokens, the Cancel /
  /// PreemptLowPriority lookup table; entries erase when the worker finishes
  /// the query.
  struct TokenEntry {
    std::shared_ptr<CancellationToken> token;
    QueryPriority priority = QueryPriority::kNormal;
  };
  std::unordered_map<uint64_t, TokenEntry> tokens_ TQP_GUARDED_BY(mu_);
  uint64_t next_query_id_ TQP_GUARDED_BY(mu_) = 1;
  size_t queued_total_ TQP_GUARDED_BY(mu_) = 0;
  /// Worker tasks spawned and not yet retired.
  int active_workers_ TQP_GUARDED_BY(mu_) = 0;
  /// Workers currently inside Execute().
  int executing_workers_ TQP_GUARDED_BY(mu_) = 0;
  bool shutdown_ TQP_GUARDED_BY(mu_) = false;
  SchedulerCounters counters_ TQP_GUARDED_BY(mu_);
  CondVar idle_cv_;  // destructor waits for drain

  // In-flight compilation dedup: concurrent workers with the same normalized
  // statement wait for the first compilation instead of compiling redundantly.
  Mutex compile_mu_;
  CondVar compile_cv_;
  std::set<std::string> compiling_ TQP_GUARDED_BY(compile_mu_);
};

/// \brief A client handle onto a scheduler: convenience sync/async execution
/// plus per-session counters. Cheap to create; many sessions share one
/// scheduler (the "millions of users" fan-in point), and every scheduler
/// shares the process-wide thread pool.
class QuerySession {
 public:
  QuerySession(QueryScheduler* scheduler, std::string name = "session",
               QueryPriority priority = QueryPriority::kNormal);

  /// \brief Admits and waits. Admission rejection surfaces as the error.
  Result<Table> Execute(const std::string& sql);

  /// \brief Admits and returns the future (admission may reject).
  Result<std::future<QueryOutcome>> ExecuteAsync(const std::string& sql);

  const std::string& name() const { return name_; }
  QueryPriority priority() const { return priority_; }
  int64_t queries_ok() const { return queries_ok_.load(std::memory_order_relaxed); }
  int64_t queries_failed() const {
    return queries_failed_.load(std::memory_order_relaxed);
  }
  int64_t total_exec_nanos() const {
    return total_exec_nanos_.load(std::memory_order_relaxed);
  }

 private:
  QueryScheduler* scheduler_;
  std::string name_;
  QueryPriority priority_;
  std::atomic<int64_t> queries_ok_{0};
  std::atomic<int64_t> queries_failed_{0};
  std::atomic<int64_t> total_exec_nanos_{0};
};

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_SESSION_H_
