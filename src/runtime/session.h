#ifndef TQP_RUNTIME_SESSION_H_
#define TQP_RUNTIME_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "compile/compiler.h"
#include "plan/catalog.h"
#include "runtime/plan_cache.h"

namespace tqp::runtime {

/// \brief Per-query execution record returned alongside the result.
struct QueryStats {
  int64_t queue_nanos = 0;    // admission -> worker pickup
  int64_t compile_nanos = 0;  // 0 on a plan-cache hit
  int64_t exec_nanos = 0;
  bool cache_hit = false;
  int64_t result_rows = 0;
};

/// \brief Result + stats of one scheduled query.
struct QueryOutcome {
  Status status;  // OK iff `table` is valid
  Table table;
  QueryStats stats;
};

/// \brief Aggregate scheduler counters (monotonic since construction).
struct SchedulerCounters {
  int64_t admitted = 0;
  int64_t rejected = 0;   // bounded queue full
  int64_t completed = 0;  // includes failed
  int64_t failed = 0;
};

struct SchedulerOptions {
  /// Worker threads executing admitted queries (each runs one query at a
  /// time, so this bounds intra-process query concurrency).
  int max_concurrent = 4;
  /// Bounded admission queue: Submit rejects (does not block) beyond this
  /// many queued-but-not-started queries.
  size_t queue_capacity = 64;
  /// LRU plan-cache entries (0 disables caching).
  size_t plan_cache_capacity = 32;
  /// Backend/device every admitted query compiles for. The default target is
  /// the morsel-driven ParallelExecutor with the process-wide pool.
  CompileOptions compile;

  SchedulerOptions() { compile.target = ExecutorTarget::kParallel; }
};

/// \brief Admission control + dispatch for concurrent queries over a shared
/// catalog: a bounded FIFO queue feeding `max_concurrent` worker threads,
/// with an LRU compiled-plan cache keyed on normalized SQL text.
///
/// The scheduler owns no table data; the catalog must outlive it. Destruction
/// drains: queued queries still execute, then workers join.
class QueryScheduler {
 public:
  explicit QueryScheduler(const Catalog* catalog, SchedulerOptions options = {});
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// \brief Admits a query. Fails fast with an error (no future) when the
  /// admission queue is full.
  Result<std::future<QueryOutcome>> Submit(const std::string& sql);

  SchedulerCounters counters() const;
  const PlanCache& plan_cache() const { return plan_cache_; }
  const SchedulerOptions& options() const { return options_; }

 private:
  struct Job {
    std::string sql;
    std::promise<QueryOutcome> promise;
    int64_t enqueue_nanos = 0;
  };

  void WorkerLoop();
  QueryOutcome Execute(Job* job);

  const Catalog* catalog_;
  const SchedulerOptions options_;
  PlanCache plan_cache_;
  QueryCompiler compiler_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;
  bool shutdown_ = false;
  SchedulerCounters counters_;
  std::vector<std::thread> workers_;

  // In-flight compilation dedup: concurrent workers with the same normalized
  // statement wait for the first compilation instead of compiling redundantly.
  std::mutex compile_mu_;
  std::condition_variable compile_cv_;
  std::set<std::string> compiling_;
};

/// \brief A client handle onto a scheduler: convenience sync/async execution
/// plus per-session counters. Cheap to create; many sessions share one
/// scheduler (the "millions of users" fan-in point).
class QuerySession {
 public:
  QuerySession(QueryScheduler* scheduler, std::string name = "session");

  /// \brief Admits and waits. Admission rejection surfaces as the error.
  Result<Table> Execute(const std::string& sql);

  /// \brief Admits and returns the future (admission may reject).
  Result<std::future<QueryOutcome>> ExecuteAsync(const std::string& sql);

  const std::string& name() const { return name_; }
  int64_t queries_ok() const { return queries_ok_.load(std::memory_order_relaxed); }
  int64_t queries_failed() const {
    return queries_failed_.load(std::memory_order_relaxed);
  }
  int64_t total_exec_nanos() const {
    return total_exec_nanos_.load(std::memory_order_relaxed);
  }

 private:
  QueryScheduler* scheduler_;
  std::string name_;
  std::atomic<int64_t> queries_ok_{0};
  std::atomic<int64_t> queries_failed_{0};
  std::atomic<int64_t> total_exec_nanos_{0};
};

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_SESSION_H_
