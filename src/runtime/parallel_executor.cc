#include "runtime/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/stopwatch.h"
#include "graph/eval.h"
#include "graph/op_type.h"
#include "obs/trace.h"
#include "operators/partitioned/partition.h"
#include "runtime/morsel.h"
#include "runtime/step_scheduler.h"
#include "runtime/task_graph.h"
#include "tensor/buffer_pool.h"

namespace tqp {

using runtime::ParallelContext;
using runtime::TaskGraph;
using runtime::ThreadPool;

namespace {

/// True when operand `i` is the first occurrence of its node id in `inputs`
/// (a node like add(x, x) reads x once for refcount purposes).
bool FirstUseOfOperand(const std::vector<int>& inputs, size_t i) {
  for (size_t j = 0; j < i; ++j) {
    if (inputs[j] == inputs[i]) return false;
  }
  return true;
}

}  // namespace

ParallelExecutor::ParallelExecutor(std::shared_ptr<const TensorProgram> program,
                                   ExecOptions options)
    : program_(std::move(program)), options_(options) {
  // Clamp to the same ceiling as the TQP_THREADS env path: an absurd request
  // must degrade to "many threads", not abort the process in std::thread.
  options_.num_threads = std::min(options_.num_threads, 256);
  if (options_.pool != nullptr) {
    pool_ = options_.pool;  // shared cross-query pool (QueryScheduler)
  } else if (options_.num_threads == 0) {
    pool_ = ThreadPool::Global();
  } else if (options_.num_threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = owned_pool_.get();
  }  // num_threads == 1 (or negative): pool_ stays null -> serial execution
}

int64_t ParallelExecutor::morsel_rows() const {
  return options_.morsel_rows > 0 ? options_.morsel_rows
                                  : runtime::DefaultMorselRows();
}

Result<std::vector<Tensor>> ParallelExecutor::Run(const std::vector<Tensor>& inputs) {
  const TensorProgram& prog = *program_;
  if (inputs.size() != prog.input_nodes().size()) {
    return Status::Invalid("executor expects " +
                           std::to_string(prog.input_nodes().size()) +
                           " inputs, got " + std::to_string(inputs.size()));
  }
  Device* device = GetDevice(options_.device);
  ParallelContext ctx;
  ctx.pool = pool_;
  ctx.morsel_rows = options_.morsel_rows;
  ctx.partitioned_breakers = options_.partitioned_breakers ||
                             op::partitioned::DefaultPartitionedBreakers();

  // Per-query memory: the ambient scope (the QueryScheduler's) or a local
  // one when this executor carries its own budget; node tasks inherit it
  // through ThreadPool/StepScheduler submission.
  ScopedQueryBudget budget_scope(options_.memory_budget_bytes);
  BufferPool::QueryScope* const scope = budget_scope.scope();

  // Per-query cancellation/deadline, same precedence as the memory scope:
  // the ambient token (the QueryScheduler's) or a locally armed deadline
  // from ExecOptions::deadline_ms / TQP_QUERY_TIMEOUT_MS. Node tasks poll
  // it through CheckAmbientCancelled().
  ScopedQueryDeadline deadline_scope(options_.deadline_ms);

  std::vector<Tensor> values(static_cast<size_t>(prog.num_nodes()));
  for (size_t i = 0; i < inputs.size(); ++i) {
    values[static_cast<size_t>(prog.input_nodes()[i])] = inputs[i];
    if (device->is_simulated() && options_.charge_transfers) {
      device->RecordTransfer(inputs[i].nbytes());
    }
  }

  // Last-use refcounts: a node's value releases back to the BufferPool the
  // moment its final consumer finishes (program outputs stay pinned), so the
  // node-at-a-time path's peak allocation is comparable to the pipelined
  // executor's eager-release schedule instead of holding every intermediate
  // until the end of the run.
  std::vector<std::atomic<int>> refs(static_cast<size_t>(prog.num_nodes()));
  for (const OpNode& node : prog.nodes()) {
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      if (!FirstUseOfOperand(node.inputs, i)) continue;
      refs[static_cast<size_t>(node.inputs[i])].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  for (int out : prog.outputs()) {
    refs[static_cast<size_t>(out)].fetch_add(1, std::memory_order_relaxed);
  }

  // Spill bookkeeping (inert without a budget): a node value that stays
  // materialized for later consumers registers as an eviction candidate
  // when its producer task completes, is pinned (faulted back if on disk)
  // around each consumer's read, and unregisters at its last-use release.
  SpillableSet spill(scope, static_cast<size_t>(prog.num_nodes()));

  // One task per op node; dependencies mirror the node's data inputs. The
  // values vector is written once per slot, and TaskGraph's dependency
  // counters order those writes before any read (release/acquire).
  TaskGraph graph;
  std::vector<int> task_of(static_cast<size_t>(prog.num_nodes()), -1);
  for (const OpNode& node : prog.nodes()) {
    if (node.type == OpType::kInput) continue;
    std::vector<int> deps;
    deps.reserve(node.inputs.size());
    for (int in : node.inputs) {
      const int t = task_of[static_cast<size_t>(in)];
      if (t >= 0) deps.push_back(t);
    }
    task_of[static_cast<size_t>(node.id)] = graph.AddTask(
        [this, &prog, &node, &values, &ctx, device, &refs,
         &spill]() -> Status {
          // Node-boundary cancellation poll and the step-execution fault
          // seam; either failure cancels every not-yet-started task via
          // TaskGraph's first-error machinery.
          TQP_RETURN_NOT_OK(CheckAmbientCancelled());
          if (FaultHit(FaultSite::kStepExec)) {
            return Status::Internal("injected fault: step_exec (node " +
                                    std::to_string(node.id) + ")");
          }
          for (size_t i = 0; i < node.inputs.size(); ++i) {
            if (!FirstUseOfOperand(node.inputs, i)) continue;
            TQP_RETURN_NOT_OK(
                spill.PinSlot(static_cast<size_t>(node.inputs[i])));
          }
          Stopwatch timer;
          // Operands a partitioned breaker released mid-node (its hook drops
          // the consumed input before the output allocates); the release loop
          // below must not unpin or drop them a second time.
          std::vector<int> released;
          runtime::BreakerHooks hooks;
          ParallelContext node_ctx = ctx;
          if (ctx.partitioned_breakers) {
            hooks.release_input = [&](int operand) -> bool {
              if (std::find(node.inputs.begin(), node.inputs.end(), operand) ==
                  node.inputs.end()) {
                return false;
              }
              const size_t on = static_cast<size_t>(operand);
              // refs == 1 means this node is the only remaining consumer and
              // the value is not a program output — every other reader's task
              // already completed, so nothing touches the slot concurrently.
              if (refs[on].load(std::memory_order_acquire) != 1) return false;
              spill.UnpinSlot(on);
              spill.DropSlot(on);
              values[on] = Tensor();
              released.push_back(operand);
              return true;
            };
            node_ctx.breaker_hooks = &hooks;
          }
          // One span per op node — the node-at-a-time backend's step unit
          // (same "op" category the QueryProfiler records under).
          obs::TraceSpan op_span("op", OpTypeName(node.type));
          if (op_span.enabled()) op_span.AddArg("node", node.id);
          TQP_ASSIGN_OR_RETURN(
              Tensor out, runtime::ParallelEvalNode(node_ctx, prog, node, values));
          if (op_span.enabled()) op_span.AddArg("output_bytes", out.nbytes());
          if (device->is_simulated()) {
            bool irregular = false;
            const KernelCost cost =
                EstimateNodeCost(node, values, out, &irregular);
            device->RecordKernel(cost, irregular);  // internally serialized
          }
          if (options_.profiler != nullptr) {
            // Thread-safe per the OpProfiler contract.
            options_.profiler->RecordOp(node, timer.ElapsedNanos(), out.nbytes());
          }
          values[static_cast<size_t>(node.id)] = std::move(out);
          if (spill.enabled() &&
              refs[static_cast<size_t>(node.id)].load(
                  std::memory_order_acquire) > 0) {
            spill.Register(static_cast<size_t>(node.id),
                           &values[static_cast<size_t>(node.id)]);
          }
          for (size_t i = 0; i < node.inputs.size(); ++i) {
            if (!FirstUseOfOperand(node.inputs, i)) continue;
            const size_t in = static_cast<size_t>(node.inputs[i]);
            const bool freed =
                std::find(released.begin(), released.end(), node.inputs[i]) !=
                released.end();
            if (!freed) spill.UnpinSlot(in);
            if (refs[in].fetch_sub(1, std::memory_order_acq_rel) == 1 &&
                !freed) {
              spill.DropSlot(in);
              values[in] = Tensor();
            }
          }
          // Dead store (no consumer, not an output): release immediately.
          if (refs[static_cast<size_t>(node.id)].load(
                  std::memory_order_acquire) == 0) {
            values[static_cast<size_t>(node.id)] = Tensor();
          }
          return Status::OK();
        },
        deps);
  }
  // Through the scheduler's shared StepScheduler when available, so this
  // query's node tasks interleave with other queries' steps in priority
  // order; directly on the pool otherwise.
  Status run_status;
  if (options_.step_scheduler != nullptr &&
      options_.step_scheduler->pool() == pool_) {
    run_status = graph.Run(options_.step_scheduler);
  } else {
    run_status = graph.Run(pool_);
  }
  TQP_RETURN_NOT_OK(run_status);

  std::vector<Tensor> outputs;
  outputs.reserve(prog.outputs().size());
  for (int id : prog.outputs()) {
    // Fault spilled program outputs back in before handing them out.
    TQP_RETURN_NOT_OK(spill.PinSlot(static_cast<size_t>(id)));
    outputs.push_back(values[static_cast<size_t>(id)]);
    if (device->is_simulated() && options_.charge_transfers) {
      device->RecordTransfer(outputs.back().nbytes());
    }
  }
  return outputs;
}

}  // namespace tqp
