#ifndef TQP_RUNTIME_THREAD_POOL_H_
#define TQP_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sync.h"

namespace tqp::runtime {

/// \brief Work-stealing thread pool: one task deque per worker; owners pop
/// LIFO from the back (cache locality), thieves steal FIFO from the front
/// (oldest — and typically largest — work first). External submissions are
/// spread round-robin.
///
/// Two properties matter for the query runtime built on top:
///  - Tasks may submit further tasks (a TaskGraph node enqueues its ready
///    successors; a kernel fans out morsels).
///  - Blocking waits cooperate: ParallelFor and TaskGraph::Run run queued
///    tasks on the waiting thread instead of sleeping, so nested parallelism
///    cannot deadlock even when every worker is inside a wait.
class ThreadPool {
 public:
  /// `num_threads <= 0` selects DefaultThreadCount(). A pool of size 1 still
  /// spawns one worker (callers wanting strictly serial execution should not
  /// use a pool at all).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues `task` for asynchronous execution. Never blocks.
  void Submit(std::function<void()> task);

  /// \brief Executes one queued task on the calling thread if any is
  /// available (own queue first when called from a worker, then steal).
  /// Returns false when every queue was empty.
  bool TryRunOneTask();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// \brief Tasks executed since construction (all paths: workers,
  /// cooperative TryRunOneTask waiters).
  int64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  /// \brief Tasks a thread popped from another worker's queue (FIFO steals;
  /// the work-stealing health gauge in the metrics registry).
  int64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// \brief Morsel-driven parallel for over [0, total): splits the range into
  /// morsels of `morsel_rows` (<=0 selects DefaultMorselRows()) which workers
  /// claim from a shared atomic cursor. `fn(begin, end, slot)` runs for each
  /// morsel; `slot` is a dense id in [0, max slots) stable for the duration
  /// of one morsel and usable to index thread-local partial states (the same
  /// slot value is reused by at most one thread at a time).
  ///
  /// The calling thread participates (slot 0). The first non-OK status cancels
  /// remaining morsels and is returned once all in-flight morsels finish.
  Status ParallelFor(int64_t total, int64_t morsel_rows,
                     const std::function<Status(int64_t, int64_t, int)>& fn);

  /// \brief Convenience overload without a slot id.
  Status ParallelFor(int64_t total, int64_t morsel_rows,
                     const std::function<Status(int64_t, int64_t)>& fn);

  /// \brief Upper bound on the `slot` values ParallelFor passes to `fn`
  /// (callers size thread-local state arrays with this).
  int max_parallel_slots() const { return num_threads() + 1; }

  /// \brief The process-wide pool, created on first use with
  /// DefaultThreadCount() workers. Never destroyed (detached at exit).
  static ThreadPool* Global();

  /// \brief Worker count for default-constructed pools: the TQP_THREADS env
  /// var when set and positive, else std::thread::hardware_concurrency().
  static int DefaultThreadCount();

 private:
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> queue TQP_GUARDED_BY(mu);
  };

  void WorkerLoop(int index);
  bool PopTask(int self_index, std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  /// Sleep/wake handshake only: the predicate state (queued_, stop_) is
  /// atomic, and the empty critical sections in Submit/~ThreadPool pair with
  /// the wait in WorkerLoop to rule out lost wakeups.
  Mutex wake_mu_;
  CondVar wake_cv_;
  std::atomic<int64_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<int64_t> tasks_executed_{0};
  std::atomic<int64_t> steals_{0};
};

}  // namespace tqp::runtime

#endif  // TQP_RUNTIME_THREAD_POOL_H_
