#include "runtime/step_scheduler.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/cancel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"

namespace tqp::runtime {

namespace {

// Ambient priority of the query whose execution the current thread is
// driving. Set by StepScheduler::ScopedPriority around a query's run; read
// once per TaskGraph submission.
thread_local int tls_step_priority = 1;  // QueryPriority::kNormal

}  // namespace

StepScheduler::StepScheduler(ThreadPool* pool, int max_inflight)
    : pool_(pool),
      max_inflight_(max_inflight > 0 ? max_inflight
                                     : std::max(1, pool->num_threads())) {}

StepScheduler::~StepScheduler() {
  while (true) {
    {
      MutexLock lock(mu_);
      if (inflight_ == 0 && ready_total_ == 0) return;
    }
    if (pool_->TryRunOneTask()) continue;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void StepScheduler::Submit(std::function<void()> step, int priority) {
  priority = std::clamp(priority, 0, kNumPriorities - 1);
  // Steps of different queries share the pump tasks, so each step carries
  // its own query-memory scope (the submitter's ambient one). A null scope
  // needs no wrapper: PumpOne masks the pump's inherited scope before any
  // step runs, so unwrapped steps execute scope-less already.
  if (auto* scope = BufferPool::QueryScope::Current(); scope != nullptr) {
    step = [scope, inner = std::move(step)] {
      BufferPool::QueryScope::Attach attach(scope);
      inner();
    };
  }
  // Per-step cancellation-token propagation, same rules as the scope above:
  // the token rides with the step, and PumpOne masks the pump's inherited
  // token so steps of other queries never observe it.
  if (auto* token = CancellationToken::Current(); token != nullptr) {
    step = [token, inner = std::move(step)] {
      CancellationToken::Attach attach(token);
      inner();
    };
  }
  // Same per-step ambient propagation for the trace context: a traced
  // query's steps record into its session (parented to the submitting span)
  // no matter which pump runs them, and untraced steps run context-less
  // because PumpOne masks the pump's own inherited context.
  if (const obs::TraceContextState trace = obs::CaptureTraceContext();
      trace.session != nullptr) {
    step = [trace, inner = std::move(step)] {
      obs::TraceContext ctx(trace);
      inner();
    };
  }
  bool spawn = false;
  {
    MutexLock lock(mu_);
    ready_[static_cast<size_t>(priority)].push_back(std::move(step));
    ++ready_total_;
    ++submitted_[static_cast<size_t>(priority)];
    // Process-wide mirror (all StepSchedulers sum into one counter).
    static obs::Counter* submitted_metric =
        obs::MetricsRegistry::Global()->GetCounter(
            "tqp_steps_submitted_total",
            "Execution-DAG steps submitted to priority-aware step dispatch");
    submitted_metric->Add(1);
    if (inflight_ < max_inflight_) {
      ++inflight_;
      spawn = true;
    }
  }
  if (spawn) pool_->Submit([this] { PumpOne(); });
}

bool StepScheduler::PopReadyLocked(std::function<void()>* step) {
  for (int p = kNumPriorities - 1; p >= 0; --p) {
    auto& q = ready_[static_cast<size_t>(p)];
    if (q.empty()) continue;
    *step = std::move(q.front());
    q.pop_front();
    --ready_total_;
    return true;
  }
  return false;
}

void StepScheduler::PumpOne() {
  // A pump task may have been submitted while some query's scope was
  // ambient; mask it — every popped step re-attaches its own scope, and the
  // pump's re-submission below must not capture a scope that could be gone
  // by the time the chained pump runs.
  BufferPool::QueryScope::Attach mask(nullptr);
  // Mask the inherited cancellation token too: a pump chain serves many
  // queries, and one query's cancellation must not leak into another's step.
  CancellationToken::Attach token_mask(nullptr);
  // Mask the inherited trace context for the same lifetime reason: a pump
  // chain outlives the query that spawned it (it drains the shared ready
  // queue), so an untraced step popped later must not record into — and the
  // chained pump must not re-capture — a session that may already be gone.
  obs::TraceContext trace_mask(nullptr, 0);
  std::function<void()> step;
  {
    MutexLock lock(mu_);
    if (!PopReadyLocked(&step)) {
      --inflight_;
      return;
    }
  }
  step();
  static obs::Counter* executed_metric =
      obs::MetricsRegistry::Global()->GetCounter(
          "tqp_steps_executed_total",
          "Execution-DAG steps run by step-scheduler pumps");
  executed_metric->Add(1);
  bool more;
  {
    MutexLock lock(mu_);
    ++executed_;
    more = ready_total_ > 0;
    if (!more) --inflight_;
  }
  // Re-submission and Submit's spawn check are both under mu_, so whichever
  // observes the other's state second keeps exactly one pump alive per
  // pending step (no lost wakeups).
  if (more) pool_->Submit([this] { PumpOne(); });
}

std::array<int64_t, StepScheduler::kNumPriorities> StepScheduler::submitted()
    const {
  MutexLock lock(mu_);
  return submitted_;
}

int64_t StepScheduler::executed() const {
  MutexLock lock(mu_);
  return executed_;
}

StepScheduler::ScopedPriority::ScopedPriority(int priority)
    : prev_(tls_step_priority) {
  tls_step_priority = std::clamp(priority, 0, kNumPriorities - 1);
}

StepScheduler::ScopedPriority::~ScopedPriority() { tls_step_priority = prev_; }

int StepScheduler::CurrentPriority() { return tls_step_priority; }

}  // namespace tqp::runtime
