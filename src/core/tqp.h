#ifndef TQP_CORE_TQP_H_
#define TQP_CORE_TQP_H_

/// \file Umbrella header for the TQP reproduction: include this to get the
/// full public API (tensor runtime, SQL frontend, planner/binder, compiler,
/// graph executors, relational operators, parallel runtime, engines, ML,
/// TPC-H substrate, profiler).

#include "baseline/columnar.h"          // IWYU pragma: export
#include "baseline/volcano.h"           // IWYU pragma: export
#include "compile/compiler.h"           // IWYU pragma: export
#include "compile/expr_program.h"       // IWYU pragma: export
#include "compile/pipeline.h"           // IWYU pragma: export
#include "datasets/iris.h"              // IWYU pragma: export
#include "datasets/reviews.h"           // IWYU pragma: export
#include "frontend/spark_plan.h"        // IWYU pragma: export
#include "graph/dot.h"                  // IWYU pragma: export
#include "graph/eager_executor.h"       // IWYU pragma: export
#include "graph/executor.h"             // IWYU pragma: export
#include "graph/interp_executor.h"      // IWYU pragma: export
#include "graph/serialize.h"            // IWYU pragma: export
#include "graph/static_executor.h"      // IWYU pragma: export
#include "kernels/kernels.h"            // IWYU pragma: export
#include "ml/linear.h"                  // IWYU pragma: export
#include "ml/mlp.h"                     // IWYU pragma: export
#include "ml/text.h"                    // IWYU pragma: export
#include "ml/tree.h"                    // IWYU pragma: export
#include "operators/expr_vector_eval.h" // IWYU pragma: export
#include "operators/hash_groupby.h"     // IWYU pragma: export
#include "operators/hash_join.h"        // IWYU pragma: export
#include "plan/binder.h"                // IWYU pragma: export
#include "plan/optimizer.h"             // IWYU pragma: export
#include "plan/physical_planner.h"      // IWYU pragma: export
#include "profiler/profiler.h"          // IWYU pragma: export
#include "relational/csv.h"             // IWYU pragma: export
#include "relational/ingest.h"          // IWYU pragma: export
#include "runtime/runtime.h"            // IWYU pragma: export
#include "sql/parser.h"                 // IWYU pragma: export
#include "tensor/buffer_pool.h"         // IWYU pragma: export
#include "tpch/dbgen.h"                 // IWYU pragma: export
#include "tpch/queries.h"               // IWYU pragma: export
#include "tpch/schema.h"                // IWYU pragma: export

#endif  // TQP_CORE_TQP_H_
