#ifndef TQP_CORE_TQP_H_
#define TQP_CORE_TQP_H_

/// \file Umbrella header for the TQP reproduction: include this to get the
/// full public API (tensor runtime, SQL frontend, compiler, engines, ML,
/// TPC-H substrate, profiler).

#include "baseline/columnar.h"    // IWYU pragma: export
#include "baseline/volcano.h"     // IWYU pragma: export
#include "compile/compiler.h"     // IWYU pragma: export
#include "datasets/iris.h"        // IWYU pragma: export
#include "datasets/reviews.h"     // IWYU pragma: export
#include "graph/serialize.h"      // IWYU pragma: export
#include "ml/linear.h"            // IWYU pragma: export
#include "ml/mlp.h"               // IWYU pragma: export
#include "ml/text.h"              // IWYU pragma: export
#include "ml/tree.h"              // IWYU pragma: export
#include "profiler/profiler.h"    // IWYU pragma: export
#include "relational/csv.h"       // IWYU pragma: export
#include "relational/ingest.h"    // IWYU pragma: export
#include "tpch/dbgen.h"           // IWYU pragma: export
#include "tpch/queries.h"         // IWYU pragma: export
#include "tpch/schema.h"          // IWYU pragma: export

#endif  // TQP_CORE_TQP_H_
