#include "compile/pipeline.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "obs/trace.h"

namespace tqp {

namespace {

/// Role of one operand of a streamable op: aligned operands are row-aligned
/// with the op's output domain and stream morsel-by-morsel; whole operands
/// are consumed in full (hash-build sides, sorted arrays, weight matrices).
enum class Role : int8_t { kAligned, kWholeOperand };

bool RolesFor(const OpNode& node, std::vector<Role>* roles) {
  const auto all = [&](Role r) {
    roles->assign(node.inputs.size(), r);
    return true;
  };
  switch (node.type) {
    case OpType::kBinary:
    case OpType::kCompare:
    case OpType::kLogical:
    case OpType::kUnary:
    case OpType::kCast:
    case OpType::kWhere:
    case OpType::kNonzero:
    case OpType::kCompress:
    case OpType::kRepeatInterleave:
    case OpType::kHashRows:
    case OpType::kHashCombine:
    case OpType::kArangeLike:
    case OpType::kHeadRows:
    case OpType::kGatherCols:
    case OpType::kConcatCols:
    case OpType::kStringCompareScalar:
    case OpType::kStringCompare:
    case OpType::kStringLike:
    case OpType::kSubstring:
    case OpType::kHashTokenize:
      return all(Role::kAligned);
    case OpType::kGather:          // (data, indices): stream the probe side
    case OpType::kSearchSorted:    // (sorted, values): stream the probe side
    case OpType::kEmbeddingBagSum: // (table, ids): stream the lookup side
      *roles = {Role::kWholeOperand, Role::kAligned};
      return true;
    case OpType::kMatMul:          // (a, b): rows of `a` are independent
      *roles = {Role::kAligned, Role::kWholeOperand};
      return true;
    case OpType::kMatMulAddBias:
      *roles = {Role::kAligned, Role::kWholeOperand, Role::kWholeOperand};
      return true;
    default:
      return false;  // breaker
  }
}

/// Disjoint-set over cardinality symbols: Union records "provably equal row
/// counts" (operands of one row-aligned op).
class UnionFind {
 public:
  int Fresh() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return parent_.back();
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  int Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[static_cast<size_t>(b)] = a;
    return a;
  }

 private:
  std::vector<int> parent_;
};

class Splitter {
 public:
  explicit Splitter(const TensorProgram& program) : prog_(program) {}

  PipelinePlan Build() {
    const int n = prog_.num_nodes();
    scalar_.assign(static_cast<size_t>(n), false);
    card_.assign(static_cast<size_t>(n), -1);
    pipe_of_.assign(static_cast<size_t>(n), -1);
    for (const OpNode& node : prog_.nodes()) Visit(node);
    Flush();
    FinalizePipelines();
    BuildStepGraph();
    return std::move(plan_);
  }

 private:
  int OpenIndex() const { return static_cast<int>(plan_.pipelines.size()); }

  int Intern(const std::string& key) {
    auto it = interned_.find(key);
    if (it != interned_.end()) return it->second;
    const int sym = uf_.Fresh();
    interned_.emplace(key, sym);
    return sym;
  }

  bool AllAlignedScalar(const OpNode& node, const std::vector<Role>& roles) {
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      if (roles[i] == Role::kAligned &&
          !scalar_[static_cast<size_t>(node.inputs[i])]) {
        return false;
      }
    }
    return true;
  }

  /// Statically-provable 1-row nodes (reduction results, scalar literals and
  /// arithmetic over them). They evaluate serially and bind as broadcast
  /// operands everywhere.
  bool InferScalar(const OpNode& node, const std::vector<Role>& roles,
                   bool streamable) {
    switch (node.type) {
      case OpType::kReduceAll:
        return true;
      case OpType::kCumSum:
      case OpType::kSegmentBoundaries:
      case OpType::kArgsortRows:
      case OpType::kUniqueSorted:
        return scalar_[static_cast<size_t>(node.inputs[0])];
      case OpType::kNonzero:
      case OpType::kCompress:
      case OpType::kRepeatInterleave:
      case OpType::kHeadRows:
        return false;  // output row count is data-dependent
      default:
        return streamable && AllAlignedScalar(node, roles);
    }
  }

  /// Output cardinality symbol. `c` is the unified symbol of the aligned
  /// vector operands (-1 when there are none).
  int OutputCard(const OpNode& node, int c) {
    const auto in_card_key = [&](int i) {
      const int id = node.inputs[static_cast<size_t>(i)];
      return scalar_[static_cast<size_t>(id)]
                 ? std::string("s")
                 : std::to_string(uf_.Find(card_[static_cast<size_t>(id)]));
    };
    switch (node.type) {
      case OpType::kNonzero:
        // Same row count as any compress over the same mask.
        return Intern("sel:" + std::to_string(node.inputs[0]));
      case OpType::kCompress:
        return Intern("sel:" + std::to_string(node.inputs[1]));
      case OpType::kRepeatInterleave:
        return Intern("ri:" + std::to_string(node.inputs[1]));
      case OpType::kHeadRows:
        return Intern("head:" + std::to_string(c < 0 ? -1 : uf_.Find(c)) + ":" +
                      std::to_string(node.attrs.GetInt("n")));
      case OpType::kUniqueSorted:
        return Intern("uniq:" + std::to_string(node.inputs[0]));
      case OpType::kSegmentedReduce:
        // Rows equal the runtime value of the num_segments operand.
        return Intern("segred:" + std::to_string(node.inputs[2]));
      case OpType::kConcatRows: {
        std::string key = "cat";
        for (size_t i = 0; i < node.inputs.size(); ++i) {
          key.push_back(':');
          key += in_card_key(static_cast<int>(i));
        }
        return Intern(key);
      }
      case OpType::kGather:
      case OpType::kSearchSorted:
      case OpType::kEmbeddingBagSum:
        return uf_.Find(card_[static_cast<size_t>(node.inputs[1])]);
      case OpType::kCumSum:
      case OpType::kSegmentBoundaries:
      case OpType::kArgsortRows:
        return uf_.Find(card_[static_cast<size_t>(node.inputs[0])]);
      default:
        // Cardinality-preserving over the aligned operands.
        return c >= 0 ? uf_.Find(c) : uf_.Fresh();
    }
  }

  void EmitSerial(int id, bool flush) {
    if (flush) Flush();
    PipelineStep step;
    step.serial_node = id;
    const OpType t = prog_.node(id).type;
    step.breaker =
        t == OpType::kArgsortRows || t == OpType::kSegmentedReduce;
    plan_.schedule.push_back(step);
  }

  void Visit(const OpNode& node) {
    const size_t id = static_cast<size_t>(node.id);
    if (node.type == OpType::kInput) {
      card_[id] = uf_.Fresh();
      return;  // bound by the executor, no step
    }
    if (node.type == OpType::kConstant) {
      const Tensor& value =
          prog_.constant(static_cast<int>(node.attrs.GetInt("const_id")));
      scalar_[id] = value.rows() == 1;
      card_[id] = scalar_[id] ? -1 : uf_.Fresh();
      EmitSerial(node.id, /*flush=*/false);  // depends on nothing
      return;
    }
    std::vector<Role> roles;
    const bool streamable = RolesFor(node, &roles);
    if (InferScalar(node, roles, streamable)) {
      // Statically 1-row output. Scalar *expressions* read only other
      // scalars, but a reduction reads a vector — if that vector is being
      // streamed by the open pipeline, the pipeline must materialize first.
      scalar_[id] = true;
      card_[id] = -1;
      bool reads_open = false;
      for (int in : node.inputs) {
        if (pipe_of_[static_cast<size_t>(in)] == OpenIndex()) {
          reads_open = true;
          break;
        }
      }
      EmitSerial(node.id, /*flush=*/reads_open);
      return;
    }
    if (!streamable) {
      // No UnifyAligned here: a breaker's operands need not share a row
      // count (ConcatRows concatenates *different* cardinalities).
      card_[id] = OutputCard(node, -1);
      EmitSerial(node.id, /*flush=*/true);
      return;
    }
    const int c = UnifyAligned(node, roles);
    if (c < 0) {
      // All aligned operands are scalars but the output row count is
      // data-dependent (e.g. nonzero over a 1-row mask): evaluate whole.
      card_[id] = OutputCard(node, c);
      EmitSerial(node.id, /*flush=*/true);
      return;
    }
    if (!CanJoinOpen(node, roles, c)) {
      Flush();
      open_driver_ = uf_.Find(c);
    }
    open_nodes_.push_back(node.id);
    pipe_of_[id] = OpenIndex();
    card_[id] = OutputCard(node, c);
  }

  /// Unifies the cardinality symbols of the aligned vector operands; -1 when
  /// every aligned operand is scalar.
  int UnifyAligned(const OpNode& node, const std::vector<Role>& roles) {
    int c = -1;
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      if (i < roles.size() && roles[i] != Role::kAligned) continue;
      const int in = node.inputs[i];
      if (scalar_[static_cast<size_t>(in)]) continue;
      const int in_card = card_[static_cast<size_t>(in)];
      c = c < 0 ? uf_.Find(in_card) : uf_.Union(c, in_card);
    }
    return c;
  }

  bool CanJoinOpen(const OpNode& node, const std::vector<Role>& roles, int c) {
    if (open_nodes_.empty()) return false;
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      const int in = node.inputs[i];
      if (scalar_[static_cast<size_t>(in)]) continue;
      const bool in_open = pipe_of_[static_cast<size_t>(in)] == OpenIndex();
      if (roles[i] == Role::kWholeOperand) {
        // A whole operand must be fully materialized, which the open
        // pipeline by definition has not done yet.
        if (in_open) return false;
        continue;
      }
      if (in_open) continue;  // streamed hand-off
      // Materialized aligned operand: only sliceable by driver offsets.
      if (uf_.Find(card_[static_cast<size_t>(in)]) != uf_.Find(open_driver_)) {
        return false;
      }
    }
    // Offset-corrected ops emit global row positions, so their input domain
    // must be the driver domain itself.
    if (node.type == OpType::kNonzero || node.type == OpType::kArangeLike ||
        node.type == OpType::kHeadRows) {
      if (uf_.Find(c) != uf_.Find(open_driver_)) return false;
    }
    return true;
  }

  void Flush() {
    if (open_nodes_.empty()) return;
    Pipeline p;
    p.nodes.reserve(open_nodes_.size());
    const int index = OpenIndex();
    for (int id : open_nodes_) {
      const OpNode& node = prog_.node(id);
      if (node.type == OpType::kNonzero || node.type == OpType::kArangeLike ||
          node.type == OpType::kHeadRows) {
        p.has_offset_op = true;
      }
      std::vector<Role> roles;
      RolesFor(node, &roles);
      PipelineNode pn;
      pn.id = id;
      pn.bindings.reserve(node.inputs.size());
      for (size_t i = 0; i < node.inputs.size(); ++i) {
        const int in = node.inputs[i];
        if (pipe_of_[static_cast<size_t>(in)] == index) {
          pn.bindings.push_back(OperandBinding::kStreamed);
        } else if (roles[i] == Role::kAligned &&
                   !scalar_[static_cast<size_t>(in)]) {
          TQP_DCHECK(uf_.Find(card_[static_cast<size_t>(in)]) ==
                     uf_.Find(open_driver_));
          pn.bindings.push_back(OperandBinding::kSliced);
          AddUnique(&p.sliced_sources, in);
        } else {
          pn.bindings.push_back(OperandBinding::kWhole);
          AddUnique(&p.whole_sources, in);
        }
      }
      p.nodes.push_back(std::move(pn));
    }
    plan_.pipelines.push_back(std::move(p));
    PipelineStep step;
    step.pipeline = index;
    plan_.schedule.push_back(step);
    open_nodes_.clear();
    open_driver_ = -1;
  }

  static void AddUnique(std::vector<int>* v, int id) {
    if (std::find(v->begin(), v->end(), id) == v->end()) v->push_back(id);
  }

  void FinalizePipelines() {
    // A streamed node materializes iff something outside its pipeline (a
    // later step or the program's output list) reads it.
    std::vector<bool> needed(static_cast<size_t>(prog_.num_nodes()), false);
    for (const OpNode& node : prog_.nodes()) {
      for (int in : node.inputs) {
        if (pipe_of_[static_cast<size_t>(in)] >= 0 &&
            pipe_of_[static_cast<size_t>(in)] !=
                pipe_of_[static_cast<size_t>(node.id)]) {
          needed[static_cast<size_t>(in)] = true;
        }
      }
    }
    for (int out : prog_.outputs()) {
      if (pipe_of_[static_cast<size_t>(out)] >= 0) {
        needed[static_cast<size_t>(out)] = true;
      }
    }
    for (size_t pi = 0; pi < plan_.pipelines.size(); ++pi) {
      Pipeline& p = plan_.pipelines[pi];
      for (const PipelineNode& pn : p.nodes) {
        if (needed[static_cast<size_t>(pn.id)]) p.outputs.push_back(pn.id);
      }
    }
  }

  /// Turns the step list into an explicit DAG: per-step dependency edges
  /// (the producers of everything the step reads), per-step read sets, and
  /// per-node last-consumer release sets. Runs after FinalizePipelines so
  /// pipeline output lists are final.
  void BuildStepGraph() {
    const size_t n = static_cast<size_t>(prog_.num_nodes());
    plan_.producer_step.assign(n, -1);
    for (size_t si = 0; si < plan_.schedule.size(); ++si) {
      const PipelineStep& step = plan_.schedule[si];
      if (step.serial_node >= 0) {
        plan_.producer_step[static_cast<size_t>(step.serial_node)] =
            static_cast<int>(si);
      } else {
        const Pipeline& p = plan_.pipelines[static_cast<size_t>(step.pipeline)];
        for (int out : p.outputs) {
          plan_.producer_step[static_cast<size_t>(out)] = static_cast<int>(si);
        }
      }
    }
    // The schedule is emitted in topological program order, so a consumer
    // step always comes after the step that materializes its operand — deps
    // reference strictly earlier schedule indices.
    std::vector<int> last_consumer(n, -1);
    for (size_t si = 0; si < plan_.schedule.size(); ++si) {
      PipelineStep& step = plan_.schedule[si];
      if (step.serial_node >= 0) {
        for (int in : prog_.node(step.serial_node).inputs) {
          AddUnique(&step.reads, in);
        }
      } else {
        const Pipeline& p = plan_.pipelines[static_cast<size_t>(step.pipeline)];
        for (int src : p.sliced_sources) AddUnique(&step.reads, src);
        for (int src : p.whole_sources) AddUnique(&step.reads, src);
      }
      for (int r : step.reads) {
        last_consumer[static_cast<size_t>(r)] = static_cast<int>(si);
        const int producer = plan_.producer_step[static_cast<size_t>(r)];
        if (producer >= 0) step.deps.push_back(producer);
      }
      std::sort(step.deps.begin(), step.deps.end());
      step.deps.erase(std::unique(step.deps.begin(), step.deps.end()),
                      step.deps.end());
    }
    std::vector<bool> pinned(n, false);
    for (int out : prog_.outputs()) pinned[static_cast<size_t>(out)] = true;
    for (size_t id = 0; id < n; ++id) {
      if (pinned[id]) continue;
      int si = last_consumer[id];
      if (si < 0) si = plan_.producer_step[id];  // produced, never consumed
      if (si >= 0) {
        plan_.schedule[static_cast<size_t>(si)].releases.push_back(
            static_cast<int>(id));
      }
    }
  }

  const TensorProgram& prog_;
  UnionFind uf_;
  std::map<std::string, int> interned_;
  std::vector<bool> scalar_;
  std::vector<int> card_;
  std::vector<int> pipe_of_;
  std::vector<int> open_nodes_;
  int open_driver_ = -1;
  PipelinePlan plan_;
};

}  // namespace

bool IsStreamableOp(OpType type) {
  OpNode probe;
  probe.type = type;
  std::vector<Role> roles;
  return RolesFor(probe, &roles);
}

int PipelinePlan::num_streamed_nodes() const {
  return std::accumulate(pipelines.begin(), pipelines.end(), 0,
                         [](int acc, const Pipeline& p) {
                           return acc + static_cast<int>(p.nodes.size());
                         });
}

int PipelinePlan::num_step_edges() const {
  return std::accumulate(schedule.begin(), schedule.end(), 0,
                         [](int acc, const PipelineStep& s) {
                           return acc + static_cast<int>(s.deps.size());
                         });
}

int PipelinePlan::num_root_steps() const {
  return static_cast<int>(
      std::count_if(schedule.begin(), schedule.end(),
                    [](const PipelineStep& s) { return s.deps.empty(); }));
}

std::string PipelinePlan::ToString(const TensorProgram& program) const {
  const auto step_annotations = [](std::ostringstream& out,
                                   const PipelineStep& step) {
    if (!step.deps.empty()) {
      out << "  deps={";
      for (size_t i = 0; i < step.deps.size(); ++i) {
        out << (i > 0 ? "," : "") << "s" << step.deps[i];
      }
      out << "}";
    }
    if (!step.releases.empty()) {
      out << "  releases={";
      for (size_t i = 0; i < step.releases.size(); ++i) {
        out << (i > 0 ? "," : "") << "n" << step.releases[i];
      }
      out << "}";
    }
  };
  std::ostringstream out;
  for (size_t si = 0; si < schedule.size(); ++si) {
    const PipelineStep& step = schedule[si];
    out << "s" << si << " ";
    if (step.serial_node >= 0) {
      const OpNode& node = program.node(step.serial_node);
      out << "serial   n" << node.id << " " << OpTypeName(node.type);
      if (step.breaker) out << " (breaker)";
      if (!node.label.empty()) out << "  [" << node.label << "]";
      step_annotations(out, step);
      out << "\n";
      continue;
    }
    const Pipeline& p = pipelines[static_cast<size_t>(step.pipeline)];
    out << "pipeline #" << step.pipeline << " (" << p.nodes.size()
        << " ops, " << p.outputs.size() << " outputs):";
    for (const PipelineNode& pn : p.nodes) {
      out << " n" << pn.id << ":" << OpTypeName(program.node(pn.id).type);
    }
    step_annotations(out, step);
    out << "\n";
  }
  return out.str();
}

PipelinePlan BuildPipelinePlan(const TensorProgram& program) {
  obs::TraceSpan span("compile", "pipeline.split");
  PipelinePlan plan = Splitter(program).Build();
  if (span.enabled()) {
    span.AddArg("pipelines", static_cast<int64_t>(plan.pipelines.size()));
    span.AddArg("steps", static_cast<int64_t>(plan.schedule.size()));
  }
  return plan;
}

}  // namespace tqp
