#ifndef TQP_COMPILE_COMPILER_H_
#define TQP_COMPILE_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/dot.h"
#include "graph/executor.h"
#include "ml/model.h"
#include "plan/catalog.h"
#include "plan/physical_planner.h"

namespace tqp {

/// \brief How a query is compiled and executed — the one-line backend/device
/// switch of the paper's Figure 3.
struct CompileOptions {
  ExecutorTarget target = ExecutorTarget::kStatic;  // TorchScript analog
  DeviceKind device = DeviceKind::kCpu;
  OpProfiler* profiler = nullptr;  // optional, not owned
  /// See ExecOptions::charge_transfers.
  bool charge_transfers = true;
  /// See ExecOptions::num_threads (Parallel/Pipelined executors).
  int num_threads = 0;
  /// See ExecOptions::morsel_rows (Parallel/Pipelined executors).
  int64_t morsel_rows = 0;
  /// See ExecOptions::pool — the shared cross-query thread pool (not owned;
  /// must outlive the compiled query). Set by the QueryScheduler so every
  /// concurrent session's executor lands on one process-wide pool.
  runtime::ThreadPool* pool = nullptr;
  /// See ExecOptions::pipeline_overlap (pipelined executor DAG overlap).
  bool pipeline_overlap = true;
  /// See ExecOptions::expr_fusion (single-pass fused expression execution).
  bool expr_fusion = true;
  /// See ExecOptions::expr_backend (interp vs SIMD expression tier; kDefault
  /// resolves from TQP_EXPR_BACKEND).
  ExprBackend expr_backend = ExprBackend::kDefault;
  /// See ExecOptions::adaptive_morsels (service-time-driven morsel sizing).
  bool adaptive_morsels = false;
  /// See ExecOptions::partitioned_breakers (radix-partitioned grace join /
  /// partitioned aggregation / external sort at pipeline breakers).
  bool partitioned_breakers = false;
  /// See ExecOptions::step_scheduler — priority-aware step dispatch (not
  /// owned). Set by the QueryScheduler so steps of concurrent queries
  /// interleave by QueryPriority class.
  runtime::StepScheduler* step_scheduler = nullptr;
  /// See ExecOptions::memory_budget_bytes — per-query memory budget with
  /// disk spill (0 = TQP_MEMORY_BUDGET_MB default, negative = unlimited).
  int64_t memory_budget_bytes = 0;
  /// See ExecOptions::deadline_ms — cooperative per-query deadline
  /// (0 = TQP_QUERY_TIMEOUT_MS default, negative = none).
  int64_t deadline_ms = 0;
};

/// \brief A compiled query: the tensor program, its Executor, and the
/// binding from program inputs to catalog columns (the paper's "Executor"
/// artifact, runnable many times over fresh data).
class CompiledQuery {
 public:
  struct InputBinding {
    std::string table;
    int column = 0;  // base-table column index
  };

  /// \brief Fetches the bound input columns from `catalog`, runs the
  /// executor and wraps the outputs into a Table.
  Result<Table> Run(const Catalog& catalog) const;

  /// \brief Runs over explicit input tensors (bench harness path).
  Result<Table> RunWithInputs(const std::vector<Tensor>& inputs) const;

  /// \brief Collects the input tensors this query needs from the catalog.
  Result<std::vector<Tensor>> CollectInputs(const Catalog& catalog) const;

  const TensorProgram& program() const { return *program_; }
  std::shared_ptr<const TensorProgram> shared_program() const { return program_; }
  const Schema& output_schema() const { return output_schema_; }
  const std::vector<InputBinding>& input_bindings() const { return bindings_; }
  Executor* executor() const { return executor_.get(); }

  /// \brief Graphviz rendering of the executor graph (Figure 4 artifact).
  std::string ToDot(const std::string& name = "tqp_executor") const {
    return ProgramToDot(*program_, name);
  }

 private:
  friend class QueryCompiler;
  std::shared_ptr<const TensorProgram> program_;
  std::unique_ptr<Executor> executor_;
  Schema output_schema_;
  std::vector<InputBinding> bindings_;
};

/// \brief The TQP compilation stack (§2.2): consumes a physical plan from the
/// frontend (src/plan), lowers every relational operator into tensor ops
/// (planning layer), and instantiates an Executor for the chosen
/// target/device (execution layer). PREDICT calls splice the registered
/// model's tensor program into the query graph.
class QueryCompiler {
 public:
  explicit QueryCompiler(const ml::ModelRegistry* models = nullptr)
      : models_(models) {}

  Result<CompiledQuery> Compile(const PlanPtr& physical_plan,
                                const CompileOptions& options = {}) const;

  /// \brief Convenience: SQL -> frontend planning -> tensor compilation.
  Result<CompiledQuery> CompileSql(const std::string& sql, const Catalog& catalog,
                                   const CompileOptions& options = {},
                                   const PhysicalOptions& physical = {}) const;

 private:
  const ml::ModelRegistry* models_;
};

}  // namespace tqp

#endif  // TQP_COMPILE_COMPILER_H_
