#ifndef TQP_COMPILE_EXPR_PROGRAM_H_
#define TQP_COMPILE_EXPR_PROGRAM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/program.h"

namespace tqp {

/// Expression fusion: the compile-time half of single-pass fused expression
/// execution. Within one pipeline (or one StaticExecutor fusion group), a
/// maximal run of streamable elementwise/selection ops is lowered into an
/// ExprProgram — a flat, register-based instruction sequence — which the
/// vectorized morsel interpreter (src/kernels/expr_exec.h) then executes
/// over one morsel in a single sweep: intermediates live in a handful of
/// preallocated, BufferPool-recycled register buffers instead of one fresh
/// tensor per op per morsel.
///
/// Lowering performs, per run:
///  - *type-promotion materialization*: the implicit casts the elementwise
///    kernels apply per call (PromoteTypes + the bool/uint8 -> int32 rules)
///    become explicit kCast instructions, so every arithmetic instruction
///    runs one typed, branch-free loop and results stay bit-identical to
///    the kernel path;
///  - *constant folding*: instructions whose operands are all 1-row program
///    constants evaluate at compile time (through the same kernels);
///  - *common-subexpression elimination* over the run (repeated promotion
///    casts, duplicate predicates, shared selection vectors);
///  - *selection-vector lowering*: a kCompress becomes one kSelVec per mask
///    (shared by every column filtered on that mask) plus one kGatherSel per
///    column, and downstream instructions run only over the selected lanes;
///    kNonzero becomes the selection vector plus the morsel's base offset;
///  - *register reuse*: virtual registers whose last consumer has executed
///    free their physical slot for later instructions (linear scan), so the
///    interpreter's working set is a few morsel-sized buffers.

/// \brief Opcodes of the fused instruction set.
enum class ExprOpCode : int8_t {
  kBinary = 0,  // kind = BinaryOpKind; dst = a <op> b (operands pre-cast)
  kCompare,     // kind = CompareOpKind; bool dst = a <cmp> b
  kLogical,     // kind = LogicalOpKind; bool dst = a <op> b
  kUnary,       // kind = UnaryOpKind; dst = op(a)
  kCast,        // dst = cast<dtype>(a), a of in_dtype
  kWhere,       // dst = a ? b : c (a bool)
  kSelVec,      // int64 dst = local indices of true lanes of bool mask a;
                // defines domain out_dom with the selected-lane count
  kGatherSel,   // dst[j] = b[a[j]] (a = selection vector, b = data column)
  kIota,        // int64 dst[j] = a[j] + base_offset (kNonzero's global rows)
};

const char* ExprOpCodeName(ExprOpCode code);

/// \brief One fused instruction. Operands a/b/c are register ids (-1 =
/// unused). `dom` is the run-local cardinality domain whose runtime length
/// is the instruction's lane count (-1 = single-lane scalar work).
struct ExprInstr {
  ExprOpCode code = ExprOpCode::kBinary;
  int8_t kind = 0;                    // Binary/Compare/Logical/UnaryOpKind
  DType dtype = DType::kFloat64;      // output element type
  DType in_dtype = DType::kFloat64;   // operand element type (cast source)
  int dst = -1;
  int a = -1;
  int b = -1;
  int c = -1;
  int dom = -1;       // lane-count domain of dst
  int out_dom = -1;   // kSelVec: the selection domain this instruction defines
};

/// \brief One virtual register and where its bytes live at execution time:
/// exactly one of source/konst/slot/output is set.
struct ExprReg {
  DType dtype = DType::kFloat64;
  bool scalar = false;  // single-lane broadcast value
  int dom = -1;         // cardinality domain (-1 for scalars)
  int source = -1;      // bound from the caller's source list
  int konst = -1;       // folded compile-time constant
  int slot = -1;        // physical temp slot (register reuse)
  int output = -1;      // materializes as run output `output`
};

/// \brief A compiled fused run: straight-line register program over the
/// morsel. Immutable after compilation; safe to execute concurrently from
/// many worker slots (all mutable state lives in the caller's ExprScratch).
class ExprProgram {
 public:
  const std::vector<ExprInstr>& instrs() const { return instrs_; }
  const std::vector<ExprReg>& regs() const { return regs_; }
  /// Node ids to bind, in order, as execution sources (externals first-use
  /// order; includes values streamed by earlier ops of the same pipeline).
  const std::vector<int>& source_nodes() const { return source_nodes_; }
  /// Node ids whose values materialize per invocation (read outside the run).
  const std::vector<int>& output_nodes() const { return output_nodes_; }
  /// Register backing each output node (two outputs may share one register
  /// after CSE; they then share one materialized tensor).
  const std::vector<int>& output_regs() const { return output_regs_; }
  /// Folded compile-time constants (1x1 tensors), indexed by ExprReg::konst.
  const std::vector<Tensor>& constants() const { return constants_; }

  int num_nodes() const { return num_nodes_; }      // graph nodes fused
  int num_slots() const { return num_slots_; }      // physical temp buffers
  int num_domains() const { return num_domains_; }  // cardinality domains
  int num_outputs() const { return static_cast<int>(output_nodes_.size()); }
  int num_folded() const { return num_folded_; }    // constant-folded instrs
  int num_cse_hits() const { return num_cse_; }     // instructions deduped

  /// \brief One-line-per-instruction listing for \explain and tests.
  std::string ToString() const;

 private:
  friend class ExprRunBuilder;
  std::vector<ExprInstr> instrs_;
  std::vector<ExprReg> regs_;
  std::vector<int> source_nodes_;
  std::vector<int> output_nodes_;
  std::vector<int> output_regs_;
  std::vector<Tensor> constants_;
  int num_nodes_ = 0;
  int num_slots_ = 0;
  int num_domains_ = 0;
  int num_folded_ = 0;
  int num_cse_ = 0;
};

/// \brief Runtime facts about a value materialized outside the candidate
/// node sequence, resolved by the caller (executors know the bound tensors;
/// pipelines learn streamed dtypes from a one-morsel probe).
struct ExprExternal {
  DType dtype = DType::kFloat64;
  bool scalar = false;          // bound as a 1-row broadcast
  bool single_col = true;       // cols == 1 (vector operands must be)
  bool driver_aligned = false;  // rows span the run's driver domain
  const Tensor* constant = nullptr;  // set for program constants (foldable)
};

/// \brief Resolves info for a node id the builder cannot see inside the
/// candidate sequence. Returning false marks the value unusable, which ends
/// any fused run that would consume it.
using ExprExternalFn = std::function<bool(int node_id, ExprExternal* info)>;

/// \brief Which backend actually executed a fused run, tallied per morsel
/// at runtime. Mutable shared state carried behind the const plan so
/// `\explain pipelines` can report the backend *used*, not just configured —
/// in particular, the pipeline compile probe evaluates node-at-a-time and
/// therefore never appears in these tallies.
struct ExprRunExecStats {
  std::atomic<int64_t> interp_morsels{0};  // morsels fully interpreted
  std::atomic<int64_t> simd_morsels{0};    // morsels where SIMD steps ran
  std::atomic<int64_t> simd_instrs{0};     // instrs executed by SIMD kernels
  std::atomic<int64_t> interp_instrs{0};   // instrs executed by the interp
};

/// \brief The fusion plan for one candidate node sequence: disjoint maximal
/// runs, each compiled to an ExprProgram, plus the per-position lookup the
/// executor's morsel loop uses to dispatch.
struct ExprFusionPlan {
  struct Run {
    std::shared_ptr<const ExprProgram> program;
    /// SIMD coverage of `program` (compile/expr_simd.h), computed once at
    /// plan build so the kSimd backend dispatches without per-morsel
    /// analysis. Always present; ignored by the interp backend.
    std::shared_ptr<const struct ExprSimdPlan> simd;
    /// Runtime backend tallies for this run (always present).
    std::shared_ptr<ExprRunExecStats> exec_stats;
    size_t begin = 0;  // [begin, end) indices into the candidate sequence
    size_t end = 0;
  };
  std::vector<Run> runs;
  /// Per candidate position: index of the run *starting* there, else -1
  /// (positions covered mid-run and unfused positions both map to -1; the
  /// morsel loop dispatches at run starts and then skips to Run::end).
  std::vector<int> run_start;
  int num_fused_nodes = 0;
};

/// \brief Segments `nodes` (a topologically ordered chain, e.g. one
/// pipeline's ops or one StaticExecutor group) into maximal fusible runs and
/// compiles each. `required_outputs` lists node ids whose values must
/// materialize even when fused (pipeline outputs / escaping group nodes);
/// values read by candidates outside their own run materialize automatically.
/// `external` resolves operands produced outside the sequence.
///
/// Fusible ops: kBinary, kCompare, kLogical, kUnary, kCast, kWhere over
/// single-column operands, kCompress, and kNonzero over driver-domain masks.
/// Everything else (and any shape/dtype surprise) ends the current run; the
/// executor evaluates those nodes through the regular kernels.
ExprFusionPlan BuildExprFusionPlan(const TensorProgram& program,
                                   const std::vector<int>& nodes,
                                   const std::vector<int>& required_outputs,
                                   const ExprExternalFn& external);

}  // namespace tqp

#endif  // TQP_COMPILE_EXPR_PROGRAM_H_
