#include "compile/expr_program.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "compile/expr_simd.h"
#include "kernels/elementwise.h"
#include "kernels/kernel_types.h"

namespace tqp {

namespace {

/// Everything the builder knows about one resolved value (an external, a
/// folded constant, or a previously processed candidate node).
struct ValueInfo {
  DType dtype = DType::kFloat64;
  bool scalar = false;
  bool single_col = true;
  bool driver = false;  // rows span the run's driver domain (domain 0)
  const Tensor* constant = nullptr;
};

// Built on IsFusibleElementwise so an op added to StaticExecutor's grouping
// is automatically a lowering candidate too (plus the selection ops the
// selection-vector lowering handles).
bool IsExprFusibleOp(OpType type) {
  return IsFusibleElementwise(type) || type == OpType::kCompress ||
         type == OpType::kNonzero;
}

/// Output driver-ness of an op evaluated outside any run, mirroring the
/// pipeline splitter's cardinality rules: cardinality-preserving ops keep
/// their aligned operands' domain; anything cardinality-changing leaves it.
bool DriverOf(const OpNode& node, const std::vector<ValueInfo>& ins) {
  const auto vec_driver = [&](size_t i) {
    return i < ins.size() && !ins[i].scalar && ins[i].driver;
  };
  switch (node.type) {
    case OpType::kBinary:
    case OpType::kCompare:
    case OpType::kLogical:
    case OpType::kUnary:
    case OpType::kCast:
    case OpType::kWhere:
    case OpType::kHashRows:
    case OpType::kHashCombine:
    case OpType::kGatherCols:
    case OpType::kConcatCols:
    case OpType::kStringCompareScalar:
    case OpType::kStringCompare:
    case OpType::kStringLike:
    case OpType::kSubstring:
    case OpType::kHashTokenize: {
      bool any_vector = false;
      for (size_t i = 0; i < node.inputs.size(); ++i) {
        if (ins[i].scalar) continue;
        any_vector = true;
        if (!ins[i].driver) return false;
      }
      return any_vector;
    }
    case OpType::kArangeLike:
    case OpType::kMatMul:
    case OpType::kMatMulAddBias:
      return vec_driver(0);
    case OpType::kGather:
    case OpType::kSearchSorted:
    case OpType::kEmbeddingBagSum:
      return vec_driver(1);
    default:
      return false;  // compress/nonzero/repeat_interleave/head/breakers
  }
}

}  // namespace

const char* ExprOpCodeName(ExprOpCode code) {
  switch (code) {
    case ExprOpCode::kBinary: return "binary";
    case ExprOpCode::kCompare: return "compare";
    case ExprOpCode::kLogical: return "logical";
    case ExprOpCode::kUnary: return "unary";
    case ExprOpCode::kCast: return "cast";
    case ExprOpCode::kWhere: return "where";
    case ExprOpCode::kSelVec: return "selvec";
    case ExprOpCode::kGatherSel: return "gather_sel";
    case ExprOpCode::kIota: return "iota";
  }
  return "?";
}

/// Emits one run's instructions. Owns the in-construction ExprProgram;
/// Finish() runs output marking and register allocation.
class ExprRunBuilder {
 public:
  ExprRunBuilder() = default;

  void Reset() {
    out_ = std::make_unique<ExprProgram>();
    out_->num_domains_ = 1;  // domain 0 = the driver domain
    node_reg_.clear();
    source_reg_.clear();
    cse_.clear();
    selvec_of_mask_.clear();
  }

  bool empty() const { return node_reg_.empty(); }

  /// Tries to lower `node`; returns false (leaving the run exactly as it
  /// was — partial emission is rolled back) when the node cannot join.
  bool AddNode(const OpNode& node, const std::vector<ValueInfo>& ins);

  /// Seals the run. `needed(id)` says whether a fused node's value must
  /// materialize. Returns null when nothing was fused.
  std::shared_ptr<const ExprProgram> Finish(
      const std::function<bool(int)>& needed);

  /// Info of a node lowered into the open run (valid after AddNode true).
  ValueInfo InfoOf(int node_id) const {
    const ExprReg& r = out_->regs_[static_cast<size_t>(node_reg_.at(node_id))];
    ValueInfo vi;
    vi.dtype = r.dtype;
    vi.scalar = r.scalar;
    vi.single_col = true;
    vi.driver = r.dom == 0;
    vi.constant = nullptr;
    return vi;
  }

 private:
  using CseKey = std::array<int, 7>;

  /// Builder state sizes at AddNode entry; rejection restores them so a
  /// rejected node leaves no dead instructions or unused source bindings
  /// behind in the sealed run.
  struct Snapshot {
    size_t instrs, regs, constants, sources;
    int num_domains, num_cse, num_folded;
  };

  Snapshot Snap() const {
    return {out_->instrs_.size(), out_->regs_.size(), out_->constants_.size(),
            out_->source_nodes_.size(), out_->num_domains_, out_->num_cse_,
            out_->num_folded_};
  }

  void RollbackTo(const Snapshot& s) {
    out_->instrs_.resize(s.instrs);
    out_->regs_.resize(s.regs);
    out_->constants_.resize(s.constants);
    out_->source_nodes_.resize(s.sources);
    out_->num_domains_ = s.num_domains;
    out_->num_cse_ = s.num_cse;
    out_->num_folded_ = s.num_folded;
    // Any map entry minted since the snapshot points at a register >= s.regs
    // (keys referencing a rolled-back register imply a later dst as well).
    const auto drop_new = [&](auto* m) {
      for (auto it = m->begin(); it != m->end();) {
        it = it->second >= static_cast<int>(s.regs) ? m->erase(it) : ++it;
      }
    };
    drop_new(&cse_);
    drop_new(&source_reg_);
    drop_new(&selvec_of_mask_);
  }

  /// Lowers one node, emitting instructions/registers as needed. Returns the
  /// node's destination register, or -1 when the node cannot join the run
  /// (the caller rolls back any partial emission).
  int LowerNode(const OpNode& node, const std::vector<ValueInfo>& ins);

  int NewReg(DType dtype, bool scalar, int dom) {
    ExprReg r;
    r.dtype = dtype;
    r.scalar = scalar;
    r.dom = scalar ? -1 : dom;
    out_->regs_.push_back(r);
    return static_cast<int>(out_->regs_.size()) - 1;
  }

  int ConstReg(const Tensor& value) {
    const int k = static_cast<int>(out_->constants_.size());
    out_->constants_.push_back(value);
    const int reg = NewReg(value.dtype(), /*scalar=*/true, -1);
    out_->regs_[static_cast<size_t>(reg)].konst = k;
    return reg;
  }

  /// Register holding operand node `id` (in-run value, folded constant, or
  /// interned execution source).
  int OperandReg(int id, const ValueInfo& vi) {
    auto it = node_reg_.find(id);
    if (it != node_reg_.end()) return it->second;
    auto sit = source_reg_.find(id);
    if (sit != source_reg_.end()) return sit->second;
    if (vi.constant != nullptr && vi.scalar) {
      const int reg = ConstReg(*vi.constant);
      source_reg_.emplace(id, reg);
      return reg;
    }
    int dom = -1;
    if (!vi.scalar) {
      // Non-driver vector sources each get their own length domain; ops
      // mixing domains validate equal lengths at execution time.
      dom = vi.driver ? 0 : out_->num_domains_++;
    }
    const int reg = NewReg(vi.dtype, vi.scalar, dom);
    out_->regs_[static_cast<size_t>(reg)].source =
        static_cast<int>(out_->source_nodes_.size());
    out_->source_nodes_.push_back(id);
    source_reg_.emplace(id, reg);
    return reg;
  }

  bool IsConst(int reg) const {
    return out_->regs_[static_cast<size_t>(reg)].konst >= 0;
  }
  const Tensor& ConstOf(int reg) const {
    return out_->constants_[static_cast<size_t>(
        out_->regs_[static_cast<size_t>(reg)].konst)];
  }
  DType TypeOf(int reg) const {
    return out_->regs_[static_cast<size_t>(reg)].dtype;
  }
  bool ScalarOf(int reg) const {
    return out_->regs_[static_cast<size_t>(reg)].scalar;
  }
  int DomOf(int reg) const {
    return out_->regs_[static_cast<size_t>(reg)].dom;
  }

  /// The lane domain of an elementwise result: the first vector operand's
  /// domain, -1 when all operands are single-lane.
  int ResultDom(std::initializer_list<int> operands) const {
    for (int r : operands) {
      if (r >= 0 && !ScalarOf(r)) return DomOf(r);
    }
    return -1;
  }

  /// Emits (or CSE-reuses, or constant-folds) one instruction; returns the
  /// destination register or -1 when folding failed (caller rejects node).
  int Emit(ExprOpCode code, int kind, DType dtype, DType in_dtype, int a,
           int b = -1, int c = -1) {
    const CseKey key = {static_cast<int>(code), kind, static_cast<int>(dtype),
                        static_cast<int>(in_dtype), a, b, c};
    auto it = cse_.find(key);
    if (it != cse_.end()) {
      ++out_->num_cse_;
      return it->second;
    }
    // Fold elementwise work over compile-time constants through the same
    // kernels the eager executor runs, so folded values are bit-identical.
    const bool foldable = code != ExprOpCode::kSelVec &&
                          code != ExprOpCode::kGatherSel &&
                          code != ExprOpCode::kIota;
    if (foldable && IsConst(a) && (b < 0 || IsConst(b)) &&
        (c < 0 || IsConst(c))) {
      Result<Tensor> folded = Fold(code, kind, dtype, a, b, c);
      if (!folded.ok()) return -1;
      const int reg = ConstReg(std::move(folded).ValueOrDie());
      ++out_->num_folded_;
      cse_.emplace(key, reg);
      return reg;
    }
    ExprInstr instr;
    instr.code = code;
    instr.kind = static_cast<int8_t>(kind);
    instr.dtype = dtype;
    instr.in_dtype = in_dtype;
    instr.a = a;
    instr.b = b;
    instr.c = c;
    instr.dom = ResultDom({a, b, c});
    const int dst = NewReg(dtype, instr.dom < 0, instr.dom);
    instr.dst = dst;
    out_->instrs_.push_back(instr);
    cse_.emplace(key, dst);
    return dst;
  }

  Result<Tensor> Fold(ExprOpCode code, int kind, DType dtype, int a, int b,
                      int c) {
    using namespace tqp::kernels;  // NOLINT: mirror of EvalNode's dispatch
    switch (code) {
      case ExprOpCode::kBinary:
        return BinaryOp(static_cast<BinaryOpKind>(kind), ConstOf(a), ConstOf(b));
      case ExprOpCode::kCompare:
        return Compare(static_cast<CompareOpKind>(kind), ConstOf(a), ConstOf(b));
      case ExprOpCode::kLogical:
        return Logical(static_cast<LogicalOpKind>(kind), ConstOf(a), ConstOf(b));
      case ExprOpCode::kUnary:
        return Unary(static_cast<UnaryOpKind>(kind), ConstOf(a));
      case ExprOpCode::kCast:
        return Cast(ConstOf(a), dtype);
      case ExprOpCode::kWhere:
        return Where(ConstOf(a), ConstOf(b), ConstOf(c));
      default:
        return Status::Internal("unfoldable expr opcode");
    }
  }

  /// Value of `reg` cast to `to` (no-op alias when dtypes already match).
  int CastTo(int reg, DType to) {
    if (TypeOf(reg) == to) return reg;
    return Emit(ExprOpCode::kCast, 0, to, TypeOf(reg), reg);
  }

  /// Selection vector over `mask` (shared by every compress/nonzero on it).
  int SelVecOf(int mask) {
    auto it = selvec_of_mask_.find(mask);
    if (it != selvec_of_mask_.end()) {
      ++out_->num_cse_;
      return it->second;
    }
    ExprInstr instr;
    instr.code = ExprOpCode::kSelVec;
    instr.dtype = DType::kInt64;
    instr.in_dtype = DType::kBool;
    instr.a = mask;
    instr.dom = DomOf(mask);
    instr.out_dom = out_->num_domains_++;
    const int dst = NewReg(DType::kInt64, /*scalar=*/false, instr.out_dom);
    instr.dst = dst;
    out_->instrs_.push_back(instr);
    selvec_of_mask_.emplace(mask, dst);
    return dst;
  }

  std::unique_ptr<ExprProgram> out_;
  std::unordered_map<int, int> node_reg_;    // fused node id -> register
  std::unordered_map<int, int> source_reg_;  // external node id -> register
  std::map<CseKey, int> cse_;
  std::unordered_map<int, int> selvec_of_mask_;  // mask reg -> selvec reg
};

bool ExprRunBuilder::AddNode(const OpNode& node,
                             const std::vector<ValueInfo>& ins) {
  const Snapshot snap = Snap();
  const int dst = LowerNode(node, ins);
  if (dst < 0) {
    RollbackTo(snap);
    return false;
  }
  node_reg_.emplace(node.id, dst);
  ++out_->num_nodes_;
  return true;
}

int ExprRunBuilder::LowerNode(const OpNode& node,
                              const std::vector<ValueInfo>& ins) {
  // Operand constraints common to every fused op: resolvable, single-column.
  for (const ValueInfo& vi : ins) {
    if (!vi.single_col) return -1;
  }
  std::vector<int> r(node.inputs.size());
  const auto bind_all = [&]() {
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      r[i] = OperandReg(node.inputs[i], ins[i]);
    }
  };
  int dst = -1;
  switch (node.type) {
    case OpType::kBinary: {
      bind_all();
      DType dt = PromoteTypes(TypeOf(r[0]), TypeOf(r[1]));
      if (dt == DType::kBool || dt == DType::kUInt8) dt = DType::kInt32;
      const int a = CastTo(r[0], dt);
      const int b = CastTo(r[1], dt);
      if (a < 0 || b < 0) return -1;
      dst = Emit(ExprOpCode::kBinary, static_cast<int>(node.attrs.GetInt("op")),
                 dt, dt, a, b);
      break;
    }
    case OpType::kCompare: {
      bind_all();
      DType dt = PromoteTypes(TypeOf(r[0]), TypeOf(r[1]));
      if (dt == DType::kBool) dt = DType::kUInt8;
      const int a = CastTo(r[0], dt);
      const int b = CastTo(r[1], dt);
      if (a < 0 || b < 0) return -1;
      dst = Emit(ExprOpCode::kCompare, static_cast<int>(node.attrs.GetInt("op")),
                 DType::kBool, dt, a, b);
      break;
    }
    case OpType::kLogical: {
      if (ins[0].dtype != DType::kBool || ins[1].dtype != DType::kBool) {
        return -1;
      }
      bind_all();
      dst = Emit(ExprOpCode::kLogical, static_cast<int>(node.attrs.GetInt("op")),
                 DType::kBool, DType::kBool, r[0], r[1]);
      break;
    }
    case OpType::kUnary: {
      const auto op = static_cast<UnaryOpKind>(node.attrs.GetInt("op"));
      if (op == UnaryOpKind::kNot) {
        if (ins[0].dtype != DType::kBool) return -1;
        bind_all();
        dst = Emit(ExprOpCode::kUnary, static_cast<int>(op), DType::kBool,
                   DType::kBool, r[0]);
        break;
      }
      bind_all();
      const bool keeps_dtype = op == UnaryOpKind::kNeg ||
                               op == UnaryOpKind::kAbs ||
                               op == UnaryOpKind::kRelu;
      DType dt = TypeOf(r[0]);
      if (keeps_dtype) {
        if (dt == DType::kBool || dt == DType::kUInt8) dt = DType::kInt32;
      } else {
        dt = dt == DType::kFloat32 ? DType::kFloat32 : DType::kFloat64;
      }
      const int a = CastTo(r[0], dt);
      if (a < 0) return -1;
      dst = Emit(ExprOpCode::kUnary, static_cast<int>(op), dt, dt, a);
      break;
    }
    case OpType::kCast: {
      bind_all();
      const auto to = static_cast<DType>(node.attrs.GetInt("dtype"));
      dst = CastTo(r[0], to);
      break;
    }
    case OpType::kWhere: {
      if (ins[0].dtype != DType::kBool) return -1;
      bind_all();
      const DType dt = PromoteTypes(TypeOf(r[1]), TypeOf(r[2]));
      const int b = CastTo(r[1], dt);
      const int c = CastTo(r[2], dt);
      if (b < 0 || c < 0) return -1;
      dst = Emit(ExprOpCode::kWhere, 0, dt, dt, r[0], b, c);
      break;
    }
    case OpType::kCompress: {
      // (data, mask): one shared selection vector per mask, one gather per
      // filtered column; downstream instructions see only selected lanes.
      if (ins[1].dtype != DType::kBool || ins[0].scalar || ins[1].scalar) {
        return -1;
      }
      bind_all();
      // The selection vector holds mask-local lane indices, so data and
      // mask must share a cardinality domain. A mismatched pair stays
      // unfused and reaches the Compress kernel, whose own rows check
      // raises the same error the eager path would (a selection vector
      // applied to a longer column would gather in-range but wrong rows).
      if (DomOf(r[0]) != DomOf(r[1])) return -1;
      const int sel = SelVecOf(r[1]);
      dst = Emit(ExprOpCode::kGatherSel, 0, TypeOf(r[0]), TypeOf(r[0]), sel,
                 r[0]);
      break;
    }
    case OpType::kNonzero: {
      // Global row positions: selection vector + the morsel's base offset.
      // Only valid over the driver domain (domain 0), where the interpreter
      // knows the morsel's global offset — mirrors the splitter's rule.
      if (ins[0].dtype != DType::kBool || ins[0].scalar) return -1;
      bind_all();
      if (DomOf(r[0]) != 0) return -1;
      const int sel = SelVecOf(r[0]);
      dst = Emit(ExprOpCode::kIota, 0, DType::kInt64, DType::kInt64, sel);
      break;
    }
    default:
      return -1;
  }
  return dst;
}

std::shared_ptr<const ExprProgram> ExprRunBuilder::Finish(
    const std::function<bool(int)>& needed) {
  if (node_reg_.empty()) return nullptr;
  // Outputs, in node-id order so the executor's materialization order is
  // deterministic. CSE can map two output nodes to one register; they then
  // share one materialized tensor.
  std::vector<std::pair<int, int>> outs;  // (node, reg)
  for (const auto& [id, reg] : node_reg_) {
    if (needed(id)) outs.emplace_back(id, reg);
  }
  std::sort(outs.begin(), outs.end());
  for (const auto& [id, reg] : outs) {
    ExprReg& r = out_->regs_[static_cast<size_t>(reg)];
    // A register written by an instruction materializes at its defining
    // write; source/const aliases (a dtype-preserving cast) resolve to the
    // bound tensor at extraction time.
    if (r.source < 0 && r.konst < 0 && r.output < 0) {
      r.output = static_cast<int>(out_->output_nodes_.size());
    }
    out_->output_nodes_.push_back(id);
    out_->output_regs_.push_back(reg);
  }
  // Register allocation: temps free their slot after their last consumer;
  // a destination never reuses an operand slot of its own instruction.
  const auto needs_slot = [&](int reg) {
    if (reg < 0) return false;
    const ExprReg& r = out_->regs_[static_cast<size_t>(reg)];
    return r.source < 0 && r.konst < 0 && r.output < 0;
  };
  std::vector<int> last_use(out_->regs_.size(), -1);
  for (size_t i = 0; i < out_->instrs_.size(); ++i) {
    const ExprInstr& instr = out_->instrs_[i];
    for (int op : {instr.a, instr.b, instr.c}) {
      if (op >= 0) last_use[static_cast<size_t>(op)] = static_cast<int>(i);
    }
  }
  std::vector<int> free_slots;
  int num_slots = 0;
  for (size_t i = 0; i < out_->instrs_.size(); ++i) {
    const ExprInstr& instr = out_->instrs_[i];
    if (needs_slot(instr.dst)) {
      int slot;
      if (!free_slots.empty()) {
        slot = free_slots.back();
        free_slots.pop_back();
      } else {
        slot = num_slots++;
      }
      out_->regs_[static_cast<size_t>(instr.dst)].slot = slot;
    }
    // A register repeated in two operand positions (e.g. mul(t, t) after
    // CSE) must free its slot exactly once.
    const std::array<int, 3> ops = {instr.a, instr.b, instr.c};
    for (size_t j = 0; j < ops.size(); ++j) {
      const int op = ops[j];
      if (j > 0 && (op == ops[0] || (j > 1 && op == ops[1]))) continue;
      if (needs_slot(op) && last_use[static_cast<size_t>(op)] ==
                                static_cast<int>(i)) {
        free_slots.push_back(out_->regs_[static_cast<size_t>(op)].slot);
      }
    }
  }
  out_->num_slots_ = num_slots;
  return std::shared_ptr<const ExprProgram>(std::move(out_));
}

std::string ExprProgram::ToString() const {
  std::ostringstream os;
  const auto print_reg = [&](std::ostringstream& out, int r) {
    if (r < 0) {
      out << '-';
      return;
    }
    const ExprReg& reg = regs_[static_cast<size_t>(r)];
    if (reg.source >= 0) {
      out << 's' << reg.source;
    } else if (reg.konst >= 0) {
      out << 'k' << reg.konst;
    } else {
      out << 'r' << r;
    }
  };
  os << num_nodes_ << " ops -> " << instrs_.size() << " instrs, "
     << num_slots_ << " slots, " << source_nodes_.size() << " sources, "
     << output_nodes_.size() << " outputs, " << num_folded_ << " folded, "
     << num_cse_ << " cse\n";
  for (const ExprInstr& instr : instrs_) {
    os << "  ";
    print_reg(os, instr.dst);
    os << " = " << ExprOpCodeName(instr.code);
    switch (instr.code) {
      case ExprOpCode::kBinary:
        os << "." << BinaryOpName(static_cast<BinaryOpKind>(instr.kind));
        break;
      case ExprOpCode::kCompare:
        os << "." << CompareOpName(static_cast<CompareOpKind>(instr.kind));
        break;
      case ExprOpCode::kLogical:
        os << "." << LogicalOpName(static_cast<LogicalOpKind>(instr.kind));
        break;
      case ExprOpCode::kUnary:
        os << "." << UnaryOpName(static_cast<UnaryOpKind>(instr.kind));
        break;
      default:
        break;
    }
    os << "(";
    bool first = true;
    for (int op : {instr.a, instr.b, instr.c}) {
      if (op < 0) continue;
      if (!first) os << ", ";
      print_reg(os, op);
      first = false;
    }
    os << ") " << DTypeName(instr.dtype);
    if (instr.dom >= 0) os << " dom" << instr.dom;
    if (instr.out_dom >= 0) os << " ->dom" << instr.out_dom;
    os << "\n";
  }
  return os.str();
}

ExprFusionPlan BuildExprFusionPlan(const TensorProgram& program,
                                   const std::vector<int>& nodes,
                                   const std::vector<int>& required_outputs,
                                   const ExprExternalFn& external) {
  ExprFusionPlan plan;
  plan.run_start.assign(nodes.size(), -1);
  const std::set<int> required(required_outputs.begin(), required_outputs.end());

  // Last candidate position reading each node: a fused value consumed at or
  // beyond its run's end must materialize.
  std::unordered_map<int, int> last_reader;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int in : program.node(nodes[i]).inputs) {
      last_reader[in] = static_cast<int>(i);
    }
  }

  std::unordered_map<int, ValueInfo> info;  // resolved values, by node id
  const auto resolve = [&](int id, ValueInfo* vi) {
    auto it = info.find(id);
    if (it != info.end()) {
      *vi = it->second;
      return true;
    }
    ExprExternal ext;
    if (!external(id, &ext)) return false;
    vi->dtype = ext.dtype;
    vi->scalar = ext.scalar;
    vi->single_col = ext.single_col;
    vi->driver = ext.driver_aligned && !ext.scalar;
    vi->constant = ext.constant;
    info.emplace(id, *vi);
    return true;
  };

  ExprRunBuilder builder;
  builder.Reset();
  size_t run_begin = 0;
  bool open = false;
  const auto close = [&](size_t end_idx) {
    if (!open) return;
    open = false;
    auto compiled = builder.Finish([&](int id) {
      if (required.count(id) > 0) return true;
      auto it = last_reader.find(id);
      return it != last_reader.end() && it->second >= static_cast<int>(end_idx);
    });
    builder.Reset();
    if (compiled == nullptr) return;
    plan.run_start[run_begin] = static_cast<int>(plan.runs.size());
    plan.num_fused_nodes += compiled->num_nodes();
    auto simd =
        std::make_shared<const ExprSimdPlan>(BuildExprSimdPlan(*compiled));
    plan.runs.push_back({std::move(compiled), std::move(simd),
                         std::make_shared<ExprRunExecStats>(), run_begin,
                         end_idx});
  };

  for (size_t idx = 0; idx < nodes.size(); ++idx) {
    const OpNode& node = program.node(nodes[idx]);
    std::vector<ValueInfo> ins(node.inputs.size());
    bool operands_known = true;
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      if (!resolve(node.inputs[i], &ins[i])) operands_known = false;
    }
    bool fused = false;
    if (operands_known && IsExprFusibleOp(node.type)) {
      if (!open) {
        run_begin = idx;
        open = true;
      }
      fused = builder.AddNode(node, ins);
    }
    if (fused) {
      info[node.id] = builder.InfoOf(node.id);
      continue;
    }
    // close() seals whatever was fused so far (a nothing-fused run compiles
    // to null) and resets the builder either way.
    close(idx);
    // Unfused candidate: record what later runs can know about its value —
    // dtype/shape from the caller (e.g. the pipeline's probe morsel),
    // driver-ness from the structural cardinality rules.
    ValueInfo vi;
    ExprExternal ext;
    if (external(node.id, &ext)) {
      vi.dtype = ext.dtype;
      vi.scalar = false;  // pipeline nodes stream vectors
      vi.single_col = ext.single_col;
      vi.driver = operands_known && DriverOf(node, ins);
      vi.constant = nullptr;
      info[node.id] = vi;
    }
  }
  close(nodes.size());
  return plan;
}

}  // namespace tqp
