#ifndef TQP_COMPILE_EXPR_SIMD_H_
#define TQP_COMPILE_EXPR_SIMD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compile/expr_program.h"

namespace tqp {

/// SIMD coverage analysis for a compiled ExprProgram: the compile-time half
/// of the kSimd execution tier. The planner walks the instruction sequence
/// once and marks which positions the fused vector kernels
/// (kernels/simd_exec.h) will execute — instruction *pairs* collapsed into
/// one kernel invocation (the temp register is never materialized) and
/// selection-vector compresses — leaving everything else to the interpreter,
/// instruction by instruction. Marking consults the kernel tier's support
/// predicates, so a planned step never falls back at run time; the plan is
/// immutable and shared by every worker slot, and the register program
/// itself is untouched (the interpreter remains a complete executor for the
/// same program — that is the whole fallback story).

/// \brief How one instruction position executes under the kSimd backend.
enum class ExprSimdStepKind : int8_t {
  kInterp = 0,  // this instruction runs through the interpreter
  kBinBin,      // kBinary feeding kBinary: dst = (a op b) op' c, one kernel
  kCmpAnd,      // kCompare feeding kLogical-kAnd: mask = (a cmp b) && c
  kCastCmp,     // kCast feeding kCompare: mask = cast(a) cmp b
  kSelVec,      // single kSelVec executed as a vectorized compress
};

const char* ExprSimdStepKindName(ExprSimdStepKind kind);

/// \brief Per-instruction step. Pairs are marked on their *first*
/// instruction; the second is skipped by the executor. `t_left` records
/// whether the pair's temp feeds the consumer's left operand (order matters
/// for kSub and the comparisons).
struct ExprSimdStep {
  ExprSimdStepKind kind = ExprSimdStepKind::kInterp;
  bool t_left = false;
};

/// \brief SIMD coverage of one ExprProgram (steps.size() ==
/// program.instrs().size()).
struct ExprSimdPlan {
  std::vector<ExprSimdStep> steps;
  int num_pairs = 0;    // fused instruction pairs
  int num_covered = 0;  // instructions executed by vector kernels
  int num_interp = 0;   // instructions left to the interpreter

  /// \brief One-line coverage summary for \explain pipelines.
  std::string Summary() const;
};

/// \brief Analyzes `program` and returns its SIMD coverage plan. A pair is
/// fused only when the producer's temp register is consumed exactly once —
/// by the immediately following instruction, over the same lane domain — and
/// the kernel tier supports the dtype/op shape.
ExprSimdPlan BuildExprSimdPlan(const ExprProgram& program);

}  // namespace tqp

#endif  // TQP_COMPILE_EXPR_SIMD_H_
