#include "compile/expr_simd.h"

#include "kernels/simd_exec.h"

namespace tqp {

namespace {

/// True when `p`'s destination is a pure temp (slot-backed, not a run
/// output) consumed exactly once in the whole program — by `q`, as exactly
/// one of its two value operands. Skipping the temp's write is then safe:
/// nothing else ever reads (or aliases) it.
bool TempFeedsNext(const ExprProgram& program, const std::vector<int>& uses,
                   const ExprInstr& p, const ExprInstr& q) {
  const ExprReg& dreg = program.regs()[static_cast<size_t>(p.dst)];
  if (dreg.slot < 0 || dreg.output >= 0) return false;
  if (uses[static_cast<size_t>(p.dst)] != 1) return false;
  const bool left = q.a == p.dst;
  const bool right = q.b == p.dst;
  if (left == right) return false;  // not consumed here, or used twice
  if (q.c == p.dst) return false;
  // Same lane domain: the fused kernel runs one loop over one length.
  return p.dom >= 0 && p.dom == q.dom;
}

}  // namespace

const char* ExprSimdStepKindName(ExprSimdStepKind kind) {
  switch (kind) {
    case ExprSimdStepKind::kInterp:
      return "interp";
    case ExprSimdStepKind::kBinBin:
      return "binbin";
    case ExprSimdStepKind::kCmpAnd:
      return "cmpand";
    case ExprSimdStepKind::kCastCmp:
      return "castcmp";
    case ExprSimdStepKind::kSelVec:
      return "selvec";
  }
  return "?";
}

std::string ExprSimdPlan::Summary() const {
  std::string out = "simd ";
  out += std::to_string(num_covered);
  out += '/';
  out += std::to_string(num_covered + num_interp);
  out += " instrs";
  if (num_pairs > 0) {
    out += " (";
    out += std::to_string(num_pairs);
    out += num_pairs == 1 ? " fused pair)" : " fused pairs)";
  }
  return out;
}

ExprSimdPlan BuildExprSimdPlan(const ExprProgram& program) {
  const std::vector<ExprInstr>& instrs = program.instrs();
  ExprSimdPlan plan;
  plan.steps.assign(instrs.size(), ExprSimdStep{});

  // Consumption counts per register across the whole program: a pair's temp
  // must have exactly one consumer.
  std::vector<int> uses(program.regs().size(), 0);
  for (const ExprInstr& instr : instrs) {
    for (int op : {instr.a, instr.b, instr.c}) {
      if (op >= 0) ++uses[static_cast<size_t>(op)];
    }
  }

  for (size_t i = 0; i < instrs.size(); ++i) {
    const ExprInstr& p = instrs[i];
    ExprSimdStep& step = plan.steps[i];

    if (p.code == ExprOpCode::kSelVec) {
      step.kind = ExprSimdStepKind::kSelVec;
      ++plan.num_covered;
      continue;
    }

    if (i + 1 < instrs.size()) {
      const ExprInstr& q = instrs[i + 1];
      ExprSimdStepKind kind = ExprSimdStepKind::kInterp;
      if (p.code == ExprOpCode::kBinary && q.code == ExprOpCode::kBinary &&
          p.dtype == q.dtype &&
          kernels::simd::SupportsBinBin(p.dtype,
                                        static_cast<BinaryOpKind>(p.kind),
                                        static_cast<BinaryOpKind>(q.kind))) {
        kind = ExprSimdStepKind::kBinBin;
      } else if (p.code == ExprOpCode::kCompare &&
                 q.code == ExprOpCode::kLogical &&
                 static_cast<LogicalOpKind>(q.kind) == LogicalOpKind::kAnd &&
                 kernels::simd::SupportsCmpAnd(p.in_dtype)) {
        kind = ExprSimdStepKind::kCmpAnd;
      } else if (p.code == ExprOpCode::kCast &&
                 q.code == ExprOpCode::kCompare && q.in_dtype == p.dtype &&
                 kernels::simd::SupportsCastCmp(p.in_dtype, p.dtype)) {
        kind = ExprSimdStepKind::kCastCmp;
      }
      if (kind != ExprSimdStepKind::kInterp &&
          TempFeedsNext(program, uses, p, q)) {
        step.kind = kind;
        step.t_left = q.a == p.dst;
        ++plan.num_pairs;
        plan.num_covered += 2;
        ++i;  // the consumer executes inside the fused kernel
        continue;
      }
    }

    ++plan.num_interp;
  }
  return plan;
}

}  // namespace tqp
