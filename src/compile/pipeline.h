#ifndef TQP_COMPILE_PIPELINE_H_
#define TQP_COMPILE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/program.h"

namespace tqp {

/// Pipeline splitting: the compiler-side half of the pipelined morsel-
/// streaming backend. A tensor program is partitioned into *pipelines* —
/// maximal chains of morsel-decomposable ops (scan-aligned elementwise work,
/// filters, gathers, probes) — separated by *pipeline breakers* (sorts,
/// reductions, prefix scans, concatenations), exactly as in morsel-driven
/// query engines. The PipelinedExecutor (src/runtime) then streams morsels
/// through each pipeline's fused chain without materializing any per-node
/// intermediate, while breakers still evaluate whole (with intra-op
/// parallelism).
///
/// Splitting is purely structural: it tracks a symbolic row cardinality per
/// node (union-find over "these two nodes provably have the same row count")
/// so that cardinality-*changing* ops (compress, nonzero, repeat_interleave)
/// can stay inside a pipeline — a filter's survivors keep streaming into the
/// projection without a materialization point — while anything whose morsel
/// decomposition would not be bit-identical to serial execution breaks the
/// pipeline.

/// \brief How one operand of a streamed node is bound when evaluating a
/// morsel.
enum class OperandBinding : int8_t {
  kStreamed,  // produced by this pipeline during the same morsel
  kSliced,    // materialized tensor, row-aligned with the driver: slice [b, e)
  kWhole,     // materialized tensor passed in full (build sides, weights,
              // scalars/broadcasts)
};

/// \brief One streamed op node plus the per-operand binding plan.
struct PipelineNode {
  int id = -1;
  std::vector<OperandBinding> bindings;  // parallel to OpNode::inputs
};

/// \brief A maximal streamable chain. The *driver* cardinality is the row
/// count of the sliced sources; morsels are row ranges of that domain.
struct Pipeline {
  std::vector<PipelineNode> nodes;  // topological order
  /// Materialized nodes sliced per morsel (deduped, in first-use order).
  /// Their runtime row count defines the driver domain; a source whose rows
  /// match neither the driver nor 1 (broadcast) triggers the serial fallback.
  std::vector<int> sliced_sources;
  /// Materialized nodes passed whole into morsel evaluation (deduped).
  std::vector<int> whole_sources;
  /// Nodes whose full value must exist after the pipeline runs (consumed by
  /// later steps or marked program outputs), in node-id order.
  std::vector<int> outputs;
  /// True when the chain contains an offset-corrected op (nonzero,
  /// arange_like, head): those assume the morsel offset is a global row
  /// position, which only holds when every sliced source really spans the
  /// driver domain — a runtime 1-row broadcast source forces the serial
  /// fallback for such pipelines.
  bool has_offset_op = false;
};

/// \brief One unit of the execution schedule: either a single node evaluated
/// whole (breakers, constants, statically-scalar expressions) or a pipeline.
///
/// Steps carry explicit dependency edges, so the schedule is a DAG, not just
/// a list: a step depends exactly on the steps that materialize the values it
/// consumes, and steps with disjoint dependency chains (e.g. the build sides
/// of a multi-join query) are independent and may execute concurrently.
struct PipelineStep {
  int serial_node = -1;  // >= 0: evaluate this node whole
  int pipeline = -1;     // >= 0: stream plan.pipelines[pipeline]
  /// True when the serial node is a pipeline breaker the radix-partitioned
  /// operators can evaluate (sort, segmented reduction — the shapes joins
  /// and group-bys lower into): under ExecOptions::partitioned_breakers
  /// these steps route through src/operators/partitioned with budget-aware
  /// partition counts and spillable partition buffers.
  bool breaker = false;
  /// Schedule indices of earlier steps whose products this step consumes
  /// (sorted, deduped). Empty => the step is a DAG root and can start
  /// immediately.
  std::vector<int> deps;
  /// Materialized node ids this step reads (deduped): a serial step's
  /// inputs, or a pipeline's sliced + whole sources.
  std::vector<int> reads;
  /// Node ids whose *last* consumer under the sequential schedule order is
  /// this step (program outputs excluded; a produced-but-never-read node is
  /// released by its own producer step). A serial walk releases exactly
  /// these sets after the step; the DAG executor reaches the same release
  /// points through per-node consumer refcounts, which stay correct when
  /// consumers overlap out of schedule order.
  std::vector<int> releases;
};

/// \brief The full streaming plan for one tensor program.
struct PipelinePlan {
  std::vector<Pipeline> pipelines;
  std::vector<PipelineStep> schedule;  // topological execution order
  /// node id -> schedule index that materializes the node's value; -1 for
  /// program inputs and for streamed nodes that never materialize.
  std::vector<int> producer_step;

  int num_streamed_nodes() const;
  /// \brief Dependency edges in the step DAG (sum of per-step dep counts).
  int num_step_edges() const;
  /// \brief Steps with no dependencies (can start immediately).
  int num_root_steps() const;
  /// Human-readable listing (one line per step; pipelines show their chain;
  /// each step shows its dependency edges and last-release set).
  std::string ToString(const TensorProgram& program) const;
};

/// \brief True when `type` has an exact morsel decomposition given aligned
/// inputs (its streamed output chunks concatenate to the serial result,
/// bit-for-bit).
bool IsStreamableOp(OpType type);

/// \brief Splits `program` into pipelines at pipeline breakers.
PipelinePlan BuildPipelinePlan(const TensorProgram& program);

}  // namespace tqp

#endif  // TQP_COMPILE_PIPELINE_H_
