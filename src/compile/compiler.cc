#include "compile/compiler.h"

#include <string>

#include "obs/trace.h"

namespace tqp {

namespace {

/// Per-node compilation state: the graph node carrying each column of the
/// current operator's output, plus its schema.
struct ColumnsState {
  std::vector<int> nodes;
  Schema schema;
};

struct TypedNode {
  int node = -1;
  DType dtype = DType::kFloat64;
};

class PlanCompiler {
 public:
  PlanCompiler(TensorProgram* program, const ml::ModelRegistry* models,
               std::vector<CompiledQuery::InputBinding>* bindings)
      : program_(program), models_(models), bindings_(bindings) {}

  Result<ColumnsState> CompileNode(const PlanNode& node) {
    switch (node.kind) {
      case PlanKind::kScan:
        return CompileScan(node);
      case PlanKind::kFilter: {
        TQP_ASSIGN_OR_RETURN(ColumnsState in, CompileNode(*node.children[0]));
        return CompileFilter(node, in);
      }
      case PlanKind::kProject: {
        TQP_ASSIGN_OR_RETURN(ColumnsState in, CompileNode(*node.children[0]));
        return CompileProject(node, in);
      }
      case PlanKind::kJoin: {
        TQP_ASSIGN_OR_RETURN(ColumnsState left, CompileNode(*node.children[0]));
        TQP_ASSIGN_OR_RETURN(ColumnsState right, CompileNode(*node.children[1]));
        return CompileJoin(node, left, right);
      }
      case PlanKind::kAggregate: {
        TQP_ASSIGN_OR_RETURN(ColumnsState in, CompileNode(*node.children[0]));
        return CompileAggregate(node, in);
      }
      case PlanKind::kSort: {
        TQP_ASSIGN_OR_RETURN(ColumnsState in, CompileNode(*node.children[0]));
        return CompileSort(node, in);
      }
      case PlanKind::kLimit: {
        TQP_ASSIGN_OR_RETURN(ColumnsState in, CompileNode(*node.children[0]));
        ColumnsState out;
        out.schema = node.output_schema;
        AttrMap attrs;
        attrs.Set("n", node.limit);
        for (int col : in.nodes) {
          out.nodes.push_back(
              program_->AddNode(OpType::kHeadRows, {col}, attrs, "limit"));
        }
        return out;
      }
    }
    return Status::Internal("unknown plan node");
  }

 private:
  // ---- Scan ---------------------------------------------------------------

  Result<ColumnsState> CompileScan(const PlanNode& node) {
    ColumnsState out;
    out.schema = node.output_schema;
    for (int i = 0; i < node.output_schema.num_fields(); ++i) {
      const int base_col = node.scan_columns.empty()
                               ? i
                               : node.scan_columns[static_cast<size_t>(i)];
      const std::string name =
          node.table_name + "." + node.output_schema.field(i).name;
      out.nodes.push_back(program_->AddInput(name));
      bindings_->push_back({node.table_name, base_col});
    }
    return out;
  }

  // ---- Expression compilation ----------------------------------------------

  static DType ArithResultDType(DType a, DType b) {
    DType dt = PromoteTypes(a, b);
    if (dt == DType::kBool || dt == DType::kUInt8) dt = DType::kInt32;
    return dt;
  }

  TypedNode CastTo(TypedNode in, DType target, const std::string& label = "") {
    if (in.dtype == target) return in;
    AttrMap attrs;
    attrs.Set("dtype", static_cast<int64_t>(target));
    return TypedNode{program_->AddNode(OpType::kCast, {in.node}, attrs, label),
                     target};
  }

  Result<TypedNode> ConstantScalar(const Scalar& value, DType dtype,
                                   const std::string& label) {
    TQP_ASSIGN_OR_RETURN(Tensor t, Tensor::Full(dtype, 1, 1, value.AsDouble()));
    return TypedNode{program_->AddConstant(std::move(t), label), dtype};
  }

  Result<TypedNode> CompileExpr(const BoundExpr& expr, const ColumnsState& in) {
    switch (expr.kind) {
      case BExprKind::kColumn: {
        const int idx = expr.column_index;
        return TypedNode{in.nodes[static_cast<size_t>(idx)],
                         PhysicalType(in.schema.field(idx).type)};
      }
      case BExprKind::kLiteral: {
        if (expr.literal.is_string()) {
          return Status::Internal(
              "string literal outside comparison context: " + expr.ToString());
        }
        return ConstantScalar(expr.literal, PhysicalType(expr.type),
                              expr.literal.ToString());
      }
      case BExprKind::kArith: {
        TQP_ASSIGN_OR_RETURN(TypedNode l, CompileExpr(*expr.children[0], in));
        TQP_ASSIGN_OR_RETURN(TypedNode r, CompileExpr(*expr.children[1], in));
        const DType want = PhysicalType(expr.type);
        // Division must happen in float when SQL typing says float.
        if (want == DType::kFloat64 &&
            ArithResultDType(l.dtype, r.dtype) != DType::kFloat64) {
          l = CastTo(l, DType::kFloat64);
        }
        AttrMap attrs;
        attrs.Set("op", static_cast<int64_t>(expr.arith_op));
        TypedNode out{program_->AddNode(OpType::kBinary, {l.node, r.node}, attrs),
                      ArithResultDType(l.dtype, r.dtype)};
        return CastTo(out, want);
      }
      case BExprKind::kCompare: {
        const BoundExpr& lhs = *expr.children[0];
        const BoundExpr& rhs = *expr.children[1];
        const bool lhs_str = lhs.type == LogicalType::kString;
        const bool rhs_str = rhs.type == LogicalType::kString;
        if (lhs_str || rhs_str) {
          // String comparisons: column vs literal uses the scalar kernel.
          if (rhs.kind == BExprKind::kLiteral) {
            TQP_ASSIGN_OR_RETURN(TypedNode l, CompileExpr(lhs, in));
            AttrMap attrs;
            attrs.Set("op", static_cast<int64_t>(expr.cmp_op));
            attrs.Set("literal", rhs.literal.string_value());
            return TypedNode{program_->AddNode(OpType::kStringCompareScalar,
                                               {l.node}, attrs, expr.ToString()),
                             DType::kBool};
          }
          if (lhs.kind == BExprKind::kLiteral) {
            TQP_ASSIGN_OR_RETURN(TypedNode r, CompileExpr(rhs, in));
            AttrMap attrs;
            attrs.Set("op", static_cast<int64_t>(MirrorCompare(expr.cmp_op)));
            attrs.Set("literal", lhs.literal.string_value());
            return TypedNode{program_->AddNode(OpType::kStringCompareScalar,
                                               {r.node}, attrs, expr.ToString()),
                             DType::kBool};
          }
          TQP_ASSIGN_OR_RETURN(TypedNode l, CompileExpr(lhs, in));
          TQP_ASSIGN_OR_RETURN(TypedNode r, CompileExpr(rhs, in));
          AttrMap attrs;
          attrs.Set("op", static_cast<int64_t>(expr.cmp_op));
          return TypedNode{program_->AddNode(OpType::kStringCompare,
                                             {l.node, r.node}, attrs),
                           DType::kBool};
        }
        TQP_ASSIGN_OR_RETURN(TypedNode l, CompileExpr(lhs, in));
        TQP_ASSIGN_OR_RETURN(TypedNode r, CompileExpr(rhs, in));
        AttrMap attrs;
        attrs.Set("op", static_cast<int64_t>(expr.cmp_op));
        return TypedNode{
            program_->AddNode(OpType::kCompare, {l.node, r.node}, attrs),
            DType::kBool};
      }
      case BExprKind::kLogical: {
        TQP_ASSIGN_OR_RETURN(TypedNode l, CompileExpr(*expr.children[0], in));
        TQP_ASSIGN_OR_RETURN(TypedNode r, CompileExpr(*expr.children[1], in));
        AttrMap attrs;
        attrs.Set("op", static_cast<int64_t>(expr.logical_op));
        return TypedNode{
            program_->AddNode(OpType::kLogical, {l.node, r.node}, attrs),
            DType::kBool};
      }
      case BExprKind::kNot: {
        TQP_ASSIGN_OR_RETURN(TypedNode c, CompileExpr(*expr.children[0], in));
        AttrMap attrs;
        attrs.Set("op", static_cast<int64_t>(UnaryOpKind::kNot));
        return TypedNode{program_->AddNode(OpType::kUnary, {c.node}, attrs),
                         DType::kBool};
      }
      case BExprKind::kCase: {
        const DType want = PhysicalType(expr.type);
        const size_t pairs =
            (expr.children.size() - (expr.case_has_else ? 1 : 0)) / 2;
        TypedNode current;
        if (expr.case_has_else) {
          TQP_ASSIGN_OR_RETURN(current, CompileExpr(*expr.children.back(), in));
        } else {
          TQP_ASSIGN_OR_RETURN(current,
                               ConstantScalar(Scalar(0.0), want, "case-default"));
        }
        current = CastTo(current, want);
        for (size_t i = pairs; i-- > 0;) {
          TQP_ASSIGN_OR_RETURN(TypedNode when,
                               CompileExpr(*expr.children[2 * i], in));
          TQP_ASSIGN_OR_RETURN(TypedNode then,
                               CompileExpr(*expr.children[2 * i + 1], in));
          then = CastTo(then, want);
          current = TypedNode{
              program_->AddNode(OpType::kWhere,
                                {when.node, then.node, current.node}, {}, "case"),
              want};
        }
        return current;
      }
      case BExprKind::kLike: {
        TQP_ASSIGN_OR_RETURN(TypedNode c, CompileExpr(*expr.children[0], in));
        AttrMap attrs;
        attrs.Set("pattern", expr.like_pattern);
        TypedNode like{program_->AddNode(OpType::kStringLike, {c.node}, attrs,
                                         "like '" + expr.like_pattern + "'"),
                       DType::kBool};
        if (!expr.negated) return like;
        AttrMap not_attrs;
        not_attrs.Set("op", static_cast<int64_t>(UnaryOpKind::kNot));
        return TypedNode{program_->AddNode(OpType::kUnary, {like.node}, not_attrs),
                         DType::kBool};
      }
      case BExprKind::kInList: {
        const BoundExpr& child = *expr.children[0];
        TQP_ASSIGN_OR_RETURN(TypedNode c, CompileExpr(child, in));
        TypedNode acc;
        for (size_t i = 0; i < expr.in_list.size(); ++i) {
          TypedNode eq;
          if (child.type == LogicalType::kString) {
            AttrMap attrs;
            attrs.Set("op", static_cast<int64_t>(CompareOpKind::kEq));
            attrs.Set("literal", expr.in_list[i].string_value());
            eq = TypedNode{program_->AddNode(OpType::kStringCompareScalar,
                                             {c.node}, attrs),
                           DType::kBool};
          } else {
            TQP_ASSIGN_OR_RETURN(
                TypedNode lit,
                ConstantScalar(expr.in_list[i], c.dtype,
                               expr.in_list[i].ToString()));
            AttrMap attrs;
            attrs.Set("op", static_cast<int64_t>(CompareOpKind::kEq));
            eq = TypedNode{program_->AddNode(OpType::kCompare,
                                             {c.node, lit.node}, attrs),
                           DType::kBool};
          }
          if (acc.node < 0) {
            acc = eq;
          } else {
            AttrMap attrs;
            attrs.Set("op", static_cast<int64_t>(LogicalOpKind::kOr));
            acc = TypedNode{
                program_->AddNode(OpType::kLogical, {acc.node, eq.node}, attrs),
                DType::kBool};
          }
        }
        if (acc.node < 0) {
          TQP_ASSIGN_OR_RETURN(acc,
                               ConstantScalar(Scalar(false), DType::kBool, "false"));
        }
        if (!expr.negated) return acc;
        AttrMap attrs;
        attrs.Set("op", static_cast<int64_t>(UnaryOpKind::kNot));
        return TypedNode{program_->AddNode(OpType::kUnary, {acc.node}, attrs),
                         DType::kBool};
      }
      case BExprKind::kSubstring: {
        TQP_ASSIGN_OR_RETURN(TypedNode c, CompileExpr(*expr.children[0], in));
        AttrMap attrs;
        attrs.Set("start", expr.substr_start);
        attrs.Set("len", expr.substr_len);
        return TypedNode{program_->AddNode(OpType::kSubstring, {c.node}, attrs),
                         DType::kUInt8};
      }
      case BExprKind::kPredict: {
        if (models_ == nullptr) {
          return Status::Invalid("PREDICT without a model registry");
        }
        TQP_ASSIGN_OR_RETURN(auto model, models_->Get(expr.model_name));
        std::vector<int> args;
        for (const BExpr& c : expr.children) {
          TQP_ASSIGN_OR_RETURN(TypedNode a, CompileExpr(*c, in));
          args.push_back(a.node);
        }
        TQP_ASSIGN_OR_RETURN(int out, model->BuildGraph(program_, args));
        return TypedNode{out, PhysicalType(expr.type)};
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  static CompareOpKind MirrorCompare(CompareOpKind op) {
    switch (op) {
      case CompareOpKind::kLt:
        return CompareOpKind::kGt;
      case CompareOpKind::kLe:
        return CompareOpKind::kGe;
      case CompareOpKind::kGt:
        return CompareOpKind::kLt;
      case CompareOpKind::kGe:
        return CompareOpKind::kLe;
      default:
        return op;
    }
  }

  // ---- Filter ---------------------------------------------------------------

  Result<ColumnsState> CompileFilter(const PlanNode& node, const ColumnsState& in) {
    TQP_ASSIGN_OR_RETURN(TypedNode mask, CompileExpr(*node.predicate, in));
    ColumnsState out;
    out.schema = node.output_schema;
    for (int col : in.nodes) {
      out.nodes.push_back(program_->AddNode(
          OpType::kCompress, {col, mask.node}, {},
          "filter"));
    }
    return out;
  }

  // ---- Project ---------------------------------------------------------------

  Result<ColumnsState> CompileProject(const PlanNode& node,
                                      const ColumnsState& in) {
    ColumnsState out;
    out.schema = node.output_schema;
    for (size_t i = 0; i < node.exprs.size(); ++i) {
      TQP_ASSIGN_OR_RETURN(TypedNode e, CompileExpr(*node.exprs[i], in));
      e = CastTo(e, PhysicalType(node.exprs[i]->type),
                 node.output_schema.field(static_cast<int>(i)).name);
      out.nodes.push_back(e.node);
    }
    return out;
  }

  // ---- Join (the paper's sort + searchsorted formulation) --------------------

  // Cross join: every left row pairs with every right row, as tensor ops.
  // counts = |right| broadcast per left row, then the standard expansion;
  // right ids cycle via modulo. Uncorrelated scalar subqueries take this
  // path with |right| == 1 (a pure broadcast).
  Result<ColumnsState> CompileCrossJoin(const PlanNode& node,
                                        const ColumnsState& left,
                                        const ColumnsState& right) {
    AttrMap count_attr;
    count_attr.Set("op", static_cast<int64_t>(ReduceOpKind::kCount));
    const int nr = program_->AddNode(OpType::kReduceAll, {right.nodes[0]},
                                     count_attr, "cross: |right|");
    const int left_arange =
        program_->AddNode(OpType::kArangeLike, {left.nodes[0]}, {}, "cross");
    TQP_ASSIGN_OR_RETURN(
        TypedNode zero, ConstantScalar(Scalar(int64_t{0}), DType::kInt64, "0"));
    AttrMap mul;
    mul.Set("op", static_cast<int64_t>(BinaryOpKind::kMul));
    AttrMap add;
    add.Set("op", static_cast<int64_t>(BinaryOpKind::kAdd));
    AttrMap mod;
    mod.Set("op", static_cast<int64_t>(BinaryOpKind::kMod));
    const int zero_l = program_->AddNode(OpType::kBinary,
                                         {left_arange, zero.node}, mul, "cross");
    const int counts =
        program_->AddNode(OpType::kBinary, {zero_l, nr}, add, "cross: counts");
    const int left_ids = program_->AddNode(
        OpType::kRepeatInterleave, {left_arange, counts}, {}, "cross: left ids");
    const int pos = program_->AddNode(OpType::kArangeLike, {left_ids}, {}, "cross");
    const int right_ids =
        program_->AddNode(OpType::kBinary, {pos, nr}, mod, "cross: right ids");
    ColumnsState joined;
    joined.schema = left.schema;
    for (const Field& f : right.schema.fields()) joined.schema.AddField(f);
    for (int col : left.nodes) {
      joined.nodes.push_back(
          program_->AddNode(OpType::kGather, {col, left_ids}, {}, "cross"));
    }
    for (int col : right.nodes) {
      joined.nodes.push_back(
          program_->AddNode(OpType::kGather, {col, right_ids}, {}, "cross"));
    }
    if (node.residual) {
      TQP_ASSIGN_OR_RETURN(TypedNode res, CompileExpr(*node.residual, joined));
      ColumnsState out;
      out.schema = joined.schema;
      for (int col : joined.nodes) {
        out.nodes.push_back(program_->AddNode(OpType::kCompress, {col, res.node},
                                              {}, "cross: residual"));
      }
      return out;
    }
    return joined;
  }

  Result<ColumnsState> CompileJoin(const PlanNode& node, const ColumnsState& left,
                                   const ColumnsState& right) {
    const bool semi_anti = node.join_type == sql::JoinType::kSemi ||
                           node.join_type == sql::JoinType::kAnti;
    const bool left_outer = node.join_type == sql::JoinType::kLeft;
    if (node.left_keys.empty()) {
      if (semi_anti || left_outer) {
        return Status::NotImplemented(
            "keyless semi/anti/left joins are not compiled to tensors");
      }
      return CompileCrossJoin(node, left, right);
    }
    // Key handling: the primary sort key must be numeric. Hash algo (or
    // string/multi keys) mixes all keys into one int64 hash and verifies
    // real equality afterwards on the joined rows.
    const LogicalType k0l =
        left.schema.field(node.left_keys[0]).type;
    bool use_hash = node.join_algo == JoinAlgo::kHash ||
                    k0l == LogicalType::kString || node.left_keys.size() > 1;
    if (semi_anti && use_hash && node.join_algo == JoinAlgo::kHash &&
        node.left_keys.size() == 1 && k0l != LogicalType::kString) {
      use_hash = false;  // exactness beats the algo hint for semi/anti
    }
    if (left_outer) {
      if (node.left_keys.size() > 1 || k0l == LogicalType::kString ||
          node.residual) {
        return Status::NotImplemented(
            "LEFT JOIN compiles with a single numeric key and no residual");
      }
      use_hash = false;
    }
    // Semi/anti joins with hashed keys or a residual predicate go through the
    // pair expansion below and reduce verified matches per left row.
    const bool general_semi =
        semi_anti && (use_hash || node.residual != nullptr);

    int kl = -1;
    int kr = -1;
    if (use_hash) {
      kl = HashKeys(left, node.left_keys);
      kr = HashKeys(right, node.right_keys);
    } else {
      TypedNode l{left.nodes[static_cast<size_t>(node.left_keys[0])],
                  PhysicalType(k0l)};
      TypedNode r{right.nodes[static_cast<size_t>(node.right_keys[0])],
                  PhysicalType(right.schema.field(node.right_keys[0]).type)};
      const DType common = PromoteTypes(l.dtype, r.dtype);
      kl = CastTo(l, common).node;
      kr = CastTo(r, common).node;
    }
    // Sort the right (build) side and locate each probe key's match range.
    AttrMap asc;
    asc.Set("ascending", true);
    const int perm_r = program_->AddNode(OpType::kArgsortRows, {kr}, asc,
                                         "join: sort build side");
    const int kr_sorted =
        program_->AddNode(OpType::kGather, {kr, perm_r}, {}, "join");
    AttrMap left_side;
    left_side.Set("right", false);
    AttrMap right_side;
    right_side.Set("right", true);
    const int lo = program_->AddNode(OpType::kSearchSorted, {kr_sorted, kl},
                                     left_side, "join: probe lower");
    const int hi = program_->AddNode(OpType::kSearchSorted, {kr_sorted, kl},
                                     right_side, "join: probe upper");
    AttrMap sub;
    sub.Set("op", static_cast<int64_t>(BinaryOpKind::kSub));
    const int counts =
        program_->AddNode(OpType::kBinary, {hi, lo}, sub, "join: match counts");

    if (semi_anti && !general_semi) {
      TQP_ASSIGN_OR_RETURN(
          TypedNode zero, ConstantScalar(Scalar(int64_t{0}), DType::kInt64, "0"));
      AttrMap cmp;
      cmp.Set("op", static_cast<int64_t>(node.join_type == sql::JoinType::kSemi
                                             ? CompareOpKind::kGt
                                             : CompareOpKind::kEq));
      const int mask = program_->AddNode(OpType::kCompare, {counts, zero.node},
                                         cmp, "semi/anti mask");
      ColumnsState out;
      out.schema = node.output_schema;
      for (int col : left.nodes) {
        out.nodes.push_back(
            program_->AddNode(OpType::kCompress, {col, mask}, {}, "semi/anti"));
      }
      return out;
    }

    // Expand matches: left row ids and right row ids of the join result.
    const int left_arange =
        program_->AddNode(OpType::kArangeLike, {kl}, {}, "join");
    const int left_ids = program_->AddNode(
        OpType::kRepeatInterleave, {left_arange, counts}, {}, "join: left ids");
    const int incl = program_->AddNode(OpType::kCumSum, {counts}, {}, "join");
    const int excl =
        program_->AddNode(OpType::kBinary, {incl, counts}, sub, "join");
    const int excl_rep = program_->AddNode(OpType::kRepeatInterleave,
                                           {excl, counts}, {}, "join");
    const int pos = program_->AddNode(OpType::kArangeLike, {left_ids}, {}, "join");
    const int within =
        program_->AddNode(OpType::kBinary, {pos, excl_rep}, sub, "join");
    const int lo_rep =
        program_->AddNode(OpType::kRepeatInterleave, {lo, counts}, {}, "join");
    AttrMap add;
    add.Set("op", static_cast<int64_t>(BinaryOpKind::kAdd));
    const int rpos =
        program_->AddNode(OpType::kBinary, {lo_rep, within}, add, "join");
    const int right_ids = program_->AddNode(OpType::kGather, {perm_r, rpos}, {},
                                            "join: right ids");

    ColumnsState joined;
    joined.schema = left.schema;
    for (const Field& f : right.schema.fields()) joined.schema.AddField(f);
    for (int col : left.nodes) {
      joined.nodes.push_back(program_->AddNode(OpType::kGather, {col, left_ids},
                                               {}, "join: gather left"));
    }
    for (int col : right.nodes) {
      joined.nodes.push_back(program_->AddNode(OpType::kGather, {col, right_ids},
                                               {}, "join: gather right"));
    }

    if (left_outer) {
      // LEFT OUTER = matched pairs (the expansion above; unmatched rows
      // contribute zero pairs) concatenated with the unmatched left rows,
      // whose right columns are zero sentinels (empty string for padded
      // string columns — ConcatRows pads widths). The trailing __matched
      // column is the validity mask ([8]'s NULL representation).
      TQP_ASSIGN_OR_RETURN(
          TypedNode zero, ConstantScalar(Scalar(int64_t{0}), DType::kInt64, "0"));
      AttrMap gt;
      gt.Set("op", static_cast<int64_t>(CompareOpKind::kGt));
      const int matched_l = program_->AddNode(
          OpType::kCompare, {counts, zero.node}, gt, "left join: matched");
      AttrMap not_attr;
      not_attr.Set("op", static_cast<int64_t>(UnaryOpKind::kNot));
      const int unmatched = program_->AddNode(OpType::kUnary, {matched_l},
                                              not_attr, "left join: unmatched");
      // Part A validity: all-true aligned with the matched pairs.
      AttrMap eq;
      eq.Set("op", static_cast<int64_t>(CompareOpKind::kEq));
      const int true_a = program_->AddNode(OpType::kCompare,
                                           {left_ids, left_ids}, eq,
                                           "left join: matched flag");
      // Part B: unmatched left rows with zero-filled right columns.
      const int unmatched_arange = program_->AddNode(
          OpType::kCompress, {left_arange, unmatched}, {}, "left join");
      AttrMap mul;
      mul.Set("op", static_cast<int64_t>(BinaryOpKind::kMul));
      const int zero_b = program_->AddNode(
          OpType::kBinary, {unmatched_arange, zero.node}, mul, "left join");
      AttrMap to_bool;
      to_bool.Set("dtype", static_cast<int64_t>(DType::kBool));
      const int false_b = program_->AddNode(OpType::kCast, {zero_b}, to_bool,
                                            "left join: unmatched flag");
      ColumnsState out;
      out.schema = node.output_schema;
      const int lw = static_cast<int>(left.nodes.size());
      for (int i = 0; i < lw; ++i) {
        const int part_b = program_->AddNode(
            OpType::kCompress, {left.nodes[static_cast<size_t>(i)], unmatched},
            {}, "left join: unmatched left");
        out.nodes.push_back(program_->AddNode(
            OpType::kConcatRows,
            {joined.nodes[static_cast<size_t>(i)], part_b}, {}, "left join"));
      }
      for (size_t j = 0; j < right.nodes.size(); ++j) {
        AttrMap cast_attr;
        cast_attr.Set("dtype",
                      static_cast<int64_t>(
                          PhysicalType(right.schema.field(static_cast<int>(j)).type)));
        const int zeros = program_->AddNode(OpType::kCast, {zero_b}, cast_attr,
                                            "left join: null sentinel");
        out.nodes.push_back(program_->AddNode(
            OpType::kConcatRows,
            {joined.nodes[static_cast<size_t>(lw) + j], zeros}, {},
            "left join"));
      }
      out.nodes.push_back(program_->AddNode(
          OpType::kConcatRows, {true_a, false_b}, {}, "left join: __matched"));
      return out;
    }

    // Residual mask: true key equality (when hashed) plus any non-equi parts.
    TypedNode mask;
    if (use_hash) {
      const int lw = static_cast<int>(left.nodes.size());
      for (size_t k = 0; k < node.left_keys.size(); ++k) {
        const int lk = node.left_keys[k];
        const int rk = node.right_keys[k];
        const LogicalType lt = left.schema.field(lk).type;
        TypedNode eq;
        if (lt == LogicalType::kString) {
          AttrMap attrs;
          attrs.Set("op", static_cast<int64_t>(CompareOpKind::kEq));
          eq = TypedNode{
              program_->AddNode(
                  OpType::kStringCompare,
                  {joined.nodes[static_cast<size_t>(lk)],
                   joined.nodes[static_cast<size_t>(lw + rk)]},
                  attrs, "join: verify keys"),
              DType::kBool};
        } else {
          AttrMap attrs;
          attrs.Set("op", static_cast<int64_t>(CompareOpKind::kEq));
          eq = TypedNode{
              program_->AddNode(
                  OpType::kCompare,
                  {joined.nodes[static_cast<size_t>(lk)],
                   joined.nodes[static_cast<size_t>(lw + rk)]},
                  attrs, "join: verify keys"),
              DType::kBool};
        }
        mask = AndMasks(mask, eq);
      }
    }
    if (node.residual) {
      TQP_ASSIGN_OR_RETURN(TypedNode res, CompileExpr(*node.residual, joined));
      mask = AndMasks(mask, res);
    }
    if (general_semi) {
      // Count verified matches per left row (segment ids = left row ids,
      // which the expansion emits sorted), then keep rows with any match
      // (semi) or none (anti).
      if (mask.node < 0) {
        return Status::Internal("semi/anti expansion without a pair mask");
      }
      AttrMap to_i64;
      to_i64.Set("dtype", static_cast<int64_t>(DType::kInt64));
      const int pair_int = program_->AddNode(OpType::kCast, {mask.node}, to_i64,
                                             "semi/anti: verified pairs");
      AttrMap count_attr;
      count_attr.Set("op", static_cast<int64_t>(ReduceOpKind::kCount));
      const int nseg = program_->AddNode(OpType::kReduceAll, {kl}, count_attr,
                                         "semi/anti: |left|");
      AttrMap sum_attr;
      sum_attr.Set("op", static_cast<int64_t>(ReduceOpKind::kSum));
      const int cnt = program_->AddNode(OpType::kSegmentedReduce,
                                        {pair_int, left_ids, nseg}, sum_attr,
                                        "semi/anti: matches per left row");
      TQP_ASSIGN_OR_RETURN(
          TypedNode zero, ConstantScalar(Scalar(0.0), DType::kFloat64, "0"));
      AttrMap cmp;
      cmp.Set("op", static_cast<int64_t>(node.join_type == sql::JoinType::kSemi
                                             ? CompareOpKind::kGt
                                             : CompareOpKind::kEq));
      const int keep = program_->AddNode(OpType::kCompare, {cnt, zero.node}, cmp,
                                         "semi/anti mask");
      ColumnsState out;
      out.schema = node.output_schema;
      for (int col : left.nodes) {
        out.nodes.push_back(
            program_->AddNode(OpType::kCompress, {col, keep}, {}, "semi/anti"));
      }
      return out;
    }
    if (mask.node >= 0) {
      ColumnsState out;
      out.schema = joined.schema;
      for (int col : joined.nodes) {
        out.nodes.push_back(program_->AddNode(OpType::kCompress, {col, mask.node},
                                              {}, "join: residual filter"));
      }
      return out;
    }
    return joined;
  }

  TypedNode AndMasks(TypedNode acc, TypedNode m) {
    if (acc.node < 0) return m;
    AttrMap attrs;
    attrs.Set("op", static_cast<int64_t>(LogicalOpKind::kAnd));
    return TypedNode{
        program_->AddNode(OpType::kLogical, {acc.node, m.node}, attrs),
        DType::kBool};
  }

  int HashKeys(const ColumnsState& state, const std::vector<int>& keys) {
    int h = program_->AddNode(OpType::kHashRows,
                              {state.nodes[static_cast<size_t>(keys[0])]}, {},
                              "join: hash keys");
    for (size_t k = 1; k < keys.size(); ++k) {
      h = program_->AddNode(
          OpType::kHashCombine,
          {h, state.nodes[static_cast<size_t>(keys[k])]}, {}, "join: hash keys");
    }
    return h;
  }

  // ---- Aggregate (sort + segmented reduction, the paper's formulation) -------

  Result<ColumnsState> CompileAggregate(const PlanNode& node,
                                        const ColumnsState& in) {
    ColumnsState out;
    out.schema = node.output_schema;
    if (node.group_exprs.empty()) {
      // Global aggregation: one ReduceAll per aggregate.
      for (const AggSpec& agg : node.aggs) {
        int arg = -1;
        if (agg.count_star || !agg.arg) {
          arg = in.nodes[0];
        } else {
          TQP_ASSIGN_OR_RETURN(TypedNode a, CompileExpr(*agg.arg, in));
          arg = a.node;
        }
        AttrMap attrs;
        attrs.Set("op", static_cast<int64_t>(agg.op));
        TypedNode r{program_->AddNode(OpType::kReduceAll, {arg}, attrs,
                                      agg.ToString()),
                    PhysicalType(agg.result_type())};
        // ReduceAll min/max keep input dtype; coerce to the declared type.
        r = CastTo(r, PhysicalType(agg.result_type()));
        out.nodes.push_back(r.node);
      }
      return out;
    }

    // 1. Compile group keys and build the composed multi-key stable sort.
    std::vector<TypedNode> keys;
    for (const BExpr& g : node.group_exprs) {
      TQP_ASSIGN_OR_RETURN(TypedNode k, CompileExpr(*g, in));
      keys.push_back(k);
    }
    AttrMap asc;
    asc.Set("ascending", true);
    int perm = program_->AddNode(OpType::kArgsortRows, {keys.back().node}, asc,
                                 "group-by: sort");
    for (size_t i = keys.size() - 1; i-- > 0;) {
      const int gathered = program_->AddNode(
          OpType::kGather, {keys[i].node, perm}, {}, "group-by: sort");
      const int p2 = program_->AddNode(OpType::kArgsortRows, {gathered}, asc,
                                       "group-by: sort");
      perm = program_->AddNode(OpType::kGather, {perm, p2}, {}, "group-by: sort");
    }
    // 2. Sorted keys, segment boundaries, segment ids and count.
    std::vector<int> sorted_keys;
    int bounds = -1;
    for (const TypedNode& k : keys) {
      const int sk = program_->AddNode(OpType::kGather, {k.node, perm}, {},
                                       "group-by: sorted keys");
      sorted_keys.push_back(sk);
      const int b = program_->AddNode(OpType::kSegmentBoundaries, {sk}, {},
                                      "group-by: boundaries");
      if (bounds < 0) {
        bounds = b;
      } else {
        AttrMap attrs;
        attrs.Set("op", static_cast<int64_t>(LogicalOpKind::kOr));
        bounds = program_->AddNode(OpType::kLogical, {bounds, b}, attrs,
                                   "group-by: boundaries");
      }
    }
    const int seg_incl =
        program_->AddNode(OpType::kCumSum, {bounds}, {}, "group-by: segment ids");
    AttrMap sub;
    sub.Set("op", static_cast<int64_t>(BinaryOpKind::kSub));
    TQP_ASSIGN_OR_RETURN(TypedNode one,
                         ConstantScalar(Scalar(int64_t{1}), DType::kInt64, "1"));
    const int seg_ids = program_->AddNode(OpType::kBinary, {seg_incl, one.node},
                                          sub, "group-by: segment ids");
    AttrMap sum_attr;
    sum_attr.Set("op", static_cast<int64_t>(ReduceOpKind::kSum));
    const int nseg_f = program_->AddNode(OpType::kReduceAll, {bounds}, sum_attr,
                                         "group-by: segment count");
    AttrMap to_i64;
    to_i64.Set("dtype", static_cast<int64_t>(DType::kInt64));
    const int nseg =
        program_->AddNode(OpType::kCast, {nseg_f}, to_i64, "group-by");

    // 3. Group key output columns.
    for (size_t i = 0; i < sorted_keys.size(); ++i) {
      out.nodes.push_back(program_->AddNode(OpType::kCompress,
                                            {sorted_keys[i], bounds}, {},
                                            "group-by: group keys"));
    }
    // 4. Aggregates: evaluate args pre-sort, permute, reduce per segment.
    for (const AggSpec& agg : node.aggs) {
      int values = -1;
      if (agg.count_star || !agg.arg) {
        values = seg_ids;  // any column with the right length
      } else {
        TQP_ASSIGN_OR_RETURN(TypedNode a, CompileExpr(*agg.arg, in));
        values = program_->AddNode(OpType::kGather, {a.node, perm}, {},
                                   "group-by: agg input");
      }
      AttrMap attrs;
      attrs.Set("op", static_cast<int64_t>(agg.op));
      TypedNode r{program_->AddNode(OpType::kSegmentedReduce,
                                    {values, seg_ids, nseg}, attrs,
                                    agg.ToString()),
                  PhysicalType(agg.result_type())};
      r = CastTo(r, PhysicalType(agg.result_type()));
      out.nodes.push_back(r.node);
    }
    return out;
  }

  // ---- Sort (ORDER BY) -------------------------------------------------------

  Result<ColumnsState> CompileSort(const PlanNode& node, const ColumnsState& in) {
    std::vector<TypedNode> keys;
    std::vector<bool> asc_flags;
    for (const SortKey& k : node.sort_keys) {
      TQP_ASSIGN_OR_RETURN(TypedNode kn, CompileExpr(*k.expr, in));
      keys.push_back(kn);
      asc_flags.push_back(k.ascending);
    }
    AttrMap last_attrs;
    last_attrs.Set("ascending", asc_flags.back());
    int perm = program_->AddNode(OpType::kArgsortRows, {keys.back().node},
                                 last_attrs, "order-by");
    for (size_t i = keys.size() - 1; i-- > 0;) {
      const int gathered =
          program_->AddNode(OpType::kGather, {keys[i].node, perm}, {}, "order-by");
      AttrMap attrs;
      attrs.Set("ascending", asc_flags[i]);
      const int p2 =
          program_->AddNode(OpType::kArgsortRows, {gathered}, attrs, "order-by");
      perm = program_->AddNode(OpType::kGather, {perm, p2}, {}, "order-by");
    }
    ColumnsState out;
    out.schema = node.output_schema;
    for (int col : in.nodes) {
      out.nodes.push_back(
          program_->AddNode(OpType::kGather, {col, perm}, {}, "order-by"));
    }
    return out;
  }

  TensorProgram* program_;
  const ml::ModelRegistry* models_;
  std::vector<CompiledQuery::InputBinding>* bindings_;
};

}  // namespace

Result<Table> CompiledQuery::Run(const Catalog& catalog) const {
  TQP_ASSIGN_OR_RETURN(std::vector<Tensor> inputs, CollectInputs(catalog));
  return RunWithInputs(inputs);
}

Result<std::vector<Tensor>> CompiledQuery::CollectInputs(
    const Catalog& catalog) const {
  std::vector<Tensor> inputs;
  inputs.reserve(bindings_.size());
  for (const InputBinding& b : bindings_) {
    TQP_ASSIGN_OR_RETURN(Table t, catalog.GetTable(b.table));
    if (b.column < 0 || b.column >= t.num_columns()) {
      return Status::Internal("input binding out of range for " + b.table);
    }
    inputs.push_back(t.column(b.column).tensor());
  }
  return inputs;
}

Result<Table> CompiledQuery::RunWithInputs(
    const std::vector<Tensor>& inputs) const {
  TQP_ASSIGN_OR_RETURN(std::vector<Tensor> outputs, executor_->Run(inputs));
  if (outputs.size() != static_cast<size_t>(output_schema_.num_fields())) {
    return Status::Internal("executor output arity mismatch");
  }
  std::vector<Column> columns;
  for (size_t i = 0; i < outputs.size(); ++i) {
    columns.emplace_back(output_schema_.field(static_cast<int>(i)).type,
                         outputs[i]);
  }
  return Table::Make(output_schema_, std::move(columns));
}

Result<CompiledQuery> QueryCompiler::Compile(const PlanPtr& physical_plan,
                                             const CompileOptions& options) const {
  CompiledQuery out;
  auto program = std::make_shared<TensorProgram>();
  PlanCompiler compiler(program.get(), models_, &out.bindings_);
  TQP_ASSIGN_OR_RETURN(ColumnsState result, compiler.CompileNode(*physical_plan));
  for (int node : result.nodes) program->MarkOutput(node);
  TQP_RETURN_NOT_OK(program->Validate());
  out.output_schema_ = physical_plan->output_schema;
  out.program_ = program;
  ExecOptions exec_options;
  exec_options.device = options.device;
  exec_options.profiler = options.profiler;
  exec_options.charge_transfers = options.charge_transfers;
  exec_options.num_threads = options.num_threads;
  exec_options.morsel_rows = options.morsel_rows;
  exec_options.pool = options.pool;
  exec_options.pipeline_overlap = options.pipeline_overlap;
  exec_options.expr_fusion = options.expr_fusion;
  exec_options.expr_backend = options.expr_backend;
  exec_options.adaptive_morsels = options.adaptive_morsels;
  exec_options.partitioned_breakers = options.partitioned_breakers;
  exec_options.step_scheduler = options.step_scheduler;
  exec_options.memory_budget_bytes = options.memory_budget_bytes;
  exec_options.deadline_ms = options.deadline_ms;
  TQP_ASSIGN_OR_RETURN(out.executor_,
                       MakeExecutor(options.target, program, exec_options));
  return out;
}

Result<CompiledQuery> QueryCompiler::CompileSql(
    const std::string& sql, const Catalog& catalog, const CompileOptions& options,
    const PhysicalOptions& physical) const {
  auto plan_or = [&] {
    obs::TraceSpan span("compile", "plan.frontend");
    return PlanQuery(sql, catalog, physical, models_);
  }();
  TQP_ASSIGN_OR_RETURN(PlanPtr plan, std::move(plan_or));
  obs::TraceSpan span("compile", "compile.lower");
  return Compile(plan, options);
}

}  // namespace tqp
