#include "kernels/reduce.h"

#include <algorithm>
#include <limits>
#include <string>

#include "kernels/elementwise.h"

namespace tqp::kernels {

namespace {

template <typename T>
double SumTyped(const Tensor& a) {
  const T* p = a.data<T>();
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += static_cast<double>(p[i]);
  return acc;
}

template <typename T>
T MinTyped(const Tensor& a) {
  const T* p = a.data<T>();
  T best = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) best = std::min(best, p[i]);
  return best;
}

template <typename T>
T MaxTyped(const Tensor& a) {
  const T* p = a.data<T>();
  T best = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) best = std::max(best, p[i]);
  return best;
}

template <typename F>
Result<double> DispatchNumeric(const Tensor& a, F f) {
  switch (a.dtype()) {
    case DType::kBool:
      return f(bool{});
    case DType::kUInt8:
      return f(uint8_t{});
    case DType::kInt32:
      return f(int32_t{});
    case DType::kInt64:
      return f(int64_t{});
    case DType::kFloat32:
      return f(float{});
    case DType::kFloat64:
      return f(double{});
  }
  return Status::TypeError("unsupported dtype");
}

}  // namespace

Result<Tensor> ReduceAll(ReduceOpKind op, const Tensor& a) {
  switch (op) {
    case ReduceOpKind::kCount:
      return Tensor::Full(DType::kInt64, 1, 1, static_cast<double>(a.rows()),
                          a.device());
    case ReduceOpKind::kSum: {
      if (a.numel() == 0) return Tensor::Full(DType::kFloat64, 1, 1, 0.0, a.device());
      TQP_ASSIGN_OR_RETURN(double s, DispatchNumeric(a, [&](auto tag) -> Result<double> {
                             using T = decltype(tag);
                             return SumTyped<T>(a);
                           }));
      return Tensor::Full(DType::kFloat64, 1, 1, s, a.device());
    }
    case ReduceOpKind::kMin:
    case ReduceOpKind::kMax: {
      if (a.numel() == 0) {
        return Status::Invalid("Min/Max reduction over empty tensor");
      }
      TQP_ASSIGN_OR_RETURN(double v, DispatchNumeric(a, [&](auto tag) -> Result<double> {
                             using T = decltype(tag);
                             return static_cast<double>(op == ReduceOpKind::kMin
                                                            ? MinTyped<T>(a)
                                                            : MaxTyped<T>(a));
                           }));
      return Tensor::Full(a.dtype(), 1, 1, v, a.device());
    }
  }
  return Status::Internal("unknown reduce op");
}

Result<Tensor> CumSum(const Tensor& a) {
  if (a.cols() != 1) return Status::Invalid("CumSum requires an (n x 1) tensor");
  const DType out_dt = IsFloatingPoint(a.dtype()) ? DType::kFloat64 : DType::kInt64;
  TQP_ASSIGN_OR_RETURN(Tensor ca, Cast(a, out_dt));
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(out_dt, a.rows(), 1, a.device()));
  if (out_dt == DType::kInt64) {
    const int64_t* p = ca.data<int64_t>();
    int64_t* o = out.mutable_data<int64_t>();
    int64_t acc = 0;
    for (int64_t i = 0; i < a.rows(); ++i) {
      acc += p[i];
      o[i] = acc;
    }
  } else {
    const double* p = ca.data<double>();
    double* o = out.mutable_data<double>();
    double acc = 0;
    for (int64_t i = 0; i < a.rows(); ++i) {
      acc += p[i];
      o[i] = acc;
    }
  }
  return out;
}

Result<Tensor> SegmentedReduce(ReduceOpKind op, const Tensor& values,
                               const Tensor& segment_ids, int64_t num_segments) {
  if (segment_ids.dtype() != DType::kInt64 || segment_ids.cols() != 1) {
    return Status::TypeError("segment_ids must be int64 (n x 1)");
  }
  if (values.rows() != segment_ids.rows() || values.cols() != 1) {
    return Status::Invalid("SegmentedReduce: values must be (n x 1) matching ids");
  }
  const int64_t n = values.rows();
  const int64_t* seg = segment_ids.data<int64_t>();
  const DType out_dt = op == ReduceOpKind::kCount
                           ? DType::kInt64
                           : (op == ReduceOpKind::kSum ? DType::kFloat64
                                                       : values.dtype());
  if (op == ReduceOpKind::kCount) {
    TQP_ASSIGN_OR_RETURN(Tensor out,
                         Tensor::Full(DType::kInt64, num_segments, 1, 0, values.device()));
    int64_t* o = out.mutable_data<int64_t>();
    for (int64_t i = 0; i < n; ++i) {
      if (seg[i] < 0 || seg[i] >= num_segments) {
        return Status::IndexError("segment id out of range");
      }
      o[seg[i]] += 1;
    }
    return out;
  }
  if (op == ReduceOpKind::kSum) {
    TQP_ASSIGN_OR_RETURN(Tensor cv, Cast(values, DType::kFloat64));
    TQP_ASSIGN_OR_RETURN(
        Tensor out, Tensor::Full(DType::kFloat64, num_segments, 1, 0.0, values.device()));
    const double* p = cv.data<double>();
    double* o = out.mutable_data<double>();
    for (int64_t i = 0; i < n; ++i) {
      if (seg[i] < 0 || seg[i] >= num_segments) {
        return Status::IndexError("segment id out of range");
      }
      o[seg[i]] += p[i];
    }
    return out;
  }
  // Min/Max: run in float64 and cast back at the end to keep the code compact.
  TQP_ASSIGN_OR_RETURN(Tensor cv, Cast(values, DType::kFloat64));
  const double init = op == ReduceOpKind::kMin
                          ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
  TQP_ASSIGN_OR_RETURN(Tensor acc,
                       Tensor::Full(DType::kFloat64, num_segments, 1, init, values.device()));
  const double* p = cv.data<double>();
  double* o = acc.mutable_data<double>();
  for (int64_t i = 0; i < n; ++i) {
    if (seg[i] < 0 || seg[i] >= num_segments) {
      return Status::IndexError("segment id out of range");
    }
    o[seg[i]] = op == ReduceOpKind::kMin ? std::min(o[seg[i]], p[i])
                                         : std::max(o[seg[i]], p[i]);
  }
  // Empty segments become 0 (documented behaviour).
  for (int64_t s = 0; s < num_segments; ++s) {
    if (o[s] == init) o[s] = 0.0;
  }
  return Cast(acc, out_dt);
}

Status ScatterAddInPlace(Tensor* target, const Tensor& indices,
                         const Tensor& values) {
  if (target->dtype() != DType::kFloat64 || values.cols() != 1 ||
      target->cols() != 1) {
    return Status::TypeError("ScatterAddInPlace requires float64 (n x 1) tensors");
  }
  if (indices.dtype() != DType::kInt64 || indices.rows() != values.rows()) {
    return Status::Invalid("ScatterAddInPlace: bad indices");
  }
  TQP_ASSIGN_OR_RETURN(Tensor cv, Cast(values, DType::kFloat64));
  const int64_t* idx = indices.data<int64_t>();
  const double* p = cv.data<double>();
  double* o = target->mutable_data<double>();
  for (int64_t i = 0; i < values.rows(); ++i) {
    const int64_t r = idx[i];
    if (r < 0 || r >= target->rows()) {
      return Status::IndexError("ScatterAddInPlace: index out of range");
    }
    o[r] += p[i];
  }
  return Status::OK();
}

Result<Tensor> ColumnSums(const Tensor& a) {
  TQP_ASSIGN_OR_RETURN(Tensor ca, Cast(a, DType::kFloat64));
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Full(DType::kFloat64, 1, a.cols(), 0.0, a.device()));
  const double* p = ca.data<double>();
  double* o = out.mutable_data<double>();
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) o[j] += p[i * a.cols() + j];
  }
  return out;
}

Result<Tensor> ReduceRows(ReduceOpKind op, const Tensor& a) {
  if (op == ReduceOpKind::kCount) {
    return Tensor::Full(DType::kInt64, a.rows(), 1, static_cast<double>(a.cols()),
                        a.device());
  }
  TQP_ASSIGN_OR_RETURN(Tensor ca, Cast(a, DType::kFloat64));
  const DType out_dt = op == ReduceOpKind::kSum ? DType::kFloat64 : a.dtype();
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kFloat64, a.rows(), 1, a.device()));
  const double* p = ca.data<double>();
  double* o = out.mutable_data<double>();
  for (int64_t i = 0; i < a.rows(); ++i) {
    double acc = op == ReduceOpKind::kSum ? 0.0 : p[i * a.cols()];
    for (int64_t j = op == ReduceOpKind::kSum ? 0 : 1; j < a.cols(); ++j) {
      const double v = p[i * a.cols() + j];
      if (op == ReduceOpKind::kSum) {
        acc += v;
      } else if (op == ReduceOpKind::kMin) {
        acc = std::min(acc, v);
      } else {
        acc = std::max(acc, v);
      }
    }
    o[i] = acc;
  }
  return Cast(out, out_dt);
}

Result<Tensor> ArgmaxRows(const Tensor& a) {
  if (a.cols() < 1 || a.rows() < 0) return Status::Invalid("ArgmaxRows: bad shape");
  TQP_ASSIGN_OR_RETURN(Tensor ca, Cast(a, DType::kFloat64));
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kInt64, a.rows(), 1, a.device()));
  const double* p = ca.data<double>();
  int64_t* o = out.mutable_data<int64_t>();
  for (int64_t i = 0; i < a.rows(); ++i) {
    int64_t best = 0;
    double best_v = p[i * a.cols()];
    for (int64_t j = 1; j < a.cols(); ++j) {
      const double v = p[i * a.cols() + j];
      if (v > best_v) {
        best_v = v;
        best = j;
      }
    }
    o[i] = best;
  }
  return out;
}

}  // namespace tqp::kernels
