// AVX2 implementations of the SIMD-tier fused kernels. This TU is compiled
// -mavx2 (see CMakeLists: excluded entirely under TQP_DISABLE_AVX2 or on
// non-x86 targets) and is reached only behind the CPUID check in
// simd_exec.cc, so nothing here executes on hosts without AVX2.
//
// Hand-written intrinsics cover the hottest shapes the TPC-H traces show —
// float64 arithmetic chains, float64 compare-and into masks, and the
// selection-vector compress; every other shape runs the generic loops of
// simd_exec_impl.h recompiled here at the AVX2 ISA level. No FMA anywhere
// (-mavx2 does not enable it, -ffp-contract=off forbids contraction): a
// vector add/sub/mul is IEEE-identical per lane to the scalar interpreter.

#include "kernels/simd_exec.h"

#if defined(__x86_64__) && !defined(TQP_DISABLE_AVX2)

#include <immintrin.h>

#define TQP_SIMD_IMPL_NS avx2_generic
#include "kernels/simd_exec_impl.h"
#undef TQP_SIMD_IMPL_NS

namespace tqp::kernels::simd {

namespace {

/// Re-bases a fused-kernel operand at lane `i` (broadcast operands stay put)
/// so tail lanes can run through the generic loops.
inline LaneRef Advance(LaneRef r, int64_t i, int64_t elem_size) {
  if (!r.scalar && r.data != nullptr) r.data += i * elem_size;
  return r;
}

inline bool AddSubMul(BinaryOpKind k) {
  return k == BinaryOpKind::kAdd || k == BinaryOpKind::kSub ||
         k == BinaryOpKind::kMul;
}

__attribute__((target("avx2"))) inline __m256d BinOp256d(BinaryOpKind op,
                                                         __m256d x,
                                                         __m256d y) {
  switch (op) {
    case BinaryOpKind::kAdd:
      return _mm256_add_pd(x, y);
    case BinaryOpKind::kSub:
      return _mm256_sub_pd(x, y);
    default:
      return _mm256_mul_pd(x, y);
  }
}

/// dst = f2(f1(a, b), c) over float64 lanes, 4 wide; handles every
/// scalar-broadcast combination with loop-invariant selects. Processes
/// exactly `n4` lanes (a multiple of 4).
__attribute__((target("avx2"))) void BinBinF64(BinaryOpKind op1,
                                               BinaryOpKind op2, bool t_left,
                                               LaneRef a, LaneRef b, LaneRef c,
                                               double* o, int64_t n4) {
  const double* pa = reinterpret_cast<const double*>(a.data);
  const double* pb = reinterpret_cast<const double*>(b.data);
  const double* pc = reinterpret_cast<const double*>(c.data);
  const __m256d av = a.scalar ? _mm256_set1_pd(pa[0]) : _mm256_setzero_pd();
  const __m256d bv = b.scalar ? _mm256_set1_pd(pb[0]) : _mm256_setzero_pd();
  const __m256d cv = c.scalar ? _mm256_set1_pd(pc[0]) : _mm256_setzero_pd();
  for (int64_t i = 0; i < n4; i += 4) {
    const __m256d x = a.scalar ? av : _mm256_loadu_pd(pa + i);
    const __m256d y = b.scalar ? bv : _mm256_loadu_pd(pb + i);
    const __m256d t = BinOp256d(op1, x, y);
    const __m256d z = c.scalar ? cv : _mm256_loadu_pd(pc + i);
    const __m256d r = t_left ? BinOp256d(op2, t, z) : BinOp256d(op2, z, t);
    _mm256_storeu_pd(o + i, r);
  }
}

/// mask = (a cmp b_scalar) && c over float64 lanes — the Q6-class predicate
/// shape (column vs literal, conjoined into the running mask). `P` is the
/// _CMP_* predicate matching the scalar comparison's NaN semantics.
template <int P>
__attribute__((target("avx2"))) void CmpAndF64VS(const double* a, double b,
                                                 const uint8_t* c, uint8_t* o,
                                                 int64_t n4) {
  const __m256d bv = _mm256_set1_pd(b);
  for (int64_t i = 0; i < n4; i += 4) {
    const __m256d x = _mm256_loadu_pd(a + i);
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(x, bv, P));
    o[i + 0] = static_cast<uint8_t>((m & 1) & (c[i + 0] != 0 ? 1 : 0));
    o[i + 1] = static_cast<uint8_t>(((m >> 1) & 1) & (c[i + 1] != 0 ? 1 : 0));
    o[i + 2] = static_cast<uint8_t>(((m >> 2) & 1) & (c[i + 2] != 0 ? 1 : 0));
    o[i + 3] = static_cast<uint8_t>(((m >> 3) & 1) & (c[i + 3] != 0 ? 1 : 0));
  }
}

/// Selection-vector compress: 32 mask bytes per iteration into a movemask
/// word, then one index emit per set bit (ctz walk) — order-preserving,
/// identical output to the interpreter's count-then-emit.
__attribute__((target("avx2"))) int64_t SelVecCompressAvx2(const uint8_t* mask,
                                                           int64_t n,
                                                           int64_t* sel) {
  int64_t k = 0;
  int64_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    const uint32_t zeros = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    uint32_t bits = ~zeros;
    while (bits != 0) {
      sel[k++] = i + __builtin_ctz(bits);
      bits &= bits - 1;
    }
  }
  for (; i < n; ++i) {
    sel[k] = i;
    k += mask[i] != 0 ? 1 : 0;
  }
  return k;
}

}  // namespace

namespace avx2_impl {

Status BinBinDispatch(DType dtype, BinaryOpKind op1, BinaryOpKind op2,
                      bool t_left, LaneRef a, LaneRef b, LaneRef c,
                      uint8_t* dst, int64_t n) {
  if (dtype == DType::kFloat64 && AddSubMul(op1) && AddSubMul(op2) && n >= 4) {
    const int64_t n4 = n & ~int64_t{3};
    BinBinF64(op1, op2, t_left, a, b, c, reinterpret_cast<double*>(dst), n4);
    if (n4 == n) return Status::OK();
    return avx2_generic::BinBinDispatch(dtype, op1, op2, t_left,
                                        Advance(a, n4, 8), Advance(b, n4, 8),
                                        Advance(c, n4, 8), dst + n4 * 8,
                                        n - n4);
  }
  return avx2_generic::BinBinDispatch(dtype, op1, op2, t_left, a, b, c, dst,
                                      n);
}

Status CmpAndDispatch(DType in_dtype, CompareOpKind cmp, LaneRef a, LaneRef b,
                      LaneRef c, uint8_t* dst, int64_t n) {
  if (in_dtype == DType::kFloat64 && !a.scalar && b.scalar && !c.scalar &&
      n >= 4) {
    const int64_t n4 = n & ~int64_t{3};
    const double* pa = reinterpret_cast<const double*>(a.data);
    const double bv = reinterpret_cast<const double*>(b.data)[0];
    switch (cmp) {
      case CompareOpKind::kEq:
        CmpAndF64VS<_CMP_EQ_OQ>(pa, bv, c.data, dst, n4);
        break;
      case CompareOpKind::kNe:
        CmpAndF64VS<_CMP_NEQ_UQ>(pa, bv, c.data, dst, n4);
        break;
      case CompareOpKind::kLt:
        CmpAndF64VS<_CMP_LT_OQ>(pa, bv, c.data, dst, n4);
        break;
      case CompareOpKind::kLe:
        CmpAndF64VS<_CMP_LE_OQ>(pa, bv, c.data, dst, n4);
        break;
      case CompareOpKind::kGt:
        CmpAndF64VS<_CMP_GT_OQ>(pa, bv, c.data, dst, n4);
        break;
      case CompareOpKind::kGe:
        CmpAndF64VS<_CMP_GE_OQ>(pa, bv, c.data, dst, n4);
        break;
    }
    if (n4 == n) return Status::OK();
    return avx2_generic::CmpAndDispatch(in_dtype, cmp, Advance(a, n4, 8), b,
                                        Advance(c, n4, 1), dst + n4, n - n4);
  }
  return avx2_generic::CmpAndDispatch(in_dtype, cmp, a, b, c, dst, n);
}

Status CastCmpDispatch(DType from, DType to, CompareOpKind cmp, bool t_left,
                       LaneRef a, LaneRef b, uint8_t* dst, int64_t n) {
  return avx2_generic::CastCmpDispatch(from, to, cmp, t_left, a, b, dst, n);
}

int64_t SelVecCompressImpl(const uint8_t* mask, int64_t n, int64_t* sel) {
  return SelVecCompressAvx2(mask, n, sel);
}

}  // namespace avx2_impl
}  // namespace tqp::kernels::simd

#endif  // defined(__x86_64__) && !defined(TQP_DISABLE_AVX2)
