#ifndef TQP_KERNELS_SIMD_EXEC_H_
#define TQP_KERNELS_SIMD_EXEC_H_

#include <cstdint>

#include "common/result.h"
#include "kernels/kernel_types.h"
#include "tensor/dtype.h"

namespace tqp::kernels::simd {

/// The SIMD execution tier for fused ExprPrograms: explicit vector kernels
/// for the instruction shapes the TPC-H traces show dominate fused runs —
/// arithmetic chains (mul+add / mul+sub), predicate construction
/// (compare+and), promotion-then-compare (cast+compare) and selection-vector
/// compress. Everything here consumes the per-lane functors of
/// kernels/lane_ops.h, so a fused pair computes exactly the composition the
/// interpreter would compute in two sweeps; with contraction disabled
/// (-ffp-contract=off on these TUs) results are bit-identical to the
/// interpreter and therefore to eager evaluation.
///
/// Two implementations of every entry point are compiled:
///  - a portable one (simd_exec.cc, `#pragma omp simd` over the lane
///    functors, plain target flags) that exists on every build, and
///  - an AVX2 one (simd_exec_avx2.cc, compiled -mavx2 in its own TU, with
///    hand-written intrinsics for the hottest float64 shapes and the
///    selection-vector compress).
/// Entry points dispatch on ActiveLevel(), resolved once per process via
/// CPUID (__builtin_cpu_supports) — AVX2 code is never reached on hosts
/// without it, and builds configured with TQP_DISABLE_AVX2 (or non-x86
/// targets) contain only the portable TU.

/// \brief Vector ISA levels the dispatcher distinguishes.
enum class SimdLevel : int8_t {
  kScalar = 0,  // portable TU (autovectorized / omp simd)
  kAvx2 = 1,    // hand + avx2-compiled kernels, CPUID-gated
};

const char* SimdLevelName(SimdLevel level);

/// \brief The level fused kernels will execute at: the CPUID-detected level,
/// unless overridden by ForceScalarForTesting.
SimdLevel ActiveLevel();

/// \brief Test hook: pretend the host has no vector ISA so the portable
/// fallback path is exercised on AVX2 hardware. Not for production use.
void ForceScalarForTesting(bool on);

/// \brief One fused-kernel operand: raw lanes plus broadcast-ness (scalar
/// operands hold a single value at data[0]).
struct LaneRef {
  const uint8_t* data = nullptr;
  bool scalar = false;
};

// ---------------------------------------------------------------------------
// Fused entry points. Shapes mirror the instruction pairs the coverage
// planner (compile/expr_simd.h) marks; support predicates below tell the
// planner exactly what will dispatch, so a planned step never fails at
// runtime for a coverage reason.
// ---------------------------------------------------------------------------

/// \brief dst = t op2 c (t_left) or c op2 t, where t = a op1 b. All lanes of
/// element type `dtype`.
Status FusedBinBin(DType dtype, BinaryOpKind op1, BinaryOpKind op2,
                   bool t_left, LaneRef a, LaneRef b, LaneRef c, uint8_t* dst,
                   int64_t n);
bool SupportsBinBin(DType dtype, BinaryOpKind op1, BinaryOpKind op2);

/// \brief bool dst = (a cmp b) && c, with a/b lanes of `in_dtype` and c a
/// bool mask (conjunction of lane values commutes, so operand order of the
/// kLogical instruction does not matter).
Status FusedCmpAnd(DType in_dtype, CompareOpKind cmp, LaneRef a, LaneRef b,
                   LaneRef c, uint8_t* dst, int64_t n);
bool SupportsCmpAnd(DType in_dtype);

/// \brief bool dst = cast<to>(a) cmp b (t_left) or b cmp cast<to>(a), with a
/// lanes of `from` and b lanes of `to`.
Status FusedCastCmp(DType from, DType to, CompareOpKind cmp, bool t_left,
                    LaneRef a, LaneRef b, uint8_t* dst, int64_t n);
bool SupportsCastCmp(DType from, DType to);

/// \brief Compresses the true lanes of `mask` into ascending local indices
/// in `sel` (capacity >= n) and returns the survivor count — the vectorized
/// form of the interpreter's kSelVec (count, then emit).
int64_t SelVecCompress(const uint8_t* mask, int64_t n, int64_t* sel);

}  // namespace tqp::kernels::simd

#endif  // TQP_KERNELS_SIMD_EXEC_H_
