#include "kernels/strings.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"
#include "kernels/selection.h"
#include "kernels/sort.h"

namespace tqp::kernels {

namespace {

Status CheckStringTensor(const Tensor& a) {
  if (a.dtype() != DType::kUInt8) {
    return Status::TypeError("string kernels require uint8 tensors");
  }
  return Status::OK();
}

// Length of row i ignoring the zero padding.
int64_t RowLen(const uint8_t* row, int64_t m) {
  int64_t len = m;
  while (len > 0 && row[len - 1] == 0) --len;
  return len;
}

// memcmp-style compare of a padded row against a literal, treating the pad as
// "shorter string".
int CompareRowLiteral(const uint8_t* row, int64_t m, const std::string& lit) {
  const int64_t len = RowLen(row, m);
  const int64_t common = std::min<int64_t>(len, static_cast<int64_t>(lit.size()));
  const int c = common == 0 ? 0
                            : std::memcmp(row, lit.data(), static_cast<size_t>(common));
  if (c != 0) return c;
  if (len < static_cast<int64_t>(lit.size())) return -1;
  if (len > static_cast<int64_t>(lit.size())) return 1;
  return 0;
}

bool ApplyCompare(CompareOpKind op, int c) {
  switch (op) {
    case CompareOpKind::kEq:
      return c == 0;
    case CompareOpKind::kNe:
      return c != 0;
    case CompareOpKind::kLt:
      return c < 0;
    case CompareOpKind::kLe:
      return c <= 0;
    case CompareOpKind::kGt:
      return c > 0;
    case CompareOpKind::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

Result<Tensor> EncodeStrings(const std::vector<std::string>& values,
                             int64_t min_width) {
  int64_t m = std::max<int64_t>(min_width, 1);
  for (const std::string& s : values) {
    m = std::max<int64_t>(m, static_cast<int64_t>(s.size()));
  }
  TQP_ASSIGN_OR_RETURN(
      Tensor out, Tensor::Empty(DType::kUInt8, static_cast<int64_t>(values.size()), m));
  uint8_t* p = out.mutable_data<uint8_t>();
  for (size_t i = 0; i < values.size(); ++i) {
    std::memcpy(p + static_cast<int64_t>(i) * m, values[i].data(), values[i].size());
  }
  return out;
}

Result<std::vector<std::string>> DecodeStrings(const Tensor& t) {
  TQP_RETURN_NOT_OK(CheckStringTensor(t));
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(t.rows()));
  const uint8_t* p = t.data<uint8_t>();
  for (int64_t i = 0; i < t.rows(); ++i) {
    const uint8_t* row = p + i * t.cols();
    out.emplace_back(reinterpret_cast<const char*>(row),
                     static_cast<size_t>(RowLen(row, t.cols())));
  }
  return out;
}

Result<Tensor> StringCompareScalar(CompareOpKind op, const Tensor& a,
                                   const std::string& literal) {
  TQP_RETURN_NOT_OK(CheckStringTensor(a));
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kBool, a.rows(), 1, a.device()));
  const uint8_t* p = a.data<uint8_t>();
  bool* o = out.mutable_data<bool>();
  for (int64_t i = 0; i < a.rows(); ++i) {
    o[i] = ApplyCompare(op, CompareRowLiteral(p + i * a.cols(), a.cols(), literal));
  }
  return out;
}

Result<Tensor> StringCompare(CompareOpKind op, const Tensor& a, const Tensor& b) {
  TQP_RETURN_NOT_OK(CheckStringTensor(a));
  TQP_RETURN_NOT_OK(CheckStringTensor(b));
  if (a.rows() != b.rows()) {
    return Status::Invalid("StringCompare: row count mismatch");
  }
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kBool, a.rows(), 1, a.device()));
  const uint8_t* pa = a.data<uint8_t>();
  const uint8_t* pb = b.data<uint8_t>();
  bool* o = out.mutable_data<bool>();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const uint8_t* ra = pa + i * a.cols();
    const uint8_t* rb = pb + i * b.cols();
    const int64_t la = RowLen(ra, a.cols());
    const int64_t lb = RowLen(rb, b.cols());
    const int64_t common = std::min(la, lb);
    int c = common == 0 ? 0 : std::memcmp(ra, rb, static_cast<size_t>(common));
    if (c == 0) c = la < lb ? -1 : (la > lb ? 1 : 0);
    o[i] = ApplyCompare(op, c);
  }
  return out;
}

Result<Tensor> StringLike(const Tensor& a, const std::string& pattern) {
  TQP_RETURN_NOT_OK(CheckStringTensor(a));
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kBool, a.rows(), 1, a.device()));
  const uint8_t* p = a.data<uint8_t>();
  bool* o = out.mutable_data<bool>();
  const int64_t m = a.cols();

  // Fast-path classification.
  const bool has_underscore = pattern.find('_') != std::string::npos;
  const int64_t pct_count =
      std::count(pattern.begin(), pattern.end(), '%');

  if (!has_underscore && pct_count == 0) {
    // No wildcards: plain equality.
    return StringCompareScalar(CompareOpKind::kEq, a, pattern);
  }
  if (!has_underscore && pct_count == 2 && pattern.size() >= 2 &&
      pattern.front() == '%' && pattern.back() == '%') {
    // '%needle%': substring search.
    const std::string needle = pattern.substr(1, pattern.size() - 2);
    for (int64_t i = 0; i < a.rows(); ++i) {
      const uint8_t* row = p + i * m;
      const int64_t len = RowLen(row, m);
      std::string_view hay(reinterpret_cast<const char*>(row),
                           static_cast<size_t>(len));
      o[i] = hay.find(needle) != std::string_view::npos;
    }
    return out;
  }
  if (!has_underscore && pct_count == 1 && pattern.back() == '%') {
    // 'prefix%'.
    const std::string prefix = pattern.substr(0, pattern.size() - 1);
    for (int64_t i = 0; i < a.rows(); ++i) {
      const uint8_t* row = p + i * m;
      const int64_t len = RowLen(row, m);
      o[i] = len >= static_cast<int64_t>(prefix.size()) &&
             std::memcmp(row, prefix.data(), prefix.size()) == 0;
    }
    return out;
  }
  // General path: backtracking matcher per row.
  for (int64_t i = 0; i < a.rows(); ++i) {
    const uint8_t* row = p + i * m;
    const int64_t len = RowLen(row, m);
    std::string_view value(reinterpret_cast<const char*>(row),
                           static_cast<size_t>(len));
    o[i] = LikeMatch(value, pattern);
  }
  return out;
}

Result<Tensor> Substring(const Tensor& a, int64_t start, int64_t len) {
  TQP_RETURN_NOT_OK(CheckStringTensor(a));
  if (start < 0 || len <= 0) return Status::Invalid("Substring: bad range");
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kUInt8, a.rows(), len, a.device()));
  const uint8_t* p = a.data<uint8_t>();
  uint8_t* o = out.mutable_data<uint8_t>();
  const int64_t m = a.cols();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const uint8_t* row = p + i * m;
    const int64_t avail = std::max<int64_t>(0, std::min(len, m - start));
    if (avail > 0) {
      std::memcpy(o + i * len, row + start, static_cast<size_t>(avail));
    }
  }
  return out;
}

Result<Tensor> HashTokenize(const Tensor& a, int64_t vocab, int64_t max_tokens) {
  TQP_RETURN_NOT_OK(CheckStringTensor(a));
  if (vocab <= 0 || max_tokens <= 0) {
    return Status::Invalid("HashTokenize: vocab and max_tokens must be positive");
  }
  TQP_ASSIGN_OR_RETURN(
      Tensor out, Tensor::Full(DType::kInt64, a.rows(), max_tokens, -1, a.device()));
  const uint8_t* p = a.data<uint8_t>();
  int64_t* po = out.mutable_data<int64_t>();
  const int64_t m = a.cols();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const uint8_t* row = p + i * m;
    int64_t emitted = 0;
    uint64_t h = 1469598103934665603ull;
    bool in_token = false;
    for (int64_t j = 0; j <= m && emitted < max_tokens; ++j) {
      uint8_t c = j < m ? row[j] : 0;
      if (c >= 'A' && c <= 'Z') c = static_cast<uint8_t>(c - 'A' + 'a');
      const bool alnum = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
      if (alnum) {
        h = (h ^ c) * 1099511628211ull;
        in_token = true;
      } else if (in_token) {
        po[i * max_tokens + emitted++] =
            static_cast<int64_t>(h % static_cast<uint64_t>(vocab));
        h = 1469598103934665603ull;
        in_token = false;
      }
    }
  }
  return out;
}

Result<DictEncoded> DictEncode(const Tensor& a) {
  TQP_RETURN_NOT_OK(CheckStringTensor(a));
  // Sort rows, find unique boundaries, then invert the permutation to assign
  // each original row its dictionary code. All steps are tensor kernels.
  TQP_ASSIGN_OR_RETURN(Tensor perm, ArgsortRows(a));
  TQP_ASSIGN_OR_RETURN(Tensor sorted, Gather(a, perm));
  TQP_ASSIGN_OR_RETURN(Tensor bounds, SegmentBoundaries(sorted));
  TQP_ASSIGN_OR_RETURN(Tensor dict, Compress(sorted, bounds));

  // code-of-sorted-position = cumsum(bounds) - 1; scatter back via perm.
  TQP_ASSIGN_OR_RETURN(Tensor codes,
                       Tensor::Empty(DType::kInt64, a.rows(), 1, a.device()));
  int64_t* pc = codes.mutable_data<int64_t>();
  const bool* pb = bounds.data<bool>();
  const int64_t* pp = perm.data<int64_t>();
  int64_t code = -1;
  for (int64_t i = 0; i < a.rows(); ++i) {
    if (pb[i]) ++code;
    pc[pp[i]] = code;
  }
  return DictEncoded{std::move(codes), std::move(dict)};
}

}  // namespace tqp::kernels
