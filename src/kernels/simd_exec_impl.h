// Generic bodies of the SIMD-tier fused kernels, compiled once per target
// TU: simd_exec.cc includes this as namespace `portable_impl` (base ISA) and
// simd_exec_avx2.cc as namespace `avx2_generic` (-mavx2), so the same loops
// exist at both ISA levels under distinct symbols and the linker can never
// substitute a vector-ISA body into the portable path. Per-lane arithmetic
// is kernels/lane_ops.h verbatim; loops carry `#pragma omp simd` (both TUs
// build with -fopenmp-simd -ffp-contract=off, so no FMA contraction — the
// fused pair stays bit-identical to the interpreter's two sweeps).
//
// Not a standalone header: define TQP_SIMD_IMPL_NS before inclusion.

#ifndef TQP_SIMD_IMPL_NS
#error "simd_exec_impl.h requires TQP_SIMD_IMPL_NS"
#endif

#include <cstdint>

#include "common/result.h"
#include "kernels/lane_ops.h"
#include "kernels/simd_exec.h"

namespace tqp::kernels::simd {
namespace TQP_SIMD_IMPL_NS {

namespace detail {

/// dst = f2(t, c) / f2(c, t) with t = f1(a, b). Scalar operands hoist to
/// loop invariants; the ternaries fold away under loop unswitching.
template <typename T, typename F1, typename F2>
inline void BinBinLoop(const T* a, bool as, const T* b, bool bs, const T* c,
                       bool cs, bool t_left, T* o, int64_t n, F1 f1, F2 f2) {
  const T av = as ? a[0] : T{};
  const T bv = bs ? b[0] : T{};
  const T cv = cs ? c[0] : T{};
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) {
    const T t = f1(as ? av : a[i], bs ? bv : b[i]);
    const T z = cs ? cv : c[i];
    o[i] = t_left ? f2(t, z) : f2(z, t);
  }
}

/// bool dst = cmp(a, b) && c (value conjunction commutes).
template <typename T, typename FC>
inline void CmpAndLoop(const T* a, bool as, const T* b, bool bs,
                       const uint8_t* c, bool cs, uint8_t* o, int64_t n,
                       FC cmp) {
  const T av = as ? a[0] : T{};
  const T bv = bs ? b[0] : T{};
  const bool cv = cs ? c[0] != 0 : false;
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) {
    const bool m = cmp(as ? av : a[i], bs ? bv : b[i]);
    const bool k = cs ? cv : c[i] != 0;
    o[i] = static_cast<uint8_t>(m && k);
  }
}

/// bool dst = cmp(cast<To>(a), b) / cmp(b, cast<To>(a)).
template <typename From, typename To, typename FC>
inline void CastCmpLoop(const From* a, bool as, const To* b, bool bs,
                        bool t_left, uint8_t* o, int64_t n, FC cmp) {
  const From av = as ? a[0] : From{};
  const To bv = bs ? b[0] : To{};
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) {
    const To t = lane::CastLane<From, To>(as ? av : a[i]);
    const To y = bs ? bv : b[i];
    o[i] = static_cast<uint8_t>(t_left ? cmp(t, y) : cmp(y, t));
  }
}

template <typename T>
Status BinBinT(BinaryOpKind op1, BinaryOpKind op2, bool t_left, LaneRef a,
               LaneRef b, LaneRef c, uint8_t* dst, int64_t n) {
  Status inner = Status::OK();
  TQP_RETURN_NOT_OK(lane::WithBinaryLane<T>(op1, [&](auto f1) {
    inner = lane::WithBinaryLane<T>(op2, [&](auto f2) {
      BinBinLoop<T>(reinterpret_cast<const T*>(a.data), a.scalar,
                    reinterpret_cast<const T*>(b.data), b.scalar,
                    reinterpret_cast<const T*>(c.data), c.scalar, t_left,
                    reinterpret_cast<T*>(dst), n, f1, f2);
    });
  }));
  return inner;
}

template <typename T>
Status CmpAndT(CompareOpKind cmp, LaneRef a, LaneRef b, LaneRef c,
               uint8_t* dst, int64_t n) {
  return lane::WithCompareLane<T>(cmp, [&](auto f) {
    CmpAndLoop<T>(reinterpret_cast<const T*>(a.data), a.scalar,
                  reinterpret_cast<const T*>(b.data), b.scalar, c.data,
                  c.scalar, dst, n, f);
  });
}

template <typename From, typename To>
Status CastCmpT(CompareOpKind cmp, bool t_left, LaneRef a, LaneRef b,
                uint8_t* dst, int64_t n) {
  return lane::WithCompareLane<To>(cmp, [&](auto f) {
    CastCmpLoop<From, To>(reinterpret_cast<const From*>(a.data), a.scalar,
                          reinterpret_cast<const To*>(b.data), b.scalar,
                          t_left, dst, n, f);
  });
}

template <typename From>
Status CastCmpFrom(DType to, CompareOpKind cmp, bool t_left, LaneRef a,
                   LaneRef b, uint8_t* dst, int64_t n) {
  switch (to) {
    case DType::kInt32:
      return CastCmpT<From, int32_t>(cmp, t_left, a, b, dst, n);
    case DType::kInt64:
      return CastCmpT<From, int64_t>(cmp, t_left, a, b, dst, n);
    case DType::kFloat32:
      return CastCmpT<From, float>(cmp, t_left, a, b, dst, n);
    case DType::kFloat64:
      return CastCmpT<From, double>(cmp, t_left, a, b, dst, n);
    default:
      return Status::Internal("simd: cast+compare target dtype unsupported");
  }
}

}  // namespace detail

/// \brief Generic (autovectorized) BinBin at this TU's ISA level.
Status BinBinDispatch(DType dtype, BinaryOpKind op1, BinaryOpKind op2,
                      bool t_left, LaneRef a, LaneRef b, LaneRef c,
                      uint8_t* dst, int64_t n) {
  switch (dtype) {
    case DType::kInt32:
      return detail::BinBinT<int32_t>(op1, op2, t_left, a, b, c, dst, n);
    case DType::kInt64:
      return detail::BinBinT<int64_t>(op1, op2, t_left, a, b, c, dst, n);
    case DType::kFloat32:
      return detail::BinBinT<float>(op1, op2, t_left, a, b, c, dst, n);
    case DType::kFloat64:
      return detail::BinBinT<double>(op1, op2, t_left, a, b, c, dst, n);
    default:
      return Status::Internal("simd: fused binary over unsupported dtype");
  }
}

/// \brief Generic (autovectorized) CmpAnd at this TU's ISA level.
Status CmpAndDispatch(DType in_dtype, CompareOpKind cmp, LaneRef a, LaneRef b,
                      LaneRef c, uint8_t* dst, int64_t n) {
  switch (in_dtype) {
    case DType::kUInt8:
      return detail::CmpAndT<uint8_t>(cmp, a, b, c, dst, n);
    case DType::kInt32:
      return detail::CmpAndT<int32_t>(cmp, a, b, c, dst, n);
    case DType::kInt64:
      return detail::CmpAndT<int64_t>(cmp, a, b, c, dst, n);
    case DType::kFloat32:
      return detail::CmpAndT<float>(cmp, a, b, c, dst, n);
    case DType::kFloat64:
      return detail::CmpAndT<double>(cmp, a, b, c, dst, n);
    default:
      return Status::Internal("simd: fused compare over unsupported dtype");
  }
}

/// \brief Generic (autovectorized) CastCmp at this TU's ISA level.
Status CastCmpDispatch(DType from, DType to, CompareOpKind cmp, bool t_left,
                       LaneRef a, LaneRef b, uint8_t* dst, int64_t n) {
  switch (from) {
    case DType::kInt32:
      return detail::CastCmpFrom<int32_t>(to, cmp, t_left, a, b, dst, n);
    case DType::kInt64:
      return detail::CastCmpFrom<int64_t>(to, cmp, t_left, a, b, dst, n);
    case DType::kFloat32:
      return detail::CastCmpFrom<float>(to, cmp, t_left, a, b, dst, n);
    case DType::kFloat64:
      return detail::CastCmpFrom<double>(to, cmp, t_left, a, b, dst, n);
    default:
      return Status::Internal("simd: cast+compare source dtype unsupported");
  }
}

/// \brief Branch-free selection-vector compress (ascending true-lane
/// indices; `sel` capacity >= n).
int64_t SelVecCompressImpl(const uint8_t* mask, int64_t n, int64_t* sel) {
  int64_t k = 0;
  for (int64_t i = 0; i < n; ++i) {
    sel[k] = i;
    k += mask[i] != 0 ? 1 : 0;
  }
  return k;
}

}  // namespace TQP_SIMD_IMPL_NS
}  // namespace tqp::kernels::simd
