#ifndef TQP_KERNELS_LANE_OPS_H_
#define TQP_KERNELS_LANE_OPS_H_

#include <cmath>
#include <cstdint>
#include <type_traits>

#include "common/result.h"
#include "kernels/kernel_types.h"

namespace tqp::kernels::lane {

/// The single definition of per-lane arithmetic shared by every execution
/// tier: the node-at-a-time elementwise kernels (kernels/elementwise.cc),
/// the fused ExprProgram interpreter (kernels/expr_exec.cc) and the SIMD
/// tier (kernels/simd_exec*.cc) all evaluate one lane through the functors
/// dispatched here. Bit-identity across tiers reduces to "same lane functor,
/// same iteration order", so the semantic corner cases live in exactly one
/// place:
///  - integer div/mod by zero yields 0 (the SQL-ish total function the
///    kernels have always implemented);
///  - float mod evaluates through std::fmod(double, double) and narrows;
///  - every non-Not unary evaluates through double and narrows back
///    (float64 operates directly), matching libm call-for-call;
///  - bool -> numeric casts go through a 0/1 uint8, numeric -> bool is
///    `x != From{}`.
///
/// Dispatchers invoke `sink` with the chosen lane functor so each call site
/// keeps its own loop shape (broadcast strides, scalar forms, vector
/// blocks) while the per-lane expression cannot drift between tiers.

/// \brief Calls `sink(f)` with `f : (T, T) -> T` for the arithmetic op.
template <typename T, typename Sink>
Status WithBinaryLane(BinaryOpKind op, Sink&& sink) {
  switch (op) {
    case BinaryOpKind::kAdd:
      sink([](T x, T y) { return static_cast<T>(x + y); });
      return Status::OK();
    case BinaryOpKind::kSub:
      sink([](T x, T y) { return static_cast<T>(x - y); });
      return Status::OK();
    case BinaryOpKind::kMul:
      sink([](T x, T y) { return static_cast<T>(x * y); });
      return Status::OK();
    case BinaryOpKind::kDiv:
      if constexpr (std::is_integral_v<T>) {
        sink([](T x, T y) { return y == 0 ? T{0} : static_cast<T>(x / y); });
      } else {
        sink([](T x, T y) { return static_cast<T>(x / y); });
      }
      return Status::OK();
    case BinaryOpKind::kMod:
      if constexpr (std::is_integral_v<T>) {
        sink([](T x, T y) { return y == 0 ? T{0} : static_cast<T>(x % y); });
      } else {
        sink([](T x, T y) {
          return static_cast<T>(
              std::fmod(static_cast<double>(x), static_cast<double>(y)));
        });
      }
      return Status::OK();
    case BinaryOpKind::kMin:
      sink([](T x, T y) { return x < y ? x : y; });
      return Status::OK();
    case BinaryOpKind::kMax:
      sink([](T x, T y) { return x > y ? x : y; });
      return Status::OK();
  }
  return Status::Internal("unknown binary op");
}

/// \brief Calls `sink(f)` with `f : (T, T) -> bool` for the comparison.
template <typename T, typename Sink>
Status WithCompareLane(CompareOpKind op, Sink&& sink) {
  switch (op) {
    case CompareOpKind::kEq:
      sink([](T x, T y) { return x == y; });
      return Status::OK();
    case CompareOpKind::kNe:
      sink([](T x, T y) { return x != y; });
      return Status::OK();
    case CompareOpKind::kLt:
      sink([](T x, T y) { return x < y; });
      return Status::OK();
    case CompareOpKind::kLe:
      sink([](T x, T y) { return x <= y; });
      return Status::OK();
    case CompareOpKind::kGt:
      sink([](T x, T y) { return x > y; });
      return Status::OK();
    case CompareOpKind::kGe:
      sink([](T x, T y) { return x >= y; });
      return Status::OK();
  }
  return Status::Internal("unknown compare op");
}

/// \brief Calls `sink(f)` with `f : (bool, bool) -> bool` for the combinator.
template <typename Sink>
Status WithLogicalLane(LogicalOpKind op, Sink&& sink) {
  switch (op) {
    case LogicalOpKind::kAnd:
      sink([](bool x, bool y) { return x && y; });
      return Status::OK();
    case LogicalOpKind::kOr:
      sink([](bool x, bool y) { return x || y; });
      return Status::OK();
    case LogicalOpKind::kXor:
      sink([](bool x, bool y) { return x != y; });
      return Status::OK();
  }
  return Status::Internal("unknown logical op");
}

/// \brief Boolean negation (UnaryOpKind::kNot, dispatched before the
/// numeric unaries at every call site).
constexpr bool NotLane(bool x) { return !x; }

/// \brief Calls `sink(f)` with `f : T -> T` for the numeric unary, already
/// composed with the evaluate-through-double-and-narrow rule. kNot is not a
/// numeric unary and reports Internal.
template <typename T, typename Sink>
Status WithUnaryLane(UnaryOpKind op, Sink&& sink) {
  const auto lift = [&sink](auto f) {
    sink([f](T x) {
      if constexpr (std::is_same_v<T, double>) {
        return f(x);
      } else {
        return static_cast<T>(f(static_cast<double>(x)));
      }
    });
  };
  switch (op) {
    case UnaryOpKind::kNeg:
      lift([](double x) { return -x; });
      return Status::OK();
    case UnaryOpKind::kAbs:
      lift([](double x) { return std::abs(x); });
      return Status::OK();
    case UnaryOpKind::kExp:
      lift([](double x) { return std::exp(x); });
      return Status::OK();
    case UnaryOpKind::kLog:
      lift([](double x) { return std::log(x); });
      return Status::OK();
    case UnaryOpKind::kSqrt:
      lift([](double x) { return std::sqrt(x); });
      return Status::OK();
    case UnaryOpKind::kSigmoid:
      lift([](double x) { return 1.0 / (1.0 + std::exp(-x)); });
      return Status::OK();
    case UnaryOpKind::kTanh:
      lift([](double x) { return std::tanh(x); });
      return Status::OK();
    case UnaryOpKind::kRelu:
      lift([](double x) { return x > 0 ? x : 0; });
      return Status::OK();
    case UnaryOpKind::kNot:
      return Status::Internal("kNot dispatched as numeric unary");
  }
  return Status::Internal("unknown unary op");
}

/// \brief One lane of Cast: bool sources via 0/1 uint8, bool targets via
/// `x != From{}`, everything else a plain static_cast.
template <typename From, typename To>
constexpr To CastLane(From x) {
  if constexpr (std::is_same_v<From, bool>) {
    const uint8_t v = x ? 1 : 0;
    return static_cast<To>(v);
  } else if constexpr (std::is_same_v<To, bool>) {
    return x != From{};
  } else {
    return static_cast<To>(x);
  }
}

}  // namespace tqp::kernels::lane

#endif  // TQP_KERNELS_LANE_OPS_H_
