#include "kernels/hash.h"

#include <cstring>

namespace tqp::kernels {

namespace {

inline uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

template <typename T>
void HashFixed(const Tensor& a, int64_t* out) {
  const T* p = a.data<T>();
  for (int64_t i = 0; i < a.rows(); ++i) {
    uint64_t bits = 0;
    // Type-pun through a fixed-width integer of the value's size.
    if constexpr (sizeof(T) == 8) {
      uint64_t raw;
      std::memcpy(&raw, &p[i], 8);
      bits = raw;
    } else if constexpr (sizeof(T) == 4) {
      uint32_t raw;
      std::memcpy(&raw, &p[i], 4);
      bits = raw;
    } else {
      bits = static_cast<uint64_t>(static_cast<uint8_t>(p[i]));
    }
    out[i] = static_cast<int64_t>(Mix64(bits));
  }
}

void HashBytesRows(const Tensor& a, int64_t* out) {
  const uint8_t* p = a.data<uint8_t>();
  const int64_t m = a.cols();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const uint8_t* row = p + i * m;
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (int64_t j = 0; j < m; ++j) {
      h ^= row[j];
      h *= 1099511628211ull;  // FNV prime
    }
    out[i] = static_cast<int64_t>(h);
  }
}

}  // namespace

Result<Tensor> HashRows(const Tensor& a) {
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kInt64, a.rows(), 1, a.device()));
  int64_t* po = out.mutable_data<int64_t>();
  switch (a.dtype()) {
    case DType::kUInt8:
      HashBytesRows(a, po);
      return out;
    case DType::kBool:
      HashFixed<bool>(a, po);
      return out;
    case DType::kInt32:
      HashFixed<int32_t>(a, po);
      return out;
    case DType::kInt64:
      HashFixed<int64_t>(a, po);
      return out;
    case DType::kFloat32:
      HashFixed<float>(a, po);
      return out;
    case DType::kFloat64:
      HashFixed<double>(a, po);
      return out;
  }
  return Status::TypeError("HashRows: unsupported dtype");
}

Result<Tensor> HashCombine(const Tensor& h, const Tensor& a) {
  if (h.dtype() != DType::kInt64 || h.cols() != 1 || h.rows() != a.rows()) {
    return Status::Invalid("HashCombine: h must be int64 (n x 1) matching a");
  }
  TQP_ASSIGN_OR_RETURN(Tensor ha, HashRows(a));
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kInt64, h.rows(), 1, h.device()));
  const int64_t* p1 = h.data<int64_t>();
  const int64_t* p2 = ha.data<int64_t>();
  int64_t* po = out.mutable_data<int64_t>();
  for (int64_t i = 0; i < h.rows(); ++i) {
    const uint64_t combined = static_cast<uint64_t>(p1[i]) * 31 +
                              static_cast<uint64_t>(p2[i]);
    po[i] = static_cast<int64_t>(Mix64(combined));
  }
  return out;
}

}  // namespace tqp::kernels
