#ifndef TQP_KERNELS_MATMUL_H_
#define TQP_KERNELS_MATMUL_H_

#include "common/result.h"
#include "tensor/tensor.h"

namespace tqp::kernels {

/// \brief Dense matrix multiply: (n x k) @ (k x m) -> (n x m).
/// float32/float64 only (ML scoring path; Hummingbird GEMM strategy).
Result<Tensor> MatMul(const Tensor& a, const Tensor& b);

/// \brief out = a @ b + bias where bias is (1 x m), broadcast over rows.
Result<Tensor> MatMulAddBias(const Tensor& a, const Tensor& b, const Tensor& bias);

/// \brief Row-gathered embedding lookup: table is (v x d), ids int64 (n x k);
/// the result (n x d) sums the k embeddings per row (EmbeddingBag "sum" mode,
/// the tokenized-text path of the sentiment model).
Result<Tensor> EmbeddingBagSum(const Tensor& table, const Tensor& ids);

}  // namespace tqp::kernels

#endif  // TQP_KERNELS_MATMUL_H_
