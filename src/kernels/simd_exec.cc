#include "kernels/simd_exec.h"

#include <atomic>

#define TQP_SIMD_IMPL_NS portable_impl
#include "kernels/simd_exec_impl.h"
#undef TQP_SIMD_IMPL_NS

// The AVX2 TU exists only on x86-64 builds that did not opt out; everywhere
// else the portable implementation is the sole tier and ActiveLevel() can
// never report kAvx2.
#if defined(__x86_64__) && !defined(TQP_DISABLE_AVX2)
#define TQP_HAVE_AVX2_TU 1
#endif

namespace tqp::kernels::simd {

#ifdef TQP_HAVE_AVX2_TU
// Defined in simd_exec_avx2.cc (compiled -mavx2; reached only behind the
// CPUID check below).
namespace avx2_impl {
Status BinBinDispatch(DType dtype, BinaryOpKind op1, BinaryOpKind op2,
                      bool t_left, LaneRef a, LaneRef b, LaneRef c,
                      uint8_t* dst, int64_t n);
Status CmpAndDispatch(DType in_dtype, CompareOpKind cmp, LaneRef a, LaneRef b,
                      LaneRef c, uint8_t* dst, int64_t n);
Status CastCmpDispatch(DType from, DType to, CompareOpKind cmp, bool t_left,
                       LaneRef a, LaneRef b, uint8_t* dst, int64_t n);
int64_t SelVecCompressImpl(const uint8_t* mask, int64_t n, int64_t* sel);
}  // namespace avx2_impl
#endif

namespace {

std::atomic<bool> g_force_scalar{false};

SimdLevel DetectLevel() {
#ifdef TQP_HAVE_AVX2_TU
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdLevel ActiveLevel() {
  static const SimdLevel detected = DetectLevel();
  if (g_force_scalar.load(std::memory_order_relaxed)) {
    return SimdLevel::kScalar;
  }
  return detected;
}

void ForceScalarForTesting(bool on) {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

Status FusedBinBin(DType dtype, BinaryOpKind op1, BinaryOpKind op2,
                   bool t_left, LaneRef a, LaneRef b, LaneRef c, uint8_t* dst,
                   int64_t n) {
#ifdef TQP_HAVE_AVX2_TU
  if (ActiveLevel() == SimdLevel::kAvx2) {
    return avx2_impl::BinBinDispatch(dtype, op1, op2, t_left, a, b, c, dst, n);
  }
#endif
  return portable_impl::BinBinDispatch(dtype, op1, op2, t_left, a, b, c, dst,
                                       n);
}

bool SupportsBinBin(DType dtype, BinaryOpKind op1, BinaryOpKind op2) {
  const auto op_ok = [](BinaryOpKind k) {
    return k == BinaryOpKind::kAdd || k == BinaryOpKind::kSub ||
           k == BinaryOpKind::kMul;
  };
  const bool dtype_ok = dtype == DType::kInt32 || dtype == DType::kInt64 ||
                        dtype == DType::kFloat32 || dtype == DType::kFloat64;
  return dtype_ok && op_ok(op1) && op_ok(op2);
}

Status FusedCmpAnd(DType in_dtype, CompareOpKind cmp, LaneRef a, LaneRef b,
                   LaneRef c, uint8_t* dst, int64_t n) {
#ifdef TQP_HAVE_AVX2_TU
  if (ActiveLevel() == SimdLevel::kAvx2) {
    return avx2_impl::CmpAndDispatch(in_dtype, cmp, a, b, c, dst, n);
  }
#endif
  return portable_impl::CmpAndDispatch(in_dtype, cmp, a, b, c, dst, n);
}

bool SupportsCmpAnd(DType in_dtype) {
  return in_dtype == DType::kUInt8 || in_dtype == DType::kInt32 ||
         in_dtype == DType::kInt64 || in_dtype == DType::kFloat32 ||
         in_dtype == DType::kFloat64;
}

Status FusedCastCmp(DType from, DType to, CompareOpKind cmp, bool t_left,
                    LaneRef a, LaneRef b, uint8_t* dst, int64_t n) {
#ifdef TQP_HAVE_AVX2_TU
  if (ActiveLevel() == SimdLevel::kAvx2) {
    return avx2_impl::CastCmpDispatch(from, to, cmp, t_left, a, b, dst, n);
  }
#endif
  return portable_impl::CastCmpDispatch(from, to, cmp, t_left, a, b, dst, n);
}

bool SupportsCastCmp(DType from, DType to) {
  const auto numeric = [](DType t) {
    return t == DType::kInt32 || t == DType::kInt64 || t == DType::kFloat32 ||
           t == DType::kFloat64;
  };
  return numeric(from) && numeric(to);
}

int64_t SelVecCompress(const uint8_t* mask, int64_t n, int64_t* sel) {
#ifdef TQP_HAVE_AVX2_TU
  if (ActiveLevel() == SimdLevel::kAvx2) {
    return avx2_impl::SelVecCompressImpl(mask, n, sel);
  }
#endif
  return portable_impl::SelVecCompressImpl(mask, n, sel);
}

}  // namespace tqp::kernels::simd
