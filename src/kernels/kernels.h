#ifndef TQP_KERNELS_KERNELS_H_
#define TQP_KERNELS_KERNELS_H_

/// \file Umbrella header for the tensor kernel library (the PyTorch-analog
/// layer of the TQP reproduction; see DESIGN.md §1).

#include "kernels/elementwise.h"   // IWYU pragma: export
#include "kernels/hash.h"          // IWYU pragma: export
#include "kernels/kernel_types.h"  // IWYU pragma: export
#include "kernels/matmul.h"        // IWYU pragma: export
#include "kernels/reduce.h"        // IWYU pragma: export
#include "kernels/selection.h"     // IWYU pragma: export
#include "kernels/sort.h"          // IWYU pragma: export
#include "kernels/strings.h"       // IWYU pragma: export

#endif  // TQP_KERNELS_KERNELS_H_
