#include "kernels/matmul.h"

#include "kernels/elementwise.h"

namespace tqp::kernels {

namespace {

template <typename T>
void MatMulTyped(const Tensor& a, const Tensor& b, Tensor* out) {
  const T* pa = a.data<T>();
  const T* pb = b.data<T>();
  T* po = out->mutable_data<T>();
  const int64_t n = a.rows();
  const int64_t k = a.cols();
  const int64_t m = b.cols();
  // i-k-j loop order: streams through b row-wise for cache friendliness.
  for (int64_t i = 0; i < n; ++i) {
    T* orow = po + i * m;
    for (int64_t j = 0; j < m; ++j) orow[j] = T{0};
    for (int64_t kk = 0; kk < k; ++kk) {
      const T av = pa[i * k + kk];
      if (av == T{0}) continue;
      const T* brow = pb + kk * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace

Result<Tensor> MatMul(const Tensor& a, const Tensor& b) {
  if (!IsFloatingPoint(a.dtype()) || a.dtype() != b.dtype()) {
    return Status::TypeError("MatMul requires matching float tensors");
  }
  if (a.cols() != b.rows()) {
    return Status::Invalid("MatMul: inner dimensions differ (" +
                           std::to_string(a.cols()) + " vs " +
                           std::to_string(b.rows()) + ")");
  }
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(a.dtype(), a.rows(), b.cols(), a.device()));
  if (a.dtype() == DType::kFloat32) {
    MatMulTyped<float>(a, b, &out);
  } else {
    MatMulTyped<double>(a, b, &out);
  }
  return out;
}

Result<Tensor> MatMulAddBias(const Tensor& a, const Tensor& b, const Tensor& bias) {
  TQP_ASSIGN_OR_RETURN(Tensor prod, MatMul(a, b));
  if (bias.rows() != 1 || bias.cols() != prod.cols()) {
    return Status::Invalid("MatMulAddBias: bias must be (1 x m)");
  }
  return BinaryOp(BinaryOpKind::kAdd, prod, bias);
}

Result<Tensor> EmbeddingBagSum(const Tensor& table, const Tensor& ids) {
  if (!IsFloatingPoint(table.dtype())) {
    return Status::TypeError("EmbeddingBagSum: table must be float");
  }
  if (ids.dtype() != DType::kInt64) {
    return Status::TypeError("EmbeddingBagSum: ids must be int64");
  }
  TQP_ASSIGN_OR_RETURN(Tensor tbl, Cast(table, DType::kFloat64));
  TQP_ASSIGN_OR_RETURN(
      Tensor out, Tensor::Full(DType::kFloat64, ids.rows(), table.cols(), 0.0,
                               table.device()));
  const double* pt = tbl.data<double>();
  const int64_t* pi = ids.data<int64_t>();
  double* po = out.mutable_data<double>();
  const int64_t d = table.cols();
  for (int64_t i = 0; i < ids.rows(); ++i) {
    double* orow = po + i * d;
    for (int64_t j = 0; j < ids.cols(); ++j) {
      const int64_t id = pi[i * ids.cols() + j];
      if (id < 0) continue;  // negative ids are padding
      if (id >= table.rows()) {
        return Status::IndexError("EmbeddingBagSum: id out of range");
      }
      const double* trow = pt + id * d;
      for (int64_t c = 0; c < d; ++c) orow[c] += trow[c];
    }
  }
  return Cast(out, table.dtype());
}

}  // namespace tqp::kernels
