#ifndef TQP_KERNELS_EXPR_EXEC_H_
#define TQP_KERNELS_EXPR_EXEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "compile/expr_program.h"
#include "compile/expr_simd.h"
#include "tensor/tensor.h"

namespace tqp::kernels {

/// Vectorized single-pass interpreter for compiled ExprPrograms: executes
/// one fused run over one morsel in a single sweep. Every instruction is one
/// typed, contiguous, branch-free loop over the morsel's lanes (written so
/// compilers auto-vectorize), intermediates live in a handful of
/// BufferPool-recycled register buffers sized to the morsel, and only run
/// *outputs* allocate tensors. Per-lane arithmetic mirrors the elementwise
/// kernels exactly (same promotion casts, same operations, same libm calls),
/// so results are bit-identical to node-at-a-time evaluation.

/// \brief Reusable register arena for one execution slot (one worker's
/// morsel loop). Each physical register slot is a raw block drawn lazily
/// from the process BufferPool, sized to the lanes its instruction actually
/// writes (a post-filter register holds survivor lanes, not a full morsel)
/// and grown — never shrunk — across morsels, so steady-state morsels
/// allocate nothing. Blocks return to the pool on destruction.
class ExprScratch {
 public:
  ExprScratch() = default;
  ~ExprScratch() { Release(); }
  ExprScratch(ExprScratch&& other) noexcept { *this = std::move(other); }
  ExprScratch& operator=(ExprScratch&& other) noexcept {
    if (this != &other) {
      Release();
      slots_ = std::move(other.slots_);
      other.slots_.clear();
      dom_len = std::move(other.dom_len);
      ptr = std::move(other.ptr);
      materialized = std::move(other.materialized);
    }
    return *this;
  }
  ExprScratch(const ExprScratch&) = delete;
  ExprScratch& operator=(const ExprScratch&) = delete;

  /// \brief Returns slot `i` with capacity for at least `bytes` (contents
  /// are not preserved across growth), or null on exhaustion.
  uint8_t* EnsureSlot(int i, int64_t bytes);

  /// \brief Returns every block to the BufferPool.
  void Release();

  /// Per-invocation interpreter bookkeeping (domain lengths, register byte
  /// pointers, output tensors), owned here so the capacity — sized by the
  /// immutable program, not the data — survives across morsels instead of
  /// being heap-allocated per invocation. RunExprProgram resets the contents
  /// on entry and drops tensor references before returning.
  std::vector<int64_t> dom_len;
  std::vector<const uint8_t*> ptr;
  std::vector<Tensor> materialized;

 private:
  struct Slot {
    uint8_t* data = nullptr;
    int64_t alloc = 0;
  };
  std::vector<Slot> slots_;
};

/// \brief Per-invocation execution-tier accounting: how many instructions
/// ran through vector kernels vs the interpreter (fused pairs count both of
/// their instructions as SIMD).
struct ExprRunStats {
  int64_t simd_instrs = 0;
  int64_t interp_instrs = 0;
};

/// \brief Executes `program` over one morsel. `sources[i]` binds
/// `program.source_nodes()[i]` (dtype and broadcast-ness must match what the
/// run was compiled against — the caller recompiles on signature change).
/// `base_offset` is the morsel's global row offset in the driver domain
/// (domain 0), consumed by kIota. `outputs` receives one tensor per
/// `program.output_nodes()` entry, freshly allocated on `device`.
///
/// When `simd` is non-null (the kSimd backend; must be the plan built for
/// this exact program), instruction positions it marks execute through the
/// fused vector kernels of kernels/simd_exec.h and everything else falls
/// back, instruction by instruction, to the interpreter — results are
/// bit-identical either way. `stats`, when non-null, accumulates the
/// per-tier instruction counts.
Status RunExprProgram(const ExprProgram& program,
                      const std::vector<Tensor>& sources, int64_t base_offset,
                      DeviceKind device, ExprScratch* scratch,
                      std::vector<Tensor>* outputs,
                      const ExprSimdPlan* simd = nullptr,
                      ExprRunStats* stats = nullptr);

}  // namespace tqp::kernels

#endif  // TQP_KERNELS_EXPR_EXEC_H_
