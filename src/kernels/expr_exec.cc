#include "kernels/expr_exec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "kernels/kernel_types.h"
#include "kernels/lane_ops.h"
#include "kernels/simd_exec.h"
#include "tensor/buffer_pool.h"

namespace tqp::kernels {

uint8_t* ExprScratch::EnsureSlot(int i, int64_t bytes) {
  if (static_cast<size_t>(i) >= slots_.size()) {
    slots_.resize(static_cast<size_t>(i) + 1);
  }
  Slot& slot = slots_[static_cast<size_t>(i)];
  if (slot.alloc >= bytes && slot.data != nullptr) return slot.data;
  if (slot.data != nullptr) {
    BufferPool::Global()->Release(slot.data, slot.alloc);
    slot.data = nullptr;
    slot.alloc = 0;
  }
  int64_t alloc = 0;
  uint8_t* mem =
      BufferPool::Global()->Acquire(std::max<int64_t>(bytes, 64), &alloc);
  if (mem == nullptr) return nullptr;
  slot.data = mem;
  slot.alloc = alloc;
  return mem;
}

void ExprScratch::Release() {
  for (Slot& slot : slots_) {
    if (slot.data != nullptr) {
      BufferPool::Global()->Release(slot.data, slot.alloc);
    }
  }
  slots_.clear();
}

namespace {

// Per-lane arithmetic comes from kernels/lane_ops.h — the one definition
// shared with kernels/elementwise.cc and the SIMD tier — so the fused
// result is bit-identical to node-at-a-time evaluation by construction;
// this file only owns the scalar-broadcast loop forms.

template <typename T, typename Out, typename F>
inline void LoopVV(const T* a, const T* b, Out* o, int64_t n, F f) {
  for (int64_t i = 0; i < n; ++i) o[i] = f(a[i], b[i]);
}
template <typename T, typename Out, typename F>
inline void LoopVS(const T* a, T b, Out* o, int64_t n, F f) {
  for (int64_t i = 0; i < n; ++i) o[i] = f(a[i], b);
}
template <typename T, typename Out, typename F>
inline void LoopSV(T a, const T* b, Out* o, int64_t n, F f) {
  for (int64_t i = 0; i < n; ++i) o[i] = f(a, b[i]);
}
template <typename T, typename Out, typename F>
inline void LoopSS(T a, T b, Out* o, int64_t n, F f) {
  for (int64_t i = 0; i < n; ++i) o[i] = f(a, b);
}

template <typename T, typename Out, typename F>
inline void BinForm(const T* a, bool as, const T* b, bool bs, Out* o,
                    int64_t n, F f) {
  if (as && bs) {
    LoopSS(a[0], b[0], o, n, f);
  } else if (as) {
    LoopSV(a[0], b, o, n, f);
  } else if (bs) {
    LoopVS(a, b[0], o, n, f);
  } else {
    LoopVV(a, b, o, n, f);
  }
}

template <typename T>
Status BinaryExec(BinaryOpKind op, const T* a, bool as, const T* b, bool bs,
                  T* o, int64_t n) {
  return lane::WithBinaryLane<T>(
      op, [&](auto f) { BinForm(a, as, b, bs, o, n, f); });
}

template <typename T>
Status CompareExec(CompareOpKind op, const T* a, bool as, const T* b, bool bs,
                   bool* o, int64_t n) {
  return lane::WithCompareLane<T>(
      op, [&](auto f) { BinForm(a, as, b, bs, o, n, f); });
}

Status LogicalExec(LogicalOpKind op, const bool* a, bool as, const bool* b,
                   bool bs, bool* o, int64_t n) {
  return lane::WithLogicalLane(
      op, [&](auto f) { BinForm(a, as, b, bs, o, n, f); });
}

template <typename T, typename F>
inline void UnForm(const T* a, bool as, T* o, int64_t n, F f) {
  if (as) {
    const T x = a[0];
    for (int64_t i = 0; i < n; ++i) o[i] = f(x);
  } else {
    for (int64_t i = 0; i < n; ++i) o[i] = f(a[i]);
  }
}

template <typename T>
Status UnaryExec(UnaryOpKind op, const T* a, bool as, T* o, int64_t n) {
  return lane::WithUnaryLane<T>(op,
                                [&](auto f) { UnForm(a, as, o, n, f); });
}

template <typename From, typename To>
void CastLanes(const From* a, bool as, To* o, int64_t n) {
  if (as) {
    const To v = lane::CastLane<From, To>(a[0]);
    for (int64_t i = 0; i < n; ++i) o[i] = v;
  } else {
    for (int64_t i = 0; i < n; ++i) o[i] = lane::CastLane<From, To>(a[i]);
  }
}

template <typename From>
Status CastFromExec(DType to, const uint8_t* a, bool as, uint8_t* o, int64_t n) {
  const From* pa = reinterpret_cast<const From*>(a);
  switch (to) {
    case DType::kBool:
      CastLanes<From, bool>(pa, as, reinterpret_cast<bool*>(o), n);
      return Status::OK();
    case DType::kUInt8:
      CastLanes<From, uint8_t>(pa, as, o, n);
      return Status::OK();
    case DType::kInt32:
      CastLanes<From, int32_t>(pa, as, reinterpret_cast<int32_t*>(o), n);
      return Status::OK();
    case DType::kInt64:
      CastLanes<From, int64_t>(pa, as, reinterpret_cast<int64_t*>(o), n);
      return Status::OK();
    case DType::kFloat32:
      CastLanes<From, float>(pa, as, reinterpret_cast<float*>(o), n);
      return Status::OK();
    case DType::kFloat64:
      CastLanes<From, double>(pa, as, reinterpret_cast<double*>(o), n);
      return Status::OK();
  }
  return Status::Internal("expr exec: unknown cast target");
}

Status CastExec(DType from, DType to, const uint8_t* a, bool as, uint8_t* o,
                int64_t n) {
  switch (from) {
    case DType::kBool:
      return CastFromExec<bool>(to, a, as, o, n);
    case DType::kUInt8:
      return CastFromExec<uint8_t>(to, a, as, o, n);
    case DType::kInt32:
      return CastFromExec<int32_t>(to, a, as, o, n);
    case DType::kInt64:
      return CastFromExec<int64_t>(to, a, as, o, n);
    case DType::kFloat32:
      return CastFromExec<float>(to, a, as, o, n);
    case DType::kFloat64:
      return CastFromExec<double>(to, a, as, o, n);
  }
  return Status::Internal("expr exec: unknown cast source");
}

template <typename T>
void WhereLanes(const bool* c, bool cs, const T* a, bool as, const T* b,
                bool bs, T* o, int64_t n) {
  const int64_t sc = cs ? 0 : 1;
  const int64_t sa = as ? 0 : 1;
  const int64_t sb = bs ? 0 : 1;
  for (int64_t i = 0; i < n; ++i) {
    o[i] = c[i * sc] ? a[i * sa] : b[i * sb];
  }
}

template <typename T>
Status GatherSelLanes(const int64_t* sel, int64_t k, const T* data,
                      int64_t data_len, T* o) {
  for (int64_t j = 0; j < k; ++j) {
    const int64_t r = sel[j];
    if (r < 0 || r >= data_len) {
      return Status::IndexError("expr exec: selection index " +
                                std::to_string(r) + " out of range [0, " +
                                std::to_string(data_len) + ")");
    }
    o[j] = data[r];
  }
  return Status::OK();
}

}  // namespace

Status RunExprProgram(const ExprProgram& program,
                      const std::vector<Tensor>& sources, int64_t base_offset,
                      DeviceKind device, ExprScratch* scratch,
                      std::vector<Tensor>* outputs, const ExprSimdPlan* simd,
                      ExprRunStats* stats) {
  const std::vector<ExprReg>& regs = program.regs();
  if (sources.size() != program.source_nodes().size()) {
    return Status::Internal("expr exec: source arity mismatch");
  }

  // Bind source lengths into the domain table; every vector source of one
  // domain must agree (the compiler's cardinality claim, checked here).
  std::vector<int64_t>& dom_len = scratch->dom_len;
  dom_len.assign(static_cast<size_t>(program.num_domains()), -1);
  for (size_t r = 0; r < regs.size(); ++r) {
    const ExprReg& reg = regs[r];
    if (reg.source < 0) continue;
    const Tensor& t = sources[static_cast<size_t>(reg.source)];
    if (!t.defined()) {
      return Status::Internal("expr exec: undefined source tensor");
    }
    if (t.dtype() != reg.dtype) {
      return Status::Internal("expr exec: source dtype drifted from signature");
    }
    if (reg.scalar) {
      if (t.numel() != 1) {
        return Status::Internal("expr exec: broadcast source no longer 1x1");
      }
    } else {
      if (t.cols() != 1) {
        return Status::Internal("expr exec: vector source not single-column");
      }
      int64_t& len = dom_len[static_cast<size_t>(reg.dom)];
      if (len < 0) {
        len = t.rows();
      } else if (len != t.rows()) {
        return Status::Invalid("expr exec: fused run sources disagree on rows");
      }
    }
  }

  // Register byte pointers: constants and sources bind read-only; temps and
  // outputs resolve at their defining write (slots size lazily to the lanes
  // actually written — a post-filter register holds survivors, not a full
  // morsel).
  std::vector<const uint8_t*>& ptr = scratch->ptr;
  ptr.assign(regs.size(), nullptr);
  std::vector<Tensor>& materialized = scratch->materialized;
  materialized.clear();
  materialized.resize(regs.size());
  for (size_t r = 0; r < regs.size(); ++r) {
    const ExprReg& reg = regs[r];
    if (reg.konst >= 0) {
      ptr[r] = static_cast<const uint8_t*>(
          program.constants()[static_cast<size_t>(reg.konst)].raw_data());
    } else if (reg.source >= 0) {
      ptr[r] = static_cast<const uint8_t*>(
          sources[static_cast<size_t>(reg.source)].raw_data());
    }
  }

  const auto scalar_of = [&](int r) {
    return regs[static_cast<size_t>(r)].scalar;
  };
  const auto check_lanes = [&](int r, int64_t n) {
    const ExprReg& reg = regs[static_cast<size_t>(r)];
    if (reg.scalar) return true;
    return dom_len[static_cast<size_t>(reg.dom)] == n;
  };
  // Destination bytes for one non-selection instruction: run outputs
  // materialize as fresh tensors, temps draw their physical slot.
  const auto alloc_dst = [&](const ExprInstr& ins, int64_t lanes,
                             uint8_t** out) -> Status {
    const ExprReg& dreg = regs[static_cast<size_t>(ins.dst)];
    if (dreg.output >= 0) {
      TQP_ASSIGN_OR_RETURN(Tensor t,
                           Tensor::Empty(dreg.dtype, lanes, 1, device));
      *out = static_cast<uint8_t*>(t.raw_mutable_data());
      materialized[static_cast<size_t>(ins.dst)] = std::move(t);
    } else {
      *out = scratch->EnsureSlot(dreg.slot, lanes * DTypeSize(dreg.dtype));
      if (*out == nullptr) {
        return Status::OutOfMemory("expr exec: register slot allocation");
      }
    }
    ptr[static_cast<size_t>(ins.dst)] = *out;
    return Status::OK();
  };
  const auto operand_ref = [&](int r) {
    return simd::LaneRef{ptr[static_cast<size_t>(r)],
                         regs[static_cast<size_t>(r)].scalar};
  };

  const std::vector<ExprInstr>& instrs = program.instrs();
  const bool with_simd = simd != nullptr && simd->steps.size() == instrs.size();
  for (size_t ii = 0; ii < instrs.size(); ++ii) {
    const ExprInstr& instr = instrs[ii];
    const int64_t n =
        instr.dom >= 0 ? dom_len[static_cast<size_t>(instr.dom)] : 1;
    if (n < 0) {
      return Status::Internal("expr exec: instruction over unbound domain");
    }
    const ExprReg& dreg = regs[static_cast<size_t>(instr.dst)];

    if (with_simd) {
      const ExprSimdStep& step = simd->steps[ii];
      if (step.kind == ExprSimdStepKind::kSelVec) {
        if (!check_lanes(instr.a, n)) {
          return Status::Invalid("expr exec: operand rows diverge in fused run");
        }
        // One-pass compress wants the destination up front, so size it to
        // the survivor upper bound (slots grow and never shrink; the lane
        // count of the defined domain is what downstream reads).
        uint8_t* block = scratch->EnsureSlot(dreg.slot, n * 8);
        if (block == nullptr) {
          return Status::OutOfMemory("expr exec: selection vector allocation");
        }
        ptr[static_cast<size_t>(instr.dst)] = block;
        const int64_t k =
            simd::SelVecCompress(ptr[static_cast<size_t>(instr.a)], n,
                                 reinterpret_cast<int64_t*>(block));
        dom_len[static_cast<size_t>(instr.out_dom)] = k;
        if (stats != nullptr) ++stats->simd_instrs;
        continue;
      }
      if (step.kind != ExprSimdStepKind::kInterp) {
        // Fused pair: this instruction's temp never materializes; the
        // consumer's destination is written directly by one vector kernel.
        const ExprInstr& next = instrs[ii + 1];
        for (int op : {instr.a, instr.b, next.a, next.b}) {
          if (op >= 0 && !check_lanes(op, n)) {
            return Status::Invalid(
                "expr exec: operand rows diverge in fused run");
          }
        }
        uint8_t* dq = nullptr;
        TQP_RETURN_NOT_OK(alloc_dst(next, n, &dq));
        const int other = step.t_left ? next.b : next.a;
        switch (step.kind) {
          case ExprSimdStepKind::kBinBin:
            TQP_RETURN_NOT_OK(simd::FusedBinBin(
                instr.dtype, static_cast<BinaryOpKind>(instr.kind),
                static_cast<BinaryOpKind>(next.kind), step.t_left,
                operand_ref(instr.a), operand_ref(instr.b),
                operand_ref(other), dq, n));
            break;
          case ExprSimdStepKind::kCmpAnd:
            TQP_RETURN_NOT_OK(simd::FusedCmpAnd(
                instr.in_dtype, static_cast<CompareOpKind>(instr.kind),
                operand_ref(instr.a), operand_ref(instr.b),
                operand_ref(other), dq, n));
            break;
          case ExprSimdStepKind::kCastCmp:
            TQP_RETURN_NOT_OK(simd::FusedCastCmp(
                instr.in_dtype, instr.dtype,
                static_cast<CompareOpKind>(next.kind), step.t_left,
                operand_ref(instr.a), operand_ref(other), dq, n));
            break;
          default:
            return Status::Internal("expr exec: malformed simd step");
        }
        if (stats != nullptr) stats->simd_instrs += 2;
        ++ii;  // the consumer executed inside the fused kernel
        continue;
      }
    }

    uint8_t* dst = nullptr;
    if (instr.code == ExprOpCode::kSelVec) {
      // Sized inside the case: the selection vector holds survivor lanes,
      // counted first exactly as kernels::Nonzero does.
    } else {
      TQP_RETURN_NOT_OK(alloc_dst(instr, n, &dst));
    }
    // Positional lane semantics require equal lengths on every vector
    // operand (the kernels would raise a broadcast error here too).
    for (int op : {instr.a, instr.b, instr.c}) {
      if (op >= 0 && instr.code != ExprOpCode::kGatherSel &&
          !check_lanes(op, n)) {
        return Status::Invalid("expr exec: operand rows diverge in fused run");
      }
    }
    const uint8_t* pa =
        instr.a >= 0 ? ptr[static_cast<size_t>(instr.a)] : nullptr;
    const uint8_t* pb =
        instr.b >= 0 ? ptr[static_cast<size_t>(instr.b)] : nullptr;
    const uint8_t* pc =
        instr.c >= 0 ? ptr[static_cast<size_t>(instr.c)] : nullptr;
    switch (instr.code) {
      case ExprOpCode::kBinary: {
        const auto kind = static_cast<BinaryOpKind>(instr.kind);
        const bool as = scalar_of(instr.a);
        const bool bs = scalar_of(instr.b);
        switch (instr.dtype) {
          case DType::kInt32:
            TQP_RETURN_NOT_OK(BinaryExec<int32_t>(
                kind, reinterpret_cast<const int32_t*>(pa), as,
                reinterpret_cast<const int32_t*>(pb), bs,
                reinterpret_cast<int32_t*>(dst), n));
            break;
          case DType::kInt64:
            TQP_RETURN_NOT_OK(BinaryExec<int64_t>(
                kind, reinterpret_cast<const int64_t*>(pa), as,
                reinterpret_cast<const int64_t*>(pb), bs,
                reinterpret_cast<int64_t*>(dst), n));
            break;
          case DType::kFloat32:
            TQP_RETURN_NOT_OK(BinaryExec<float>(
                kind, reinterpret_cast<const float*>(pa), as,
                reinterpret_cast<const float*>(pb), bs,
                reinterpret_cast<float*>(dst), n));
            break;
          case DType::kFloat64:
            TQP_RETURN_NOT_OK(BinaryExec<double>(
                kind, reinterpret_cast<const double*>(pa), as,
                reinterpret_cast<const double*>(pb), bs,
                reinterpret_cast<double*>(dst), n));
            break;
          default:
            return Status::Internal("expr exec: binary over unsupported dtype");
        }
        break;
      }
      case ExprOpCode::kCompare: {
        const auto kind = static_cast<CompareOpKind>(instr.kind);
        const bool as = scalar_of(instr.a);
        const bool bs = scalar_of(instr.b);
        bool* po = reinterpret_cast<bool*>(dst);
        switch (instr.in_dtype) {
          case DType::kUInt8:
            TQP_RETURN_NOT_OK(CompareExec<uint8_t>(kind, pa, as, pb, bs, po, n));
            break;
          case DType::kInt32:
            TQP_RETURN_NOT_OK(CompareExec<int32_t>(
                kind, reinterpret_cast<const int32_t*>(pa), as,
                reinterpret_cast<const int32_t*>(pb), bs, po, n));
            break;
          case DType::kInt64:
            TQP_RETURN_NOT_OK(CompareExec<int64_t>(
                kind, reinterpret_cast<const int64_t*>(pa), as,
                reinterpret_cast<const int64_t*>(pb), bs, po, n));
            break;
          case DType::kFloat32:
            TQP_RETURN_NOT_OK(CompareExec<float>(
                kind, reinterpret_cast<const float*>(pa), as,
                reinterpret_cast<const float*>(pb), bs, po, n));
            break;
          case DType::kFloat64:
            TQP_RETURN_NOT_OK(CompareExec<double>(
                kind, reinterpret_cast<const double*>(pa), as,
                reinterpret_cast<const double*>(pb), bs, po, n));
            break;
          default:
            return Status::Internal("expr exec: compare over unsupported dtype");
        }
        break;
      }
      case ExprOpCode::kLogical:
        TQP_RETURN_NOT_OK(LogicalExec(
            static_cast<LogicalOpKind>(instr.kind),
            reinterpret_cast<const bool*>(pa), scalar_of(instr.a),
            reinterpret_cast<const bool*>(pb), scalar_of(instr.b),
            reinterpret_cast<bool*>(dst), n));
        break;
      case ExprOpCode::kUnary: {
        const auto kind = static_cast<UnaryOpKind>(instr.kind);
        if (kind == UnaryOpKind::kNot) {
          UnForm(reinterpret_cast<const bool*>(pa), scalar_of(instr.a),
                 reinterpret_cast<bool*>(dst), n,
                 [](bool x) { return lane::NotLane(x); });
          break;
        }
        const bool as = scalar_of(instr.a);
        switch (instr.dtype) {
          case DType::kInt32:
            TQP_RETURN_NOT_OK(UnaryExec<int32_t>(
                kind, reinterpret_cast<const int32_t*>(pa), as,
                reinterpret_cast<int32_t*>(dst), n));
            break;
          case DType::kInt64:
            TQP_RETURN_NOT_OK(UnaryExec<int64_t>(
                kind, reinterpret_cast<const int64_t*>(pa), as,
                reinterpret_cast<int64_t*>(dst), n));
            break;
          case DType::kFloat32:
            TQP_RETURN_NOT_OK(UnaryExec<float>(
                kind, reinterpret_cast<const float*>(pa), as,
                reinterpret_cast<float*>(dst), n));
            break;
          case DType::kFloat64:
            TQP_RETURN_NOT_OK(UnaryExec<double>(
                kind, reinterpret_cast<const double*>(pa), as,
                reinterpret_cast<double*>(dst), n));
            break;
          default:
            return Status::Internal("expr exec: unary over unsupported dtype");
        }
        break;
      }
      case ExprOpCode::kCast:
        TQP_RETURN_NOT_OK(CastExec(instr.in_dtype, instr.dtype, pa,
                                   scalar_of(instr.a), dst, n));
        break;
      case ExprOpCode::kWhere: {
        const bool cs = scalar_of(instr.a);
        const bool as = scalar_of(instr.b);
        const bool bs = scalar_of(instr.c);
        const bool* pcnd = reinterpret_cast<const bool*>(pa);
        switch (instr.dtype) {
          case DType::kBool:
            WhereLanes(pcnd, cs, reinterpret_cast<const bool*>(pb), as,
                       reinterpret_cast<const bool*>(pc), bs,
                       reinterpret_cast<bool*>(dst), n);
            break;
          case DType::kUInt8:
            WhereLanes(pcnd, cs, pb, as, pc, bs, dst, n);
            break;
          case DType::kInt32:
            WhereLanes(pcnd, cs, reinterpret_cast<const int32_t*>(pb), as,
                       reinterpret_cast<const int32_t*>(pc), bs,
                       reinterpret_cast<int32_t*>(dst), n);
            break;
          case DType::kInt64:
            WhereLanes(pcnd, cs, reinterpret_cast<const int64_t*>(pb), as,
                       reinterpret_cast<const int64_t*>(pc), bs,
                       reinterpret_cast<int64_t*>(dst), n);
            break;
          case DType::kFloat32:
            WhereLanes(pcnd, cs, reinterpret_cast<const float*>(pb), as,
                       reinterpret_cast<const float*>(pc), bs,
                       reinterpret_cast<float*>(dst), n);
            break;
          case DType::kFloat64:
            WhereLanes(pcnd, cs, reinterpret_cast<const double*>(pb), as,
                       reinterpret_cast<const double*>(pc), bs,
                       reinterpret_cast<double*>(dst), n);
            break;
        }
        break;
      }
      case ExprOpCode::kSelVec: {
        const bool* pm = reinterpret_cast<const bool*>(pa);
        int64_t k = 0;
        for (int64_t i = 0; i < n; ++i) k += pm[i] ? 1 : 0;
        uint8_t* block = scratch->EnsureSlot(dreg.slot, k * 8);
        if (block == nullptr) {
          return Status::OutOfMemory("expr exec: selection vector allocation");
        }
        ptr[static_cast<size_t>(instr.dst)] = block;
        int64_t* sel = reinterpret_cast<int64_t*>(block);
        int64_t j = 0;
        for (int64_t i = 0; i < n; ++i) {
          if (pm[i]) sel[j++] = i;
        }
        dom_len[static_cast<size_t>(instr.out_dom)] = k;
        break;
      }
      case ExprOpCode::kGatherSel: {
        const int64_t* sel = reinterpret_cast<const int64_t*>(pa);
        const ExprReg& data = regs[static_cast<size_t>(instr.b)];
        const int64_t data_len =
            data.scalar ? 1 : dom_len[static_cast<size_t>(data.dom)];
        switch (DTypeSize(instr.dtype)) {
          case 1:
            TQP_RETURN_NOT_OK(GatherSelLanes(sel, n, pb, data_len, dst));
            break;
          case 4:
            TQP_RETURN_NOT_OK(GatherSelLanes(
                sel, n, reinterpret_cast<const uint32_t*>(pb), data_len,
                reinterpret_cast<uint32_t*>(dst)));
            break;
          case 8:
            TQP_RETURN_NOT_OK(GatherSelLanes(
                sel, n, reinterpret_cast<const uint64_t*>(pb), data_len,
                reinterpret_cast<uint64_t*>(dst)));
            break;
          default:
            return Status::Internal("expr exec: gather over unknown width");
        }
        break;
      }
      case ExprOpCode::kIota: {
        const int64_t* sel = reinterpret_cast<const int64_t*>(pa);
        int64_t* po = reinterpret_cast<int64_t*>(dst);
        for (int64_t j = 0; j < n; ++j) po[j] = sel[j] + base_offset;
        break;
      }
    }
    if (stats != nullptr) ++stats->interp_instrs;
  }

  outputs->clear();
  outputs->reserve(program.output_nodes().size());
  for (size_t k = 0; k < program.output_nodes().size(); ++k) {
    const int r = program.output_regs()[k];
    const ExprReg& reg = regs[static_cast<size_t>(r)];
    if (materialized[static_cast<size_t>(r)].defined()) {
      outputs->push_back(materialized[static_cast<size_t>(r)]);
    } else if (reg.source >= 0) {
      // Alias output (dtype-preserving cast of a bound value).
      outputs->push_back(sources[static_cast<size_t>(reg.source)]);
    } else if (reg.konst >= 0) {
      outputs->push_back(program.constants()[static_cast<size_t>(reg.konst)]);
    } else {
      return Status::Internal("expr exec: output register never materialized");
    }
  }
  // Outputs now hold their own references; don't pin the buffers past this
  // invocation through the reused scratch.
  materialized.clear();
  return Status::OK();
}

}  // namespace tqp::kernels
