#ifndef TQP_KERNELS_REDUCE_H_
#define TQP_KERNELS_REDUCE_H_

#include "common/result.h"
#include "kernels/kernel_types.h"
#include "tensor/tensor.h"

namespace tqp::kernels {

/// \brief Full reduction over all elements to a (1 x 1) tensor.
/// kSum/kCount produce float64/int64; kMin/kMax keep the input dtype.
Result<Tensor> ReduceAll(ReduceOpKind op, const Tensor& a);

/// \brief Inclusive prefix sum over an (n x 1) tensor (torch.cumsum).
/// Integer inputs accumulate in int64; floats in float64.
Result<Tensor> CumSum(const Tensor& a);

/// \brief Segmented reduction: values (n x 1) grouped by `segment_ids`
/// (int64, n x 1, non-decreasing, in [0, num_segments)). Returns
/// (num_segments x 1). Empty segments yield 0 for sum/count and are
/// undefined for min/max (also 0).
///
/// This is the sort-based aggregation primitive of the paper: sort rows by
/// key, derive segment ids from key-change boundaries, reduce per segment.
Result<Tensor> SegmentedReduce(ReduceOpKind op, const Tensor& values,
                               const Tensor& segment_ids, int64_t num_segments);

/// \brief target[index[i]] += values[i] (torch.Tensor.scatter_add_ analog)
/// over (n x 1) tensors; `target` is modified in place.
Status ScatterAddInPlace(Tensor* target, const Tensor& indices,
                         const Tensor& values);

/// \brief Per-column sum of an (n x m) tensor -> (1 x m) float64.
Result<Tensor> ColumnSums(const Tensor& a);

/// \brief Row-wise reduction of an (n x m) tensor -> (n x 1).
/// kSum in float64; kMin/kMax keep dtype.
Result<Tensor> ReduceRows(ReduceOpKind op, const Tensor& a);

/// \brief Row-wise argmax of an (n x m) tensor -> (n x 1) int64.
Result<Tensor> ArgmaxRows(const Tensor& a);

}  // namespace tqp::kernels

#endif  // TQP_KERNELS_REDUCE_H_
