#include "kernels/kernel_types.h"

namespace tqp {

const char* BinaryOpName(BinaryOpKind op) {
  switch (op) {
    case BinaryOpKind::kAdd: return "add";
    case BinaryOpKind::kSub: return "sub";
    case BinaryOpKind::kMul: return "mul";
    case BinaryOpKind::kDiv: return "div";
    case BinaryOpKind::kMod: return "mod";
    case BinaryOpKind::kMin: return "min";
    case BinaryOpKind::kMax: return "max";
  }
  return "?";
}

const char* CompareOpName(CompareOpKind op) {
  switch (op) {
    case CompareOpKind::kEq: return "eq";
    case CompareOpKind::kNe: return "ne";
    case CompareOpKind::kLt: return "lt";
    case CompareOpKind::kLe: return "le";
    case CompareOpKind::kGt: return "gt";
    case CompareOpKind::kGe: return "ge";
  }
  return "?";
}

const char* LogicalOpName(LogicalOpKind op) {
  switch (op) {
    case LogicalOpKind::kAnd: return "and";
    case LogicalOpKind::kOr: return "or";
    case LogicalOpKind::kXor: return "xor";
  }
  return "?";
}

const char* UnaryOpName(UnaryOpKind op) {
  switch (op) {
    case UnaryOpKind::kNeg: return "neg";
    case UnaryOpKind::kAbs: return "abs";
    case UnaryOpKind::kExp: return "exp";
    case UnaryOpKind::kLog: return "log";
    case UnaryOpKind::kSqrt: return "sqrt";
    case UnaryOpKind::kSigmoid: return "sigmoid";
    case UnaryOpKind::kTanh: return "tanh";
    case UnaryOpKind::kRelu: return "relu";
    case UnaryOpKind::kNot: return "not";
  }
  return "?";
}

const char* ReduceOpName(ReduceOpKind op) {
  switch (op) {
    case ReduceOpKind::kSum: return "sum";
    case ReduceOpKind::kMin: return "min";
    case ReduceOpKind::kMax: return "max";
    case ReduceOpKind::kCount: return "count";
  }
  return "?";
}

}  // namespace tqp
