#include "kernels/elementwise.h"

#include <cmath>
#include <string>

#include "kernels/lane_ops.h"

namespace tqp::kernels {

namespace {

// Validates broadcast compatibility and computes the output shape.
Status BroadcastShape(const Tensor& a, const Tensor& b, int64_t* rows,
                      int64_t* cols) {
  auto dim_ok = [](int64_t x, int64_t y) { return x == y || x == 1 || y == 1; };
  if (!dim_ok(a.rows(), b.rows()) || !dim_ok(a.cols(), b.cols())) {
    return Status::Invalid("incompatible broadcast shapes " +
                           std::to_string(a.rows()) + "x" + std::to_string(a.cols()) +
                           " vs " + std::to_string(b.rows()) + "x" +
                           std::to_string(b.cols()));
  }
  *rows = a.rows() == 1 ? b.rows() : a.rows();
  *cols = a.cols() == 1 ? b.cols() : a.cols();
  return Status::OK();
}

// Applies f elementwise with broadcasting; Out is the output element type.
template <typename T, typename Out, typename F>
void BinaryLoop(const Tensor& a, const Tensor& b, Tensor* out, F f) {
  const T* pa = a.data<T>();
  const T* pb = b.data<T>();
  Out* po = out->mutable_data<Out>();
  const int64_t rows = out->rows();
  const int64_t cols = out->cols();
  if (a.rows() == rows && a.cols() == cols && b.rows() == rows &&
      b.cols() == cols) {
    const int64_t n = rows * cols;
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
    return;
  }
  const int64_t ar = a.rows() == 1 ? 0 : 1;
  const int64_t ac = a.cols() == 1 ? 0 : 1;
  const int64_t br = b.rows() == 1 ? 0 : 1;
  const int64_t bc = b.cols() == 1 ? 0 : 1;
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const T x = pa[(i * ar) * a.cols() + j * ac];
      const T y = pb[(i * br) * b.cols() + j * bc];
      po[i * cols + j] = f(x, y);
    }
  }
}

// Per-lane arithmetic comes from kernels/lane_ops.h — the one definition
// shared with the fused interpreter and the SIMD tier — so this file only
// owns the broadcasting loop shape.
template <typename T>
Status BinaryOpTyped(BinaryOpKind op, const Tensor& a, const Tensor& b,
                     Tensor* out) {
  return lane::WithBinaryLane<T>(
      op, [&](auto f) { BinaryLoop<T, T>(a, b, out, f); });
}

template <typename T>
Status CompareTyped(CompareOpKind op, const Tensor& a, const Tensor& b,
                    Tensor* out) {
  return lane::WithCompareLane<T>(
      op, [&](auto f) { BinaryLoop<T, bool>(a, b, out, f); });
}

template <typename From, typename To>
void CastLoop(const Tensor& a, Tensor* out) {
  const From* pa = a.data<From>();
  To* po = out->mutable_data<To>();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = lane::CastLane<From, To>(pa[i]);
}

template <typename From>
Status CastFrom(const Tensor& a, DType to, Tensor* out) {
  switch (to) {
    case DType::kBool:
      CastLoop<From, bool>(a, out);
      return Status::OK();
    case DType::kUInt8:
      CastLoop<From, uint8_t>(a, out);
      return Status::OK();
    case DType::kInt32:
      CastLoop<From, int32_t>(a, out);
      return Status::OK();
    case DType::kInt64:
      CastLoop<From, int64_t>(a, out);
      return Status::OK();
    case DType::kFloat32:
      CastLoop<From, float>(a, out);
      return Status::OK();
    case DType::kFloat64:
      CastLoop<From, double>(a, out);
      return Status::OK();
  }
  return Status::Internal("unknown cast target");
}

// Materializes a scalar as a 1x1 tensor of the requested dtype.
Result<Tensor> ScalarTensor(const Scalar& s, DType dtype) {
  if (!s.is_numeric()) {
    return Status::TypeError("numeric scalar required, got " + s.ToString());
  }
  return Tensor::Full(dtype, 1, 1, s.AsDouble());
}

}  // namespace

Result<Tensor> BinaryOp(BinaryOpKind op, const Tensor& a, const Tensor& b) {
  int64_t rows = 0;
  int64_t cols = 0;
  TQP_RETURN_NOT_OK(BroadcastShape(a, b, &rows, &cols));
  DType dt = PromoteTypes(a.dtype(), b.dtype());
  // Arithmetic on booleans happens in int32 (SQL: SUM(CASE ...) etc.).
  if (dt == DType::kBool || dt == DType::kUInt8) dt = DType::kInt32;
  TQP_ASSIGN_OR_RETURN(Tensor ca, Cast(a, dt));
  TQP_ASSIGN_OR_RETURN(Tensor cb, Cast(b, dt));
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(dt, rows, cols, a.device()));
  switch (dt) {
    case DType::kInt32:
      TQP_RETURN_NOT_OK(BinaryOpTyped<int32_t>(op, ca, cb, &out));
      break;
    case DType::kInt64:
      TQP_RETURN_NOT_OK(BinaryOpTyped<int64_t>(op, ca, cb, &out));
      break;
    case DType::kFloat32:
      TQP_RETURN_NOT_OK(BinaryOpTyped<float>(op, ca, cb, &out));
      break;
    case DType::kFloat64:
      TQP_RETURN_NOT_OK(BinaryOpTyped<double>(op, ca, cb, &out));
      break;
    default:
      return Status::TypeError("BinaryOp: unsupported dtype");
  }
  return out;
}

Result<Tensor> BinaryOpScalar(BinaryOpKind op, const Tensor& a, const Scalar& s) {
  DType dt = PromoteTypes(a.dtype(), s.dtype());
  if (dt == DType::kBool || dt == DType::kUInt8) dt = DType::kInt32;
  TQP_ASSIGN_OR_RETURN(Tensor sb, ScalarTensor(s, dt));
  return BinaryOp(op, a, sb);
}

Result<Tensor> Compare(CompareOpKind op, const Tensor& a, const Tensor& b) {
  int64_t rows = 0;
  int64_t cols = 0;
  TQP_RETURN_NOT_OK(BroadcastShape(a, b, &rows, &cols));
  DType dt = PromoteTypes(a.dtype(), b.dtype());
  if (dt == DType::kBool) dt = DType::kUInt8;
  TQP_ASSIGN_OR_RETURN(Tensor ca, Cast(a, dt));
  TQP_ASSIGN_OR_RETURN(Tensor cb, Cast(b, dt));
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kBool, rows, cols, a.device()));
  switch (dt) {
    case DType::kUInt8:
      TQP_RETURN_NOT_OK(CompareTyped<uint8_t>(op, ca, cb, &out));
      break;
    case DType::kInt32:
      TQP_RETURN_NOT_OK(CompareTyped<int32_t>(op, ca, cb, &out));
      break;
    case DType::kInt64:
      TQP_RETURN_NOT_OK(CompareTyped<int64_t>(op, ca, cb, &out));
      break;
    case DType::kFloat32:
      TQP_RETURN_NOT_OK(CompareTyped<float>(op, ca, cb, &out));
      break;
    case DType::kFloat64:
      TQP_RETURN_NOT_OK(CompareTyped<double>(op, ca, cb, &out));
      break;
    default:
      return Status::TypeError("Compare: unsupported dtype");
  }
  return out;
}

Result<Tensor> CompareScalar(CompareOpKind op, const Tensor& a, const Scalar& s) {
  DType dt = PromoteTypes(a.dtype(), s.dtype());
  if (dt == DType::kBool) dt = DType::kUInt8;
  TQP_ASSIGN_OR_RETURN(Tensor sb, ScalarTensor(s, dt));
  return Compare(op, a, sb);
}

Result<Tensor> Logical(LogicalOpKind op, const Tensor& a, const Tensor& b) {
  if (a.dtype() != DType::kBool || b.dtype() != DType::kBool) {
    return Status::TypeError("Logical ops require bool tensors");
  }
  int64_t rows = 0;
  int64_t cols = 0;
  TQP_RETURN_NOT_OK(BroadcastShape(a, b, &rows, &cols));
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kBool, rows, cols, a.device()));
  TQP_RETURN_NOT_OK(lane::WithLogicalLane(
      op, [&](auto f) { BinaryLoop<bool, bool>(a, b, &out, f); }));
  return out;
}

Result<Tensor> Unary(UnaryOpKind op, const Tensor& a) {
  if (op == UnaryOpKind::kNot) {
    if (a.dtype() != DType::kBool) return Status::TypeError("Not requires bool");
    TQP_ASSIGN_OR_RETURN(Tensor out,
                         Tensor::Empty(DType::kBool, a.rows(), a.cols(), a.device()));
    const bool* pa = a.data<bool>();
    bool* po = out.mutable_data<bool>();
    for (int64_t i = 0; i < a.numel(); ++i) po[i] = lane::NotLane(pa[i]);
    return out;
  }
  // Transcendental ops evaluate in float64; Neg/Abs preserve numeric dtype.
  const bool keeps_dtype = op == UnaryOpKind::kNeg || op == UnaryOpKind::kAbs ||
                           op == UnaryOpKind::kRelu;
  DType dt = a.dtype();
  if (keeps_dtype) {
    if (dt == DType::kBool || dt == DType::kUInt8) dt = DType::kInt32;
  } else {
    dt = dt == DType::kFloat32 ? DType::kFloat32 : DType::kFloat64;
  }
  TQP_ASSIGN_OR_RETURN(Tensor ca, Cast(a, dt));
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(dt, a.rows(), a.cols(), a.device()));
  // WithUnaryLane hands back the lane functor already composed with the
  // evaluate-through-double-and-narrow rule.
  const auto run = [&](auto tag) -> Status {
    using T = decltype(tag);
    const T* p = ca.data<T>();
    T* o = out.mutable_data<T>();
    const int64_t n = ca.numel();
    return lane::WithUnaryLane<T>(op, [&](auto f) {
      for (int64_t i = 0; i < n; ++i) o[i] = f(p[i]);
    });
  };
  switch (dt) {
    case DType::kInt32:
      TQP_RETURN_NOT_OK(run(int32_t{}));
      break;
    case DType::kInt64:
      TQP_RETURN_NOT_OK(run(int64_t{}));
      break;
    case DType::kFloat32:
      TQP_RETURN_NOT_OK(run(float{}));
      break;
    case DType::kFloat64:
      TQP_RETURN_NOT_OK(run(double{}));
      break;
    default:
      return Status::TypeError("Unary: unsupported dtype");
  }
  return out;
}

Result<Tensor> Cast(const Tensor& a, DType to) {
  if (a.dtype() == to) return a;
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(to, a.rows(), a.cols(), a.device()));
  switch (a.dtype()) {
    case DType::kBool:
      // bool -> numeric: via uint8 view semantics (false=0, true=1),
      // encoded in lane::CastLane.
      TQP_RETURN_NOT_OK(CastFrom<bool>(a, to, &out));
      return out;
    case DType::kUInt8:
      TQP_RETURN_NOT_OK(CastFrom<uint8_t>(a, to, &out));
      return out;
    case DType::kInt32:
      TQP_RETURN_NOT_OK(CastFrom<int32_t>(a, to, &out));
      return out;
    case DType::kInt64:
      TQP_RETURN_NOT_OK(CastFrom<int64_t>(a, to, &out));
      return out;
    case DType::kFloat32:
      TQP_RETURN_NOT_OK(CastFrom<float>(a, to, &out));
      return out;
    case DType::kFloat64:
      TQP_RETURN_NOT_OK(CastFrom<double>(a, to, &out));
      return out;
  }
  return Status::Internal("unknown source dtype");
}

Result<Tensor> Where(const Tensor& cond, const Tensor& a, const Tensor& b) {
  if (cond.dtype() != DType::kBool) {
    return Status::TypeError("Where: condition must be bool");
  }
  DType dt = PromoteTypes(a.dtype(), b.dtype());
  TQP_ASSIGN_OR_RETURN(Tensor ca, Cast(a, dt));
  TQP_ASSIGN_OR_RETURN(Tensor cb, Cast(b, dt));
  int64_t ab_rows = 0;
  int64_t ab_cols = 0;
  TQP_RETURN_NOT_OK(BroadcastShape(ca, cb, &ab_rows, &ab_cols));
  auto dim_ok = [](int64_t x, int64_t y) { return x == y || x == 1 || y == 1; };
  if (!dim_ok(cond.rows(), ab_rows) || !dim_ok(cond.cols(), ab_cols)) {
    return Status::Invalid("Where: condition shape incompatible with values");
  }
  const int64_t rows = cond.rows() > ab_rows ? cond.rows() : ab_rows;
  const int64_t cols = cond.cols() > ab_cols ? cond.cols() : ab_cols;
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(dt, rows, cols, a.device()));
  const bool* pc = cond.data<bool>();
  const int64_t cr = cond.rows() == 1 ? 0 : 1;
  const int64_t cc = cond.cols() == 1 ? 0 : 1;
  auto run = [&](auto tag) {
    using T = decltype(tag);
    const T* pa = ca.data<T>();
    const T* pb = cb.data<T>();
    T* po = out.mutable_data<T>();
    const int64_t ar = ca.rows() == 1 ? 0 : 1;
    const int64_t ac = ca.cols() == 1 ? 0 : 1;
    const int64_t br = cb.rows() == 1 ? 0 : 1;
    const int64_t bc = cb.cols() == 1 ? 0 : 1;
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) {
        const bool c = pc[(i * cr) * cond.cols() + j * cc];
        po[i * cols + j] = c ? pa[(i * ar) * ca.cols() + j * ac]
                             : pb[(i * br) * cb.cols() + j * bc];
      }
    }
  };
  switch (dt) {
    case DType::kBool:
      run(bool{});
      break;
    case DType::kUInt8:
      run(uint8_t{});
      break;
    case DType::kInt32:
      run(int32_t{});
      break;
    case DType::kInt64:
      run(int64_t{});
      break;
    case DType::kFloat32:
      run(float{});
      break;
    case DType::kFloat64:
      run(double{});
      break;
  }
  return out;
}

Result<Tensor> Clamp(const Tensor& a, double lo, double hi) {
  TQP_ASSIGN_OR_RETURN(Tensor lo_t, BinaryOpScalar(BinaryOpKind::kMax, a, Scalar(lo)));
  return BinaryOpScalar(BinaryOpKind::kMin, lo_t, Scalar(hi));
}

}  // namespace tqp::kernels
