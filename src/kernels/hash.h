#ifndef TQP_KERNELS_HASH_H_
#define TQP_KERNELS_HASH_H_

#include "common/result.h"
#include "tensor/tensor.h"

namespace tqp::kernels {

/// \brief Hashes each row of `a` (numeric (n x 1) or string (n x m)) to an
/// int64 (n x 1). Equal rows hash equal; the mix is SplitMix64 for fixed-width
/// values and FNV-1a over the padded bytes for strings.
Result<Tensor> HashRows(const Tensor& a);

/// \brief Combines an existing hash column with the hash of another column:
/// out = mix(h, HashRows(a)). Used for multi-column join/group keys.
Result<Tensor> HashCombine(const Tensor& h, const Tensor& a);

}  // namespace tqp::kernels

#endif  // TQP_KERNELS_HASH_H_
