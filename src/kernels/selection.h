#ifndef TQP_KERNELS_SELECTION_H_
#define TQP_KERNELS_SELECTION_H_

#include "common/result.h"
#include "tensor/tensor.h"

namespace tqp::kernels {

/// \brief Row indices where the boolean (n x 1) mask is true (torch.nonzero).
Result<Tensor> Nonzero(const Tensor& mask);

/// \brief Keeps rows of `a` where `mask` is true. `a` is (n x m), mask (n x 1).
///
/// This is the mask -> cumsum -> gather sequence the paper uses for Filter,
/// collapsed into one kernel (the graph still exposes the two-step form for
/// the executor-graph artifact).
Result<Tensor> Compress(const Tensor& a, const Tensor& mask);

/// \brief out[i, :] = a[indices[i], :] (torch.index_select over rows).
/// `indices` must be int32/int64 (k x 1); out is (k x m).
Result<Tensor> Gather(const Tensor& a, const Tensor& indices);

/// \brief out[indices[i], :] = a[i, :]; `out_rows` rows in the result, rows
/// not covered by `indices` are zero. Duplicate indices: last write wins.
Result<Tensor> Scatter(const Tensor& a, const Tensor& indices, int64_t out_rows);

/// \brief Per-row column gather (torch.gather dim=1): out[i] = a[i, idx[i]].
/// `idx` is int64 (n x 1) with values in [0, a.cols()); output is (n x 1).
Result<Tensor> GatherCols(const Tensor& a, const Tensor& idx);

/// \brief Concatenates tensors over rows. All inputs share dtype and cols.
Result<Tensor> ConcatRows(const std::vector<Tensor>& parts);

/// \brief Appends `part`'s rows at `*dst`, laid out for an output of
/// `out_cols` columns, and advances `*dst` past them. Rows narrower than
/// `out_cols` (padded uint8 strings) are right-padded with zero bytes. The
/// single definition of the row-concat byte layout: ConcatRows and the
/// spill-aware pipeline assembly both call it, so out-of-core runs cannot
/// drift from the kernel.
void AppendRowsPadded(const Tensor& part, int64_t out_cols, uint8_t** dst);

/// \brief Concatenates (n x c_i) tensors side by side into (n x sum c_i).
/// All inputs share dtype and row count. Used to assemble ML feature
/// matrices from table columns.
Result<Tensor> ConcatCols(const std::vector<Tensor>& parts);

/// \brief Repeats each row of `a` `counts[i]` times (torch.repeat_interleave).
/// `counts` is int64 (n x 1); the output has sum(counts) rows.
Result<Tensor> RepeatInterleave(const Tensor& a, const Tensor& counts);

}  // namespace tqp::kernels

#endif  // TQP_KERNELS_SELECTION_H_
