#include "kernels/selection.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace tqp::kernels {

namespace {

// Reads an index tensor element as int64 regardless of int32/int64 dtype.
inline int64_t IndexAt(const Tensor& idx, int64_t i) {
  return idx.dtype() == DType::kInt32 ? idx.data<int32_t>()[i]
                                      : idx.data<int64_t>()[i];
}

Status CheckIndexDType(const Tensor& indices) {
  if (indices.dtype() != DType::kInt32 && indices.dtype() != DType::kInt64) {
    return Status::TypeError("index tensor must be int32/int64");
  }
  if (indices.cols() != 1) {
    return Status::Invalid("index tensor must be (n x 1)");
  }
  return Status::OK();
}

}  // namespace

Result<Tensor> Nonzero(const Tensor& mask) {
  if (mask.dtype() != DType::kBool || mask.cols() != 1) {
    return Status::TypeError("Nonzero requires a boolean (n x 1) mask");
  }
  const bool* pm = mask.data<bool>();
  const int64_t n = mask.rows();
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) count += pm[i] ? 1 : 0;
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kInt64, count, 1, mask.device()));
  int64_t* po = out.mutable_data<int64_t>();
  int64_t k = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (pm[i]) po[k++] = i;
  }
  return out;
}

Result<Tensor> Compress(const Tensor& a, const Tensor& mask) {
  if (mask.dtype() != DType::kBool || mask.cols() != 1) {
    return Status::TypeError("Compress requires a boolean (n x 1) mask");
  }
  if (mask.rows() != a.rows()) {
    return Status::Invalid("Compress: mask rows " + std::to_string(mask.rows()) +
                           " != tensor rows " + std::to_string(a.rows()));
  }
  TQP_ASSIGN_OR_RETURN(Tensor idx, Nonzero(mask));
  return Gather(a, idx);
}

Result<Tensor> Gather(const Tensor& a, const Tensor& indices) {
  TQP_RETURN_NOT_OK(CheckIndexDType(indices));
  const int64_t k = indices.rows();
  const int64_t m = a.cols();
  const int64_t elem = DTypeSize(a.dtype());
  const int64_t row_bytes = m * elem;
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(a.dtype(), k, m, a.device()));
  const uint8_t* src = static_cast<const uint8_t*>(a.raw_data());
  uint8_t* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  for (int64_t i = 0; i < k; ++i) {
    const int64_t r = IndexAt(indices, i);
    if (r < 0 || r >= a.rows()) {
      return Status::IndexError("Gather: index " + std::to_string(r) +
                                " out of range [0, " + std::to_string(a.rows()) + ")");
    }
    std::memcpy(dst + i * row_bytes, src + r * row_bytes,
                static_cast<size_t>(row_bytes));
  }
  return out;
}

Result<Tensor> Scatter(const Tensor& a, const Tensor& indices, int64_t out_rows) {
  TQP_RETURN_NOT_OK(CheckIndexDType(indices));
  if (indices.rows() != a.rows()) {
    return Status::Invalid("Scatter: indices rows != input rows");
  }
  const int64_t m = a.cols();
  const int64_t row_bytes = m * DTypeSize(a.dtype());
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(a.dtype(), out_rows, m, a.device()));
  const uint8_t* src = static_cast<const uint8_t*>(a.raw_data());
  uint8_t* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const int64_t r = IndexAt(indices, i);
    if (r < 0 || r >= out_rows) {
      return Status::IndexError("Scatter: index out of range");
    }
    std::memcpy(dst + r * row_bytes, src + i * row_bytes,
                static_cast<size_t>(row_bytes));
  }
  return out;
}

Result<Tensor> GatherCols(const Tensor& a, const Tensor& idx) {
  if (idx.dtype() != DType::kInt64 || idx.cols() != 1 || idx.rows() != a.rows()) {
    return Status::Invalid("GatherCols: idx must be int64 (n x 1) matching rows");
  }
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(a.dtype(), a.rows(), 1, a.device()));
  const int64_t* pi = idx.data<int64_t>();
  const int64_t m = a.cols();
  const int64_t elem = DTypeSize(a.dtype());
  const uint8_t* src = static_cast<const uint8_t*>(a.raw_data());
  uint8_t* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const int64_t j = pi[i];
    if (j < 0 || j >= m) {
      return Status::IndexError("GatherCols: column index out of range");
    }
    std::memcpy(dst + i * elem, src + (i * m + j) * elem, static_cast<size_t>(elem));
  }
  return out;
}

Result<Tensor> ConcatRows(const std::vector<Tensor>& parts) {
  if (parts.empty()) return Status::Invalid("ConcatRows: no inputs");
  const DType dt = parts[0].dtype();
  int64_t m = parts[0].cols();
  int64_t total = 0;
  for (const Tensor& t : parts) {
    if (t.dtype() != dt) {
      return Status::TypeError("ConcatRows: mismatched dtype");
    }
    if (t.cols() != m) {
      // Padded strings may legitimately differ in width (e.g. a LEFT JOIN's
      // zero-sentinel side); right-pad the narrower parts with 0 bytes.
      if (dt != DType::kUInt8) {
        return Status::TypeError("ConcatRows: mismatched cols");
      }
      m = std::max(m, t.cols());
    }
    total += t.rows();
  }
  TQP_ASSIGN_OR_RETURN(Tensor out, Tensor::Empty(dt, total, m, parts[0].device()));
  uint8_t* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  for (const Tensor& t : parts) {
    AppendRowsPadded(t, m, &dst);
  }
  return out;
}

void AppendRowsPadded(const Tensor& part, int64_t out_cols, uint8_t** dst) {
  const int64_t elem = DTypeSize(part.dtype());
  if (part.cols() == out_cols) {
    if (part.nbytes() > 0) {
      std::memcpy(*dst, part.raw_data(), static_cast<size_t>(part.nbytes()));
    }
    *dst += part.nbytes();
    return;
  }
  const auto* src = static_cast<const uint8_t*>(part.raw_data());
  const size_t row_bytes = static_cast<size_t>(part.cols() * elem);
  const size_t out_row_bytes = static_cast<size_t>(out_cols * elem);
  for (int64_t r = 0; r < part.rows(); ++r) {
    std::memcpy(*dst, src + static_cast<size_t>(r) * row_bytes, row_bytes);
    std::memset(*dst + row_bytes, 0, out_row_bytes - row_bytes);
    *dst += out_row_bytes;
  }
}

Result<Tensor> ConcatCols(const std::vector<Tensor>& parts) {
  if (parts.empty()) return Status::Invalid("ConcatCols: no inputs");
  const DType dt = parts[0].dtype();
  const int64_t rows = parts[0].rows();
  int64_t total_cols = 0;
  for (const Tensor& t : parts) {
    if (t.dtype() != dt || t.rows() != rows) {
      return Status::TypeError("ConcatCols: mismatched dtype/rows");
    }
    total_cols += t.cols();
  }
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(dt, rows, total_cols, parts[0].device()));
  const int64_t elem = DTypeSize(dt);
  uint8_t* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  int64_t col_off = 0;
  for (const Tensor& t : parts) {
    const uint8_t* src = static_cast<const uint8_t*>(t.raw_data());
    for (int64_t i = 0; i < rows; ++i) {
      std::memcpy(dst + (i * total_cols + col_off) * elem, src + i * t.cols() * elem,
                  static_cast<size_t>(t.cols() * elem));
    }
    col_off += t.cols();
  }
  return out;
}

Result<Tensor> RepeatInterleave(const Tensor& a, const Tensor& counts) {
  if (counts.dtype() != DType::kInt64 || counts.cols() != 1 ||
      counts.rows() != a.rows()) {
    return Status::Invalid("RepeatInterleave: counts must be int64 (n x 1)");
  }
  const int64_t* pc = counts.data<int64_t>();
  int64_t total = 0;
  for (int64_t i = 0; i < counts.rows(); ++i) {
    if (pc[i] < 0) return Status::Invalid("RepeatInterleave: negative count");
    total += pc[i];
  }
  const int64_t row_bytes = a.cols() * DTypeSize(a.dtype());
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(a.dtype(), total, a.cols(), a.device()));
  const uint8_t* src = static_cast<const uint8_t*>(a.raw_data());
  uint8_t* dst = static_cast<uint8_t*>(out.raw_mutable_data());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t r = 0; r < pc[i]; ++r) {
      std::memcpy(dst, src + i * row_bytes, static_cast<size_t>(row_bytes));
      dst += row_bytes;
    }
  }
  return out;
}

}  // namespace tqp::kernels
