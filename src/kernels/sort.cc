#include "kernels/sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "kernels/selection.h"

namespace tqp::kernels {

namespace {

// Three-way lexicographic comparison of rows i and j of `a`.
template <typename T>
int CompareRowsTyped(const T* p, int64_t cols, int64_t i, int64_t j) {
  const T* ri = p + i * cols;
  const T* rj = p + j * cols;
  for (int64_t c = 0; c < cols; ++c) {
    if (ri[c] < rj[c]) return -1;
    if (rj[c] < ri[c]) return 1;
  }
  return 0;
}

template <typename T>
void StableArgsortTyped(const Tensor& a, bool ascending, int64_t* out) {
  const T* p = a.data<T>();
  const int64_t cols = a.cols();
  std::iota(out, out + a.rows(), int64_t{0});
  std::stable_sort(out, out + a.rows(), [&](int64_t i, int64_t j) {
    const int c = CompareRowsTyped<T>(p, cols, i, j);
    return ascending ? c < 0 : c > 0;
  });
}

template <typename T, typename V>
int64_t LowerBoundRow(const T* data, int64_t n, V v) {
  int64_t lo = 0;
  int64_t hi = n;
  while (lo < hi) {
    const int64_t mid = (lo + hi) / 2;
    if (data[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

template <typename T, typename V>
int64_t UpperBoundRow(const T* data, int64_t n, V v) {
  int64_t lo = 0;
  int64_t hi = n;
  while (lo < hi) {
    const int64_t mid = (lo + hi) / 2;
    if (data[mid] <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

template <typename T>
void SearchSortedTyped(const Tensor& sorted, const Tensor& values, bool right,
                       int64_t* out) {
  const T* s = sorted.data<T>();
  const T* v = values.data<T>();
  const int64_t n = sorted.rows();
  for (int64_t i = 0; i < values.rows(); ++i) {
    out[i] = right ? UpperBoundRow<T, T>(s, n, v[i]) : LowerBoundRow<T, T>(s, n, v[i]);
  }
}

}  // namespace

Result<Tensor> ArgsortRows(const Tensor& a, bool ascending) {
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kInt64, a.rows(), 1, a.device()));
  int64_t* po = out.mutable_data<int64_t>();
  switch (a.dtype()) {
    case DType::kBool:
      StableArgsortTyped<bool>(a, ascending, po);
      break;
    case DType::kUInt8:
      StableArgsortTyped<uint8_t>(a, ascending, po);
      break;
    case DType::kInt32:
      StableArgsortTyped<int32_t>(a, ascending, po);
      break;
    case DType::kInt64:
      StableArgsortTyped<int64_t>(a, ascending, po);
      break;
    case DType::kFloat32:
      StableArgsortTyped<float>(a, ascending, po);
      break;
    case DType::kFloat64:
      StableArgsortTyped<double>(a, ascending, po);
      break;
  }
  return out;
}

Result<Tensor> SortRows(const Tensor& a, const Tensor& perm) {
  return Gather(a, perm);
}

Result<Tensor> SearchSorted(const Tensor& sorted, const Tensor& values,
                            bool right) {
  if (sorted.cols() != 1 || values.cols() != 1) {
    return Status::Invalid("SearchSorted requires (n x 1) tensors");
  }
  if (sorted.dtype() != values.dtype()) {
    return Status::TypeError("SearchSorted: dtype mismatch");
  }
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kInt64, values.rows(), 1, values.device()));
  int64_t* po = out.mutable_data<int64_t>();
  switch (sorted.dtype()) {
    case DType::kBool:
      SearchSortedTyped<bool>(sorted, values, right, po);
      break;
    case DType::kUInt8:
      SearchSortedTyped<uint8_t>(sorted, values, right, po);
      break;
    case DType::kInt32:
      SearchSortedTyped<int32_t>(sorted, values, right, po);
      break;
    case DType::kInt64:
      SearchSortedTyped<int64_t>(sorted, values, right, po);
      break;
    case DType::kFloat32:
      SearchSortedTyped<float>(sorted, values, right, po);
      break;
    case DType::kFloat64:
      SearchSortedTyped<double>(sorted, values, right, po);
      break;
  }
  return out;
}

Result<Tensor> SegmentBoundaries(const Tensor& keys) {
  TQP_ASSIGN_OR_RETURN(Tensor out,
                       Tensor::Empty(DType::kBool, keys.rows(), 1, keys.device()));
  bool* po = out.mutable_data<bool>();
  if (keys.rows() == 0) return out;
  po[0] = true;
  const int64_t row_bytes = keys.cols() * DTypeSize(keys.dtype());
  const uint8_t* p = static_cast<const uint8_t*>(keys.raw_data());
  for (int64_t i = 1; i < keys.rows(); ++i) {
    po[i] = std::memcmp(p + i * row_bytes, p + (i - 1) * row_bytes,
                        static_cast<size_t>(row_bytes)) != 0;
  }
  return out;
}

Result<Tensor> UniqueSorted(const Tensor& sorted_keys) {
  TQP_ASSIGN_OR_RETURN(Tensor mask, SegmentBoundaries(sorted_keys));
  return Compress(sorted_keys, mask);
}

}  // namespace tqp::kernels
