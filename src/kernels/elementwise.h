#ifndef TQP_KERNELS_ELEMENTWISE_H_
#define TQP_KERNELS_ELEMENTWISE_H_

#include "common/result.h"
#include "kernels/kernel_types.h"
#include "tensor/scalar.h"
#include "tensor/tensor.h"

namespace tqp::kernels {

/// Elementwise kernels with NumPy/PyTorch-style broadcasting restricted to
/// the shapes relational plans produce: equal shapes, (1x1) scalars,
/// (1xm) row vectors against (nxm), and (nx1) columns against (nxm).

/// \brief c = a <op> b with type promotion and broadcasting.
Result<Tensor> BinaryOp(BinaryOpKind op, const Tensor& a, const Tensor& b);

/// \brief Convenience: a <op> scalar.
Result<Tensor> BinaryOpScalar(BinaryOpKind op, const Tensor& a, const Scalar& s);

/// \brief Boolean mask = a <cmp> b (broadcasting as above).
Result<Tensor> Compare(CompareOpKind op, const Tensor& a, const Tensor& b);

/// \brief Boolean mask = a <cmp> scalar.
Result<Tensor> CompareScalar(CompareOpKind op, const Tensor& a, const Scalar& s);

/// \brief Combines two boolean masks.
Result<Tensor> Logical(LogicalOpKind op, const Tensor& a, const Tensor& b);

/// \brief Elementwise unary op. kNot requires bool input; transcendental ops
/// promote integers to float64.
Result<Tensor> Unary(UnaryOpKind op, const Tensor& a);

/// \brief Dtype conversion (torch.Tensor.to analog). No-op if already `to`.
Result<Tensor> Cast(const Tensor& a, DType to);

/// \brief out[i] = cond[i] ? a[i] : b[i] (torch.where). a/b broadcast as above.
Result<Tensor> Where(const Tensor& cond, const Tensor& a, const Tensor& b);

/// \brief Clamp values into [lo, hi].
Result<Tensor> Clamp(const Tensor& a, double lo, double hi);

}  // namespace tqp::kernels

#endif  // TQP_KERNELS_ELEMENTWISE_H_
