#ifndef TQP_KERNELS_KERNEL_TYPES_H_
#define TQP_KERNELS_KERNEL_TYPES_H_

#include <cstdint>

namespace tqp {

/// \brief Binary arithmetic kernels (torch.add / sub / mul / ... analogs).
enum class BinaryOpKind : int8_t {
  kAdd = 0,
  kSub,
  kMul,
  kDiv,
  kMod,
  kMin,
  kMax,
};

/// \brief Comparison kernels producing boolean masks.
enum class CompareOpKind : int8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// \brief Boolean combinators for masks.
enum class LogicalOpKind : int8_t {
  kAnd = 0,
  kOr,
  kXor,
};

/// \brief Unary elementwise kernels.
enum class UnaryOpKind : int8_t {
  kNeg = 0,
  kAbs,
  kExp,
  kLog,
  kSqrt,
  kSigmoid,
  kTanh,
  kRelu,
  kNot,  // boolean negation
};

/// \brief Reduction kernels.
enum class ReduceOpKind : int8_t {
  kSum = 0,
  kMin,
  kMax,
  kCount,
};

const char* BinaryOpName(BinaryOpKind op);
const char* CompareOpName(CompareOpKind op);
const char* LogicalOpName(LogicalOpKind op);
const char* UnaryOpName(UnaryOpKind op);
const char* ReduceOpName(ReduceOpKind op);

}  // namespace tqp

#endif  // TQP_KERNELS_KERNEL_TYPES_H_
