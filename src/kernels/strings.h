#ifndef TQP_KERNELS_STRINGS_H_
#define TQP_KERNELS_STRINGS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "kernels/kernel_types.h"
#include "tensor/tensor.h"

namespace tqp::kernels {

/// String kernels over the paper's §2.1 representation: a string column is an
/// (n x m) uint8 tensor of UTF-8 bytes, right-padded with 0, where m is the
/// maximum byte length in the column.

/// \brief Encodes host strings into an (n x m) uint8 tensor. `min_width`
/// lets callers force a wider m (e.g. to compare two columns directly).
Result<Tensor> EncodeStrings(const std::vector<std::string>& values,
                             int64_t min_width = 0);

/// \brief Decodes an (n x m) uint8 tensor back into host strings, trimming
/// the zero padding.
Result<std::vector<std::string>> DecodeStrings(const Tensor& t);

/// \brief Elementwise string comparison against a literal -> bool (n x 1).
/// Lexicographic byte order; the zero pad sorts before all characters, which
/// matches SQL semantics for ASCII data.
Result<Tensor> StringCompareScalar(CompareOpKind op, const Tensor& a,
                                   const std::string& literal);

/// \brief Row-wise comparison of two string tensors -> bool (n x 1).
Result<Tensor> StringCompare(CompareOpKind op, const Tensor& a, const Tensor& b);

/// \brief SQL LIKE against a pattern with % and _ -> bool (n x 1).
///
/// Fast paths: no wildcards (equality), '%s%' (substring search),
/// 'prefix%' and '%suffix'; the general case runs the backtracking matcher
/// per row over the padded bytes.
Result<Tensor> StringLike(const Tensor& a, const std::string& pattern);

/// \brief Byte substring: out row = a[row][start, start+len) (0-based),
/// producing an (n x len) tensor (SQL SUBSTRING with 1-based offsets is
/// translated by the planner).
Result<Tensor> Substring(const Tensor& a, int64_t start, int64_t len);

/// \brief Hashed tokenization of a padded string tensor: each row is split
/// on non-alphanumeric bytes, lowercased, and each token is hashed into
/// [0, vocab). The result is int64 (n x max_tokens), right-padded with -1
/// (the EmbeddingBagSum padding id). This is the tensor-program tokenizer of
/// the sentiment model (paper Figure 4).
Result<Tensor> HashTokenize(const Tensor& a, int64_t vocab, int64_t max_tokens);

/// \brief Dictionary-encodes string rows: returns int64 codes (n x 1) where
/// equal rows share a code, plus the dictionary (u x m, sorted) such that
/// dict[code] reproduces the row. Used to turn string group-by/join keys
/// into numeric tensor keys.
struct DictEncoded {
  Tensor codes;
  Tensor dict;
};
Result<DictEncoded> DictEncode(const Tensor& a);

}  // namespace tqp::kernels

#endif  // TQP_KERNELS_STRINGS_H_
