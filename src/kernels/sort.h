#ifndef TQP_KERNELS_SORT_H_
#define TQP_KERNELS_SORT_H_

#include "common/result.h"
#include "tensor/tensor.h"

namespace tqp::kernels {

/// \brief Stable argsort of an (n x m) tensor by lexicographic row order
/// (torch.argsort analog; m == 1 is the common numeric case, m > 1 covers
/// padded string tensors). Returns int64 (n x 1) permutation indices.
Result<Tensor> ArgsortRows(const Tensor& a, bool ascending = true);

/// \brief Applies `perm` (from ArgsortRows) to produce the sorted tensor.
/// Equivalent to Gather(a, perm); provided for symmetry with torch.sort.
Result<Tensor> SortRows(const Tensor& a, const Tensor& perm);

/// \brief torch.searchsorted / bucketize: for each value v in `values`
/// (k x 1), the insertion index into ascending `sorted` (n x 1) keeping order.
/// `right` selects the upper-bound variant. Returns int64 (k x 1).
///
/// This is the primitive behind the paper's sort-merge join: probe keys are
/// located in the sorted build side with two searchsorted calls whose
/// difference is the per-probe match count.
Result<Tensor> SearchSorted(const Tensor& sorted, const Tensor& values,
                            bool right = false);

/// \brief Boolean (n x 1) mask marking rows that differ from their
/// predecessor (row 0 is always true; empty input gives an empty mask).
/// On lexicographically sorted keys this marks group starts.
Result<Tensor> SegmentBoundaries(const Tensor& keys);

/// \brief Deduplicates a *sorted* (n x m) tensor: keeps rows where
/// SegmentBoundaries is true.
Result<Tensor> UniqueSorted(const Tensor& sorted_keys);

}  // namespace tqp::kernels

#endif  // TQP_KERNELS_SORT_H_
