#ifndef TQP_ML_TEXT_H_
#define TQP_ML_TEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace tqp::ml {

/// \brief Text sentiment classifier over string-tensor input — the stand-in
/// for the HuggingFace sentiment model in demo scenario 3 / Figure 4.
///
/// Architecture (all of it a tensor program, including tokenization):
///   hash_tokenize (n x max_tokens) -> embedding_bag_sum with an (V x h)
///   table -> ReLU -> matmul (h x 1) + bias -> sigmoid -> (> 0.5) -> {0, 1}.
/// The PREDICT('sentiment_classifier', text) call therefore returns 1.0 for
/// predicted-positive reviews, so SUM(PREDICT(...)) counts positives exactly
/// as the paper's Figure 4 query does.
struct SentimentFitOptions {
  int64_t vocab = 2048;
  int64_t max_tokens = 32;
  int64_t hidden = 16;
  int epochs = 12;
  double learning_rate = 0.08;
  uint64_t seed = 99;
};

class SentimentClassifier : public Model {
 public:
  using FitOptions = SentimentFitOptions;

  /// \brief Trains on host text/label pairs (labels 0/1) via SGD on the
  /// hashed bag-of-words representation.
  static Result<std::shared_ptr<SentimentClassifier>> Fit(
      const std::string& name, const std::vector<std::string>& texts,
      const std::vector<double>& labels, const FitOptions& options = {});

  SentimentClassifier(std::string name, int64_t vocab, int64_t max_tokens,
                      Tensor embedding, Tensor w_out, double b_out)
      : name_(std::move(name)), vocab_(vocab), max_tokens_(max_tokens),
        embedding_(std::move(embedding)), w_out_(std::move(w_out)), b_out_(b_out) {}

  std::string name() const override { return name_; }
  Result<LogicalType> CheckArgs(const std::vector<LogicalType>& args) const override;
  Result<int> BuildGraph(TensorProgram* program,
                         const std::vector<int>& arg_nodes) const override;
  Result<Scalar> PredictRow(const std::vector<Scalar>& args) const override;

  /// \brief The positive-class probability (before thresholding).
  double ScoreText(const std::string& text) const;

 private:
  std::string name_;
  int64_t vocab_;
  int64_t max_tokens_;
  Tensor embedding_;  // (V x h) float64
  Tensor w_out_;      // (h x 1)
  double b_out_;
};

}  // namespace tqp::ml

#endif  // TQP_ML_TEXT_H_
