#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"
#include "ml/linear.h"

namespace tqp::ml {

namespace {

struct Split {
  bool found = false;
  int feature = 0;
  double threshold = 0.0;
  double score = 0.0;  // impurity decrease
};

// Variance-reduction split for regression targets.
Split BestSplitRegression(const double* x, const double* y, int64_t d,
                          const std::vector<int64_t>& rows, int min_leaf) {
  Split best;
  const auto n = static_cast<int64_t>(rows.size());
  double total_sum = 0;
  double total_sq = 0;
  for (int64_t r : rows) {
    total_sum += y[r];
    total_sq += y[r] * y[r];
  }
  const double parent_sse = total_sq - total_sum * total_sum / static_cast<double>(n);
  std::vector<std::pair<double, double>> vals(static_cast<size_t>(n));
  for (int64_t f = 0; f < d; ++f) {
    for (int64_t i = 0; i < n; ++i) {
      vals[static_cast<size_t>(i)] = {x[rows[static_cast<size_t>(i)] * d + f],
                                      y[rows[static_cast<size_t>(i)]]};
    }
    std::sort(vals.begin(), vals.end());
    double left_sum = 0;
    double left_sq = 0;
    for (int64_t i = 0; i < n - 1; ++i) {
      left_sum += vals[static_cast<size_t>(i)].second;
      left_sq += vals[static_cast<size_t>(i)].second * vals[static_cast<size_t>(i)].second;
      if (i + 1 < min_leaf || n - i - 1 < min_leaf) continue;
      if (vals[static_cast<size_t>(i)].first == vals[static_cast<size_t>(i + 1)].first) {
        continue;  // cannot split between equal values
      }
      const double nl = static_cast<double>(i + 1);
      const double nr = static_cast<double>(n - i - 1);
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / nl) +
                         (right_sq - right_sum * right_sum / nr);
      const double gain = parent_sse - sse;
      if (!best.found || gain > best.score) {
        best.found = true;
        best.score = gain;
        best.feature = static_cast<int>(f);
        best.threshold = (vals[static_cast<size_t>(i)].first +
                          vals[static_cast<size_t>(i + 1)].first) /
                         2.0;
      }
    }
  }
  return best;
}

// Gini split for integer class labels.
Split BestSplitGini(const double* x, const double* y, int64_t d,
                    const std::vector<int64_t>& rows, int min_leaf, int k) {
  Split best;
  const auto n = static_cast<int64_t>(rows.size());
  std::vector<double> total(static_cast<size_t>(k), 0.0);
  for (int64_t r : rows) total[static_cast<size_t>(static_cast<int>(y[r]))] += 1;
  auto gini = [&](const std::vector<double>& counts, double m) {
    if (m <= 0) return 0.0;
    double g = 1.0;
    for (double c : counts) g -= (c / m) * (c / m);
    return g;
  };
  const double parent = gini(total, static_cast<double>(n));
  std::vector<std::pair<double, int>> vals(static_cast<size_t>(n));
  std::vector<double> left(static_cast<size_t>(k));
  for (int64_t f = 0; f < d; ++f) {
    for (int64_t i = 0; i < n; ++i) {
      const int64_t r = rows[static_cast<size_t>(i)];
      vals[static_cast<size_t>(i)] = {x[r * d + f], static_cast<int>(y[r])};
    }
    std::sort(vals.begin(), vals.end());
    std::fill(left.begin(), left.end(), 0.0);
    for (int64_t i = 0; i < n - 1; ++i) {
      left[static_cast<size_t>(vals[static_cast<size_t>(i)].second)] += 1;
      if (i + 1 < min_leaf || n - i - 1 < min_leaf) continue;
      if (vals[static_cast<size_t>(i)].first == vals[static_cast<size_t>(i + 1)].first) {
        continue;
      }
      const double nl = static_cast<double>(i + 1);
      const double nr = static_cast<double>(n - i - 1);
      std::vector<double> right(static_cast<size_t>(k));
      for (int c = 0; c < k; ++c) {
        right[static_cast<size_t>(c)] =
            total[static_cast<size_t>(c)] - left[static_cast<size_t>(c)];
      }
      const double score =
          parent - (nl * gini(left, nl) + nr * gini(right, nr)) / static_cast<double>(n);
      if (!best.found || score > best.score) {
        best.found = true;
        best.score = score;
        best.feature = static_cast<int>(f);
        best.threshold = (vals[static_cast<size_t>(i)].first +
                          vals[static_cast<size_t>(i + 1)].first) /
                         2.0;
      }
    }
  }
  return best;
}

double LeafValue(const double* y, const std::vector<int64_t>& rows,
                 const DecisionTree::FitOptions& options) {
  if (options.classification) {
    std::vector<int64_t> counts(static_cast<size_t>(options.num_classes), 0);
    for (int64_t r : rows) ++counts[static_cast<size_t>(static_cast<int>(y[r]))];
    int best = 0;
    for (int c = 1; c < options.num_classes; ++c) {
      if (counts[static_cast<size_t>(c)] > counts[static_cast<size_t>(best)]) best = c;
    }
    return static_cast<double>(best);
  }
  double sum = 0;
  for (int64_t r : rows) sum += y[r];
  return rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
}

struct Builder {
  const double* x;
  const double* y;
  int64_t d;
  DecisionTree::FitOptions options;
  std::vector<TreeNode> nodes;

  int Build(std::vector<int64_t> rows, int depth) {
    TreeNode node;
    const bool pure = [&] {
      for (size_t i = 1; i < rows.size(); ++i) {
        if (y[rows[i]] != y[rows[0]]) return false;
      }
      return true;
    }();
    Split split;
    if (depth < options.max_depth && !pure &&
        static_cast<int>(rows.size()) >= 2 * options.min_samples_leaf) {
      split = options.classification
                  ? BestSplitGini(x, y, d, rows, options.min_samples_leaf,
                                  options.num_classes)
                  : BestSplitRegression(x, y, d, rows, options.min_samples_leaf);
    }
    if (!split.found || split.score <= 1e-12) {
      node.is_leaf = true;
      node.value = LeafValue(y, rows, options);
      nodes.push_back(node);
      return static_cast<int>(nodes.size()) - 1;
    }
    std::vector<int64_t> left_rows;
    std::vector<int64_t> right_rows;
    for (int64_t r : rows) {
      if (x[r * d + split.feature] < split.threshold) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    rows.clear();
    rows.shrink_to_fit();
    node.is_leaf = false;
    node.feature = split.feature;
    node.threshold = split.threshold;
    nodes.push_back(node);
    const int id = static_cast<int>(nodes.size()) - 1;
    nodes[static_cast<size_t>(id)].left = Build(std::move(left_rows), depth + 1);
    nodes[static_cast<size_t>(id)].right = Build(std::move(right_rows), depth + 1);
    return id;
  }
};

int ComputeDepth(const std::vector<TreeNode>& nodes, int id) {
  const TreeNode& n = nodes[static_cast<size_t>(id)];
  if (n.is_leaf) return 0;
  return 1 + std::max(ComputeDepth(nodes, n.left), ComputeDepth(nodes, n.right));
}

}  // namespace

const char* TreeStrategyName(TreeStrategy s) {
  return s == TreeStrategy::kGemm ? "gemm" : "tree_traversal";
}

Result<DecisionTree> DecisionTree::Fit(const Tensor& features,
                                       const Tensor& targets,
                                       const FitOptions& options) {
  if (features.dtype() != DType::kFloat64 || targets.dtype() != DType::kFloat64) {
    return Status::TypeError("DecisionTree::Fit expects float64 tensors");
  }
  if (features.rows() == 0 || features.rows() != targets.rows()) {
    return Status::Invalid("DecisionTree::Fit: bad training shapes");
  }
  Builder builder;
  builder.x = features.data<double>();
  builder.y = targets.data<double>();
  builder.d = features.cols();
  builder.options = options;
  std::vector<int64_t> all(static_cast<size_t>(features.rows()));
  std::iota(all.begin(), all.end(), 0);
  builder.Build(std::move(all), 0);
  DecisionTree tree;
  tree.nodes_ = std::move(builder.nodes);
  tree.num_features_ = static_cast<int>(features.cols());
  tree.depth_ = ComputeDepth(tree.nodes_, 0);
  return tree;
}

DecisionTree DecisionTree::FromNodes(std::vector<TreeNode> nodes,
                                     int num_features) {
  DecisionTree tree;
  tree.nodes_ = std::move(nodes);
  tree.num_features_ = num_features;
  tree.depth_ = tree.nodes_.empty() ? 0 : ComputeDepth(tree.nodes_, 0);
  return tree;
}

double DecisionTree::PredictOne(const double* x) const {
  int id = 0;
  while (!nodes_[static_cast<size_t>(id)].is_leaf) {
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    id = x[n.feature] < n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(id)].value;
}

int DecisionTree::num_leaves() const {
  int count = 0;
  for (const TreeNode& n : nodes_) count += n.is_leaf ? 1 : 0;
  return count;
}

int DecisionTree::num_internal() const {
  return static_cast<int>(nodes_.size()) - num_leaves();
}

Result<LogicalType> DecisionTreeModel::CheckArgs(
    const std::vector<LogicalType>& args) const {
  return CheckNumericArgs(args, static_cast<size_t>(tree_.num_features()));
}

Result<int> DecisionTreeModel::BuildGraph(
    TensorProgram* program, const std::vector<int>& arg_nodes) const {
  TQP_ASSIGN_OR_RETURN(int x, BuildFeatureMatrix(program, arg_nodes));
  return BuildTreeGraph(program, x, tree_, strategy_, name_);
}

Result<Scalar> DecisionTreeModel::PredictRow(const std::vector<Scalar>& args) const {
  std::vector<double> x(args.size());
  for (size_t i = 0; i < args.size(); ++i) x[i] = args[i].AsDouble();
  return Scalar(tree_.PredictOne(x.data()));
}

Result<std::shared_ptr<RandomForestModel>> RandomForestModel::Fit(
    const std::string& name, const Tensor& features, const Tensor& targets,
    const FitOptions& options, TreeStrategy strategy) {
  if (features.dtype() != DType::kFloat64 || features.rows() == 0) {
    return Status::TypeError("RandomForestModel::Fit expects float64 features");
  }
  Rng rng(options.seed);
  const int64_t n = features.rows();
  const int64_t d = features.cols();
  std::vector<DecisionTree> trees;
  for (int t = 0; t < options.num_trees; ++t) {
    // Bootstrap sample.
    TQP_ASSIGN_OR_RETURN(Tensor bx, Tensor::Empty(DType::kFloat64, n, d));
    TQP_ASSIGN_OR_RETURN(Tensor by, Tensor::Empty(DType::kFloat64, n, 1));
    double* px = bx.mutable_data<double>();
    double* py = by.mutable_data<double>();
    const double* sx = features.data<double>();
    const double* sy = targets.data<double>();
    for (int64_t i = 0; i < n; ++i) {
      const int64_t r = rng.Uniform(0, n - 1);
      std::copy(sx + r * d, sx + (r + 1) * d, px + i * d);
      py[i] = sy[r];
    }
    TQP_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::Fit(bx, by, options.tree));
    trees.push_back(std::move(tree));
  }
  return std::make_shared<RandomForestModel>(name, std::move(trees), strategy);
}

Result<LogicalType> RandomForestModel::CheckArgs(
    const std::vector<LogicalType>& args) const {
  if (trees_.empty()) return Status::Invalid("empty forest");
  return CheckNumericArgs(args, static_cast<size_t>(trees_[0].num_features()));
}

Result<int> RandomForestModel::BuildGraph(TensorProgram* program,
                                          const std::vector<int>& arg_nodes) const {
  if (trees_.empty()) return Status::Invalid("empty forest");
  TQP_ASSIGN_OR_RETURN(int x, BuildFeatureMatrix(program, arg_nodes));
  int acc = -1;
  for (size_t t = 0; t < trees_.size(); ++t) {
    TQP_ASSIGN_OR_RETURN(
        int pred, BuildTreeGraph(program, x, trees_[t], strategy_,
                                 name_ + ".tree" + std::to_string(t)));
    if (acc < 0) {
      acc = pred;
    } else {
      AttrMap add;
      add.Set("op", static_cast<int64_t>(BinaryOpKind::kAdd));
      acc = program->AddNode(OpType::kBinary, {acc, pred}, add, name_ + ": sum");
    }
  }
  TQP_ASSIGN_OR_RETURN(
      Tensor inv, Tensor::Full(DType::kFloat64, 1, 1,
                               1.0 / static_cast<double>(trees_.size())));
  const int inv_node = program->AddConstant(std::move(inv), name_ + ".inv_trees");
  AttrMap mul;
  mul.Set("op", static_cast<int64_t>(BinaryOpKind::kMul));
  return program->AddNode(OpType::kBinary, {acc, inv_node}, mul, name_ + ": mean");
}

Result<Scalar> RandomForestModel::PredictRow(const std::vector<Scalar>& args) const {
  std::vector<double> x(args.size());
  for (size_t i = 0; i < args.size(); ++i) x[i] = args[i].AsDouble();
  double sum = 0;
  for (const DecisionTree& tree : trees_) sum += tree.PredictOne(x.data());
  return Scalar(sum / static_cast<double>(trees_.size()));
}

}  // namespace tqp::ml
