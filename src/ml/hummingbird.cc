// Hummingbird-style compilation of fitted decision trees into tensor
// programs (Nakandala et al., OSDI'20), which TQP "integrates and expands"
// (paper §3.3). Two strategies:
//
//  * GEMM: the tree becomes three dense matmuls —
//      (1) route features to internal nodes:   T = X @ A        (n x I)
//      (2) evaluate all node conditions:       Dm = T < B       (n x I)
//      (3) match decision patterns to leaves:  P = Dm @ C == D  (n x L)
//      (4) read out leaf values:               y = P @ E        (n x 1)
//    where leaf l matches iff its ancestors' decisions agree exactly:
//    C[i][l] = +1 for left-ancestors, -1 for right-ancestors, and
//    D[l] = (#left-ancestors of l), so the maximum of Dm@C is attained only
//    by the exact pattern.
//
//  * TreeTraversal: `depth` gather steps walk all rows down the tree in
//    lockstep; leaves self-loop so shallow rows park at their leaf.
//
// Both produce bit-identical predictions to DecisionTree::PredictOne (the
// property tests check this), but with very different cost shapes: GEMM is
// compute-dense (great on GPUs for shallow trees), traversal is
// gather-bound but O(depth) instead of O(nodes) — reproduced in ABL4.

#include "ml/tree.h"

namespace tqp::ml {

namespace {

Result<int> BuildGemm(TensorProgram* program, int x_node, const DecisionTree& tree,
                      const std::string& label) {
  const std::vector<TreeNode>& nodes = tree.nodes();
  std::vector<int> internal_idx(nodes.size(), -1);
  std::vector<int> leaf_idx(nodes.size(), -1);
  int num_internal = 0;
  int num_leaves = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].is_leaf) {
      leaf_idx[i] = num_leaves++;
    } else {
      internal_idx[i] = num_internal++;
    }
  }
  const int d = tree.num_features();
  TQP_ASSIGN_OR_RETURN(Tensor a, Tensor::Full(DType::kFloat64, d, num_internal, 0.0));
  TQP_ASSIGN_OR_RETURN(Tensor b, Tensor::Full(DType::kFloat64, 1, num_internal, 0.0));
  TQP_ASSIGN_OR_RETURN(Tensor c,
                       Tensor::Full(DType::kFloat64, num_internal, num_leaves, 0.0));
  TQP_ASSIGN_OR_RETURN(Tensor dd, Tensor::Full(DType::kFloat64, 1, num_leaves, 0.0));
  TQP_ASSIGN_OR_RETURN(Tensor e, Tensor::Full(DType::kFloat64, num_leaves, 1, 0.0));
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].is_leaf) {
      e.set<double>(leaf_idx[i], 0, nodes[i].value);
    } else {
      a.set<double>(nodes[i].feature, internal_idx[i], 1.0);
      b.set<double>(0, internal_idx[i], nodes[i].threshold);
    }
  }
  // Fill C and D by walking root->leaf paths.
  struct Frame {
    int node;
    std::vector<std::pair<int, bool>> path;  // (internal idx, went_left)
  };
  std::vector<Frame> stack{{0, {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const TreeNode& n = nodes[static_cast<size_t>(f.node)];
    if (n.is_leaf) {
      int lefts = 0;
      for (const auto& [idx, went_left] : f.path) {
        c.set<double>(idx, leaf_idx[static_cast<size_t>(f.node)],
                      went_left ? 1.0 : -1.0);
        lefts += went_left ? 1 : 0;
      }
      dd.set<double>(0, leaf_idx[static_cast<size_t>(f.node)],
                     static_cast<double>(lefts));
      continue;
    }
    Frame left{n.left, f.path};
    left.path.emplace_back(internal_idx[static_cast<size_t>(f.node)], true);
    Frame right{n.right, std::move(f.path)};
    right.path.emplace_back(internal_idx[static_cast<size_t>(f.node)], false);
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }

  const int a_node = program->AddConstant(std::move(a), label + ".A");
  const int b_node = program->AddConstant(std::move(b), label + ".B");
  const int c_node = program->AddConstant(std::move(c), label + ".C");
  const int d_node = program->AddConstant(std::move(dd), label + ".D");
  const int e_node = program->AddConstant(std::move(e), label + ".E");
  const int routed = program->AddNode(OpType::kMatMul, {x_node, a_node}, {},
                                      label + ": route");
  AttrMap lt;
  lt.Set("op", static_cast<int64_t>(CompareOpKind::kLt));
  const int decisions = program->AddNode(OpType::kCompare, {routed, b_node}, lt,
                                         label + ": decide");
  AttrMap to_f64;
  to_f64.Set("dtype", static_cast<int64_t>(DType::kFloat64));
  const int decisions_f =
      program->AddNode(OpType::kCast, {decisions}, to_f64, label);
  const int paths = program->AddNode(OpType::kMatMul, {decisions_f, c_node}, {},
                                     label + ": match paths");
  AttrMap eq;
  eq.Set("op", static_cast<int64_t>(CompareOpKind::kEq));
  const int leaf_onehot =
      program->AddNode(OpType::kCompare, {paths, d_node}, eq, label + ": leaves");
  const int leaf_f = program->AddNode(OpType::kCast, {leaf_onehot}, to_f64, label);
  return program->AddNode(OpType::kMatMul, {leaf_f, e_node}, {},
                          label + ": leaf values");
}

Result<int> BuildTraversal(TensorProgram* program, int x_node,
                           const DecisionTree& tree, const std::string& label) {
  const std::vector<TreeNode>& nodes = tree.nodes();
  const auto num_nodes = static_cast<int64_t>(nodes.size());
  std::vector<int64_t> feature(nodes.size());
  std::vector<double> threshold(nodes.size());
  std::vector<int64_t> left(nodes.size());
  std::vector<int64_t> right(nodes.size());
  std::vector<double> value(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& n = nodes[i];
    feature[i] = n.is_leaf ? 0 : n.feature;
    threshold[i] = n.is_leaf ? 0.0 : n.threshold;
    left[i] = n.is_leaf ? static_cast<int64_t>(i) : n.left;   // leaves self-loop
    right[i] = n.is_leaf ? static_cast<int64_t>(i) : n.right;
    value[i] = n.value;
  }
  const int feat_node = program->AddConstant(
      Tensor::FromVector2D(feature, num_nodes, 1), label + ".feature");
  const int thr_node = program->AddConstant(
      Tensor::FromVector2D(threshold, num_nodes, 1), label + ".threshold");
  const int left_node = program->AddConstant(
      Tensor::FromVector2D(left, num_nodes, 1), label + ".left");
  const int right_node = program->AddConstant(
      Tensor::FromVector2D(right, num_nodes, 1), label + ".right");
  const int value_node = program->AddConstant(
      Tensor::FromVector2D(value, num_nodes, 1), label + ".value");

  // cur = zeros(n) int64 (root).
  const int arange = program->AddNode(OpType::kArangeLike, {x_node}, {}, label);
  TQP_ASSIGN_OR_RETURN(Tensor zero, Tensor::Full(DType::kInt64, 1, 1, 0.0));
  const int zero_node = program->AddConstant(std::move(zero), "0");
  AttrMap mul;
  mul.Set("op", static_cast<int64_t>(BinaryOpKind::kMul));
  int cur = program->AddNode(OpType::kBinary, {arange, zero_node}, mul,
                             label + ": root ids");
  AttrMap lt;
  lt.Set("op", static_cast<int64_t>(CompareOpKind::kLt));
  for (int step = 0; step < tree.depth(); ++step) {
    const std::string sl = label + ": step " + std::to_string(step);
    const int f = program->AddNode(OpType::kGather, {feat_node, cur}, {}, sl);
    const int t = program->AddNode(OpType::kGather, {thr_node, cur}, {}, sl);
    const int xv = program->AddNode(OpType::kGatherCols, {x_node, f}, {}, sl);
    const int go_left = program->AddNode(OpType::kCompare, {xv, t}, lt, sl);
    const int l = program->AddNode(OpType::kGather, {left_node, cur}, {}, sl);
    const int r = program->AddNode(OpType::kGather, {right_node, cur}, {}, sl);
    cur = program->AddNode(OpType::kWhere, {go_left, l, r}, {}, sl);
  }
  return program->AddNode(OpType::kGather, {value_node, cur}, {},
                          label + ": leaf values");
}

}  // namespace

Result<int> BuildTreeGraph(TensorProgram* program, int x_node,
                           const DecisionTree& tree, TreeStrategy strategy,
                           const std::string& label) {
  if (tree.nodes().empty()) return Status::Invalid("empty tree");
  if (tree.num_internal() == 0) {
    // Single-leaf tree: broadcast the constant value over the row domain.
    const int arange = program->AddNode(OpType::kArangeLike, {x_node}, {}, label);
    AttrMap mul;
    mul.Set("op", static_cast<int64_t>(BinaryOpKind::kMul));
    TQP_ASSIGN_OR_RETURN(Tensor zero, Tensor::Full(DType::kFloat64, 1, 1, 0.0));
    const int zero_node = program->AddConstant(std::move(zero), "0");
    const int zeros =
        program->AddNode(OpType::kBinary, {arange, zero_node}, mul, label);
    TQP_ASSIGN_OR_RETURN(
        Tensor v, Tensor::Full(DType::kFloat64, 1, 1, tree.nodes()[0].value));
    const int v_node = program->AddConstant(std::move(v), label + ".value");
    AttrMap add;
    add.Set("op", static_cast<int64_t>(BinaryOpKind::kAdd));
    return program->AddNode(OpType::kBinary, {zeros, v_node}, add, label);
  }
  return strategy == TreeStrategy::kGemm
             ? BuildGemm(program, x_node, tree, label)
             : BuildTraversal(program, x_node, tree, label);
}

}  // namespace tqp::ml
