#include "ml/text.h"

#include <cmath>

#include "common/random.h"
#include "kernels/strings.h"

namespace tqp::ml {

namespace {

// Host-side mirror of the kHashTokenize kernel (single string).
std::vector<int64_t> TokenizeOne(const std::string& text, int64_t vocab,
                                 int64_t max_tokens) {
  std::vector<int64_t> out;
  uint64_t h = 1469598103934665603ull;
  bool in_token = false;
  for (size_t j = 0; j <= text.size(); ++j) {
    if (static_cast<int64_t>(out.size()) >= max_tokens) break;
    uint8_t c = j < text.size() ? static_cast<uint8_t>(text[j]) : 0;
    if (c >= 'A' && c <= 'Z') c = static_cast<uint8_t>(c - 'A' + 'a');
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    if (alnum) {
      h = (h ^ c) * 1099511628211ull;
      in_token = true;
    } else if (in_token) {
      out.push_back(static_cast<int64_t>(h % static_cast<uint64_t>(vocab)));
      h = 1469598103934665603ull;
      in_token = false;
    }
  }
  return out;
}

}  // namespace

Result<std::shared_ptr<SentimentClassifier>> SentimentClassifier::Fit(
    const std::string& name, const std::vector<std::string>& texts,
    const std::vector<double>& labels, const FitOptions& options) {
  if (texts.size() != labels.size() || texts.empty()) {
    return Status::Invalid("SentimentClassifier::Fit: bad training data");
  }
  const int64_t v = options.vocab;
  const int64_t h = options.hidden;
  Rng rng(options.seed);
  TQP_ASSIGN_OR_RETURN(Tensor embedding, Tensor::Empty(DType::kFloat64, v, h));
  TQP_ASSIGN_OR_RETURN(Tensor w_out, Tensor::Empty(DType::kFloat64, h, 1));
  double* pe = embedding.mutable_data<double>();
  double* pw = w_out.mutable_data<double>();
  for (int64_t i = 0; i < v * h; ++i) pe[i] = rng.NextGaussian() * 0.05;
  for (int64_t i = 0; i < h; ++i) pw[i] = rng.NextGaussian() * 0.1;
  double bias = 0.0;

  std::vector<std::vector<int64_t>> tokens(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    tokens[i] = TokenizeOne(texts[i], v, options.max_tokens);
  }
  std::vector<double> bag(static_cast<size_t>(h));
  std::vector<double> hidden(static_cast<size_t>(h));
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t i = 0; i < texts.size(); ++i) {
      std::fill(bag.begin(), bag.end(), 0.0);
      for (int64_t id : tokens[i]) {
        for (int64_t c = 0; c < h; ++c) bag[static_cast<size_t>(c)] += pe[id * h + c];
      }
      double out = bias;
      for (int64_t c = 0; c < h; ++c) {
        hidden[static_cast<size_t>(c)] =
            bag[static_cast<size_t>(c)] > 0 ? bag[static_cast<size_t>(c)] : 0;
        out += hidden[static_cast<size_t>(c)] * pw[c];
      }
      const double p = 1.0 / (1.0 + std::exp(-out));
      const double delta = p - labels[i];
      const double lr = options.learning_rate;
      for (int64_t c = 0; c < h; ++c) {
        const double grad_bag =
            bag[static_cast<size_t>(c)] > 0 ? delta * pw[c] : 0.0;
        pw[c] -= lr * delta * hidden[static_cast<size_t>(c)];
        if (grad_bag != 0.0) {
          for (int64_t id : tokens[i]) pe[id * h + c] -= lr * grad_bag;
        }
      }
      bias -= lr * delta;
    }
  }
  return std::make_shared<SentimentClassifier>(name, v, options.max_tokens,
                                               std::move(embedding),
                                               std::move(w_out), bias);
}

Result<LogicalType> SentimentClassifier::CheckArgs(
    const std::vector<LogicalType>& args) const {
  if (args.size() != 1 || args[0] != LogicalType::kString) {
    return Status::TypeError(name_ + " expects one string argument");
  }
  return LogicalType::kFloat64;
}

Result<int> SentimentClassifier::BuildGraph(
    TensorProgram* program, const std::vector<int>& arg_nodes) const {
  if (arg_nodes.size() != 1) return Status::Invalid("expects one argument");
  AttrMap tok;
  tok.Set("vocab", vocab_);
  tok.Set("max_tokens", max_tokens_);
  const int ids = program->AddNode(OpType::kHashTokenize, {arg_nodes[0]}, tok,
                                   name_ + ": tokenize");
  const int table = program->AddConstant(embedding_, name_ + ".embedding");
  const int bag = program->AddNode(OpType::kEmbeddingBagSum, {table, ids}, {},
                                   name_ + ": embedding bag");
  AttrMap relu;
  relu.Set("op", static_cast<int64_t>(UnaryOpKind::kRelu));
  const int hidden = program->AddNode(OpType::kUnary, {bag}, relu,
                                      name_ + ": relu");
  const int w = program->AddConstant(w_out_, name_ + ".w_out");
  TQP_ASSIGN_OR_RETURN(Tensor b, Tensor::Full(DType::kFloat64, 1, 1, b_out_));
  const int b_node = program->AddConstant(std::move(b), name_ + ".b_out");
  const int logits = program->AddNode(OpType::kMatMulAddBias, {hidden, w, b_node},
                                      {}, name_ + ": output layer");
  AttrMap sig;
  sig.Set("op", static_cast<int64_t>(UnaryOpKind::kSigmoid));
  const int prob = program->AddNode(OpType::kUnary, {logits}, sig,
                                    name_ + ": sigmoid");
  // Threshold to {0,1} so SUM(PREDICT(...)) counts predicted positives.
  TQP_ASSIGN_OR_RETURN(Tensor half, Tensor::Full(DType::kFloat64, 1, 1, 0.5));
  const int half_node = program->AddConstant(std::move(half), "0.5");
  AttrMap gt;
  gt.Set("op", static_cast<int64_t>(CompareOpKind::kGt));
  const int positive = program->AddNode(OpType::kCompare, {prob, half_node}, gt,
                                        name_ + ": threshold");
  AttrMap to_f64;
  to_f64.Set("dtype", static_cast<int64_t>(DType::kFloat64));
  return program->AddNode(OpType::kCast, {positive}, to_f64, name_);
}

double SentimentClassifier::ScoreText(const std::string& text) const {
  const std::vector<int64_t> ids = TokenizeOne(text, vocab_, max_tokens_);
  const double* pe = embedding_.data<double>();
  const double* pw = w_out_.data<double>();
  const int64_t h = embedding_.cols();
  double out = b_out_;
  for (int64_t c = 0; c < h; ++c) {
    double bag = 0;
    for (int64_t id : ids) bag += pe[id * h + c];
    if (bag > 0) out += bag * pw[c];
  }
  return 1.0 / (1.0 + std::exp(-out));
}

Result<Scalar> SentimentClassifier::PredictRow(
    const std::vector<Scalar>& args) const {
  if (args.size() != 1 || !args[0].is_string()) {
    return Status::Invalid(name_ + " expects one string argument");
  }
  return Scalar(ScoreText(args[0].string_value()) > 0.5 ? 1.0 : 0.0);
}

}  // namespace tqp::ml
