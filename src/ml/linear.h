#ifndef TQP_ML_LINEAR_H_
#define TQP_ML_LINEAR_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace tqp::ml {

/// \brief Linear regression, y = X w + b — the scikit-learn
/// LinearRegression/Ridge stand-in. Compiles to concat_cols -> matmul+bias.
class LinearRegressionModel : public Model {
 public:
  /// \brief Fits by ridge-regularized normal equations (exact for the small
  /// feature counts PREDICT queries use). X is (n x d) float64, y (n x 1).
  static Result<std::shared_ptr<LinearRegressionModel>> Fit(
      const std::string& name, const Tensor& features, const Tensor& targets,
      double l2 = 1e-8);

  LinearRegressionModel(std::string name, std::vector<double> weights, double bias)
      : name_(std::move(name)), weights_(std::move(weights)), bias_(bias) {}

  std::string name() const override { return name_; }
  Result<LogicalType> CheckArgs(const std::vector<LogicalType>& args) const override;
  Result<int> BuildGraph(TensorProgram* program,
                         const std::vector<int>& arg_nodes) const override;
  Result<Scalar> PredictRow(const std::vector<Scalar>& args) const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::string name_;
  std::vector<double> weights_;
  double bias_;
};

/// \brief Binary logistic regression, p = sigmoid(X w + b); outputs the
/// positive-class probability. Fitted by full-batch gradient descent.
struct LogisticFitOptions {
  int epochs = 200;
  double learning_rate = 0.1;
  double l2 = 1e-4;
};

class LogisticRegressionModel : public Model {
 public:
  using FitOptions = LogisticFitOptions;
  /// `labels` are 0/1 in float64.
  static Result<std::shared_ptr<LogisticRegressionModel>> Fit(
      const std::string& name, const Tensor& features, const Tensor& labels,
      const FitOptions& options = {});

  LogisticRegressionModel(std::string name, std::vector<double> weights,
                          double bias)
      : name_(std::move(name)), weights_(std::move(weights)), bias_(bias) {}

  std::string name() const override { return name_; }
  Result<LogicalType> CheckArgs(const std::vector<LogicalType>& args) const override;
  Result<int> BuildGraph(TensorProgram* program,
                         const std::vector<int>& arg_nodes) const override;
  Result<Scalar> PredictRow(const std::vector<Scalar>& args) const override;

 private:
  std::string name_;
  std::vector<double> weights_;
  double bias_;
};

/// \brief Shared helper: concat per-column PREDICT args into an (n x d)
/// float64 feature matrix node (casting each numeric arg).
Result<int> BuildFeatureMatrix(TensorProgram* program,
                               const std::vector<int>& arg_nodes);

/// \brief Shared helper: validates all args are numeric, returns kFloat64.
Result<LogicalType> CheckNumericArgs(const std::vector<LogicalType>& args,
                                     size_t expected);

}  // namespace tqp::ml

#endif  // TQP_ML_LINEAR_H_
