#ifndef TQP_ML_MLP_H_
#define TQP_ML_MLP_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace tqp::ml {

/// \brief One-hidden-layer perceptron: y = act2(act1(X W1 + b1) W2 + b2).
/// Stand-in for the pre-trained neural networks of demo scenario 3; compiles
/// to two matmul+bias nodes plus activations.
struct MlpFitOptions {
  int hidden = 16;
  int epochs = 300;
  double learning_rate = 0.05;
  uint64_t seed = 7;
  /// Train a binary classifier (sigmoid output + log loss) instead of a
  /// regressor (linear output + squared loss).
  bool classification = false;
};

class MlpModel : public Model {
 public:
  using FitOptions = MlpFitOptions;

  static Result<std::shared_ptr<MlpModel>> Fit(const std::string& name,
                                               const Tensor& features,
                                               const Tensor& targets,
                                               const FitOptions& options = {});

  MlpModel(std::string name, Tensor w1, Tensor b1, Tensor w2, Tensor b2,
           bool sigmoid_output)
      : name_(std::move(name)), w1_(std::move(w1)), b1_(std::move(b1)),
        w2_(std::move(w2)), b2_(std::move(b2)), sigmoid_output_(sigmoid_output) {}

  std::string name() const override { return name_; }
  Result<LogicalType> CheckArgs(const std::vector<LogicalType>& args) const override;
  Result<int> BuildGraph(TensorProgram* program,
                         const std::vector<int>& arg_nodes) const override;
  Result<Scalar> PredictRow(const std::vector<Scalar>& args) const override;

 private:
  std::string name_;
  Tensor w1_;  // (d x h) float64
  Tensor b1_;  // (1 x h)
  Tensor w2_;  // (h x 1)
  Tensor b2_;  // (1 x 1)
  bool sigmoid_output_;
};

}  // namespace tqp::ml

#endif  // TQP_ML_MLP_H_
