#include "ml/linear.h"

#include <cmath>

namespace tqp::ml {

namespace {

// Solves the symmetric positive-definite system A x = b in place (Gaussian
// elimination with partial pivoting; d is tiny for PREDICT signatures).
Status SolveLinearSystem(std::vector<std::vector<double>>* a,
                         std::vector<double>* b) {
  const size_t d = b->size();
  for (size_t col = 0; col < d; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < d; ++r) {
      if (std::abs((*a)[r][col]) > std::abs((*a)[pivot][col])) pivot = r;
    }
    if (std::abs((*a)[pivot][col]) < 1e-12) {
      return Status::Invalid("singular system in linear fit");
    }
    std::swap((*a)[col], (*a)[pivot]);
    std::swap((*b)[col], (*b)[pivot]);
    for (size_t r = col + 1; r < d; ++r) {
      const double f = (*a)[r][col] / (*a)[col][col];
      for (size_t c = col; c < d; ++c) (*a)[r][c] -= f * (*a)[col][c];
      (*b)[r] -= f * (*b)[col];
    }
  }
  for (size_t col = d; col-- > 0;) {
    for (size_t c = col + 1; c < d; ++c) {
      (*b)[col] -= (*a)[col][c] * (*b)[c];
    }
    (*b)[col] /= (*a)[col][col];
  }
  return Status::OK();
}

Status CheckFitInputs(const Tensor& features, const Tensor& targets) {
  if (features.dtype() != DType::kFloat64 || targets.dtype() != DType::kFloat64) {
    return Status::TypeError("Fit expects float64 tensors");
  }
  if (features.rows() != targets.rows() || targets.cols() != 1) {
    return Status::Invalid("Fit: shape mismatch");
  }
  if (features.rows() == 0) return Status::Invalid("Fit: empty training set");
  return Status::OK();
}

double DotBias(const std::vector<double>& w, double bias,
               const std::vector<Scalar>& args) {
  double acc = bias;
  for (size_t i = 0; i < w.size(); ++i) acc += w[i] * args[i].AsDouble();
  return acc;
}

}  // namespace

Result<LogicalType> CheckNumericArgs(const std::vector<LogicalType>& args,
                                     size_t expected) {
  if (args.size() != expected) {
    return Status::BindError("model expects " + std::to_string(expected) +
                             " arguments, got " + std::to_string(args.size()));
  }
  for (LogicalType t : args) {
    if (!IsNumericType(t)) {
      return Status::TypeError("model arguments must be numeric");
    }
  }
  return LogicalType::kFloat64;
}

Result<int> BuildFeatureMatrix(TensorProgram* program,
                               const std::vector<int>& arg_nodes) {
  if (arg_nodes.empty()) return Status::Invalid("model needs arguments");
  std::vector<int> casted;
  AttrMap cast_attrs;
  cast_attrs.Set("dtype", static_cast<int64_t>(DType::kFloat64));
  for (int node : arg_nodes) {
    casted.push_back(
        program->AddNode(OpType::kCast, {node}, cast_attrs, "feature"));
  }
  if (casted.size() == 1) return casted[0];
  return program->AddNode(OpType::kConcatCols, casted, {}, "features");
}

Result<std::shared_ptr<LinearRegressionModel>> LinearRegressionModel::Fit(
    const std::string& name, const Tensor& features, const Tensor& targets,
    double l2) {
  TQP_RETURN_NOT_OK(CheckFitInputs(features, targets));
  const int64_t n = features.rows();
  const size_t d = static_cast<size_t>(features.cols()) + 1;  // + bias column
  const double* x = features.data<double>();
  const double* y = targets.data<double>();
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < d; ++a) {
      const double xa = a + 1 == d ? 1.0 : x[i * features.cols() + static_cast<int64_t>(a)];
      xty[a] += xa * y[i];
      for (size_t b = a; b < d; ++b) {
        const double xb =
            b + 1 == d ? 1.0 : x[i * features.cols() + static_cast<int64_t>(b)];
        xtx[a][b] += xa * xb;
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    xtx[a][a] += l2;
    for (size_t b = 0; b < a; ++b) xtx[a][b] = xtx[b][a];
  }
  TQP_RETURN_NOT_OK(SolveLinearSystem(&xtx, &xty));
  const double bias = xty.back();
  xty.pop_back();
  return std::make_shared<LinearRegressionModel>(name, std::move(xty), bias);
}

Result<LogicalType> LinearRegressionModel::CheckArgs(
    const std::vector<LogicalType>& args) const {
  return CheckNumericArgs(args, weights_.size());
}

Result<int> LinearRegressionModel::BuildGraph(
    TensorProgram* program, const std::vector<int>& arg_nodes) const {
  if (arg_nodes.size() != weights_.size()) {
    return Status::Invalid("argument count mismatch for " + name_);
  }
  TQP_ASSIGN_OR_RETURN(int x, BuildFeatureMatrix(program, arg_nodes));
  Tensor w = Tensor::FromVector2D(weights_, static_cast<int64_t>(weights_.size()), 1);
  TQP_ASSIGN_OR_RETURN(Tensor b, Tensor::Full(DType::kFloat64, 1, 1, bias_));
  const int w_node = program->AddConstant(std::move(w), name_ + ".weights");
  const int b_node = program->AddConstant(std::move(b), name_ + ".bias");
  return program->AddNode(OpType::kMatMulAddBias, {x, w_node, b_node}, {},
                          name_ + ": linear");
}

Result<Scalar> LinearRegressionModel::PredictRow(
    const std::vector<Scalar>& args) const {
  if (args.size() != weights_.size()) {
    return Status::Invalid("argument count mismatch for " + name_);
  }
  return Scalar(DotBias(weights_, bias_, args));
}

Result<std::shared_ptr<LogisticRegressionModel>> LogisticRegressionModel::Fit(
    const std::string& name, const Tensor& features, const Tensor& labels,
    const FitOptions& options) {
  TQP_RETURN_NOT_OK(CheckFitInputs(features, labels));
  const int64_t n = features.rows();
  const int64_t d = features.cols();
  const double* x = features.data<double>();
  const double* y = labels.data<double>();
  std::vector<double> w(static_cast<size_t>(d), 0.0);
  double bias = 0.0;
  std::vector<double> grad(static_cast<size_t>(d), 0.0);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double z = bias;
      for (int64_t j = 0; j < d; ++j) z += w[static_cast<size_t>(j)] * x[i * d + j];
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double err = p - y[i];
      for (int64_t j = 0; j < d; ++j) grad[static_cast<size_t>(j)] += err * x[i * d + j];
      grad_b += err;
    }
    const double scale = options.learning_rate / static_cast<double>(n);
    for (int64_t j = 0; j < d; ++j) {
      w[static_cast<size_t>(j)] -=
          scale * (grad[static_cast<size_t>(j)] + options.l2 * w[static_cast<size_t>(j)]);
    }
    bias -= scale * grad_b;
  }
  return std::make_shared<LogisticRegressionModel>(name, std::move(w), bias);
}

Result<LogicalType> LogisticRegressionModel::CheckArgs(
    const std::vector<LogicalType>& args) const {
  return CheckNumericArgs(args, weights_.size());
}

Result<int> LogisticRegressionModel::BuildGraph(
    TensorProgram* program, const std::vector<int>& arg_nodes) const {
  if (arg_nodes.size() != weights_.size()) {
    return Status::Invalid("argument count mismatch for " + name_);
  }
  TQP_ASSIGN_OR_RETURN(int x, BuildFeatureMatrix(program, arg_nodes));
  Tensor w = Tensor::FromVector2D(weights_, static_cast<int64_t>(weights_.size()), 1);
  TQP_ASSIGN_OR_RETURN(Tensor b, Tensor::Full(DType::kFloat64, 1, 1, bias_));
  const int w_node = program->AddConstant(std::move(w), name_ + ".weights");
  const int b_node = program->AddConstant(std::move(b), name_ + ".bias");
  const int z = program->AddNode(OpType::kMatMulAddBias, {x, w_node, b_node}, {},
                                 name_ + ": linear");
  AttrMap sig;
  sig.Set("op", static_cast<int64_t>(UnaryOpKind::kSigmoid));
  return program->AddNode(OpType::kUnary, {z}, sig, name_ + ": sigmoid");
}

Result<Scalar> LogisticRegressionModel::PredictRow(
    const std::vector<Scalar>& args) const {
  if (args.size() != weights_.size()) {
    return Status::Invalid("argument count mismatch for " + name_);
  }
  const double z = DotBias(weights_, bias_, args);
  return Scalar(1.0 / (1.0 + std::exp(-z)));
}

}  // namespace tqp::ml
