#ifndef TQP_ML_TREE_H_
#define TQP_ML_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace tqp::ml {

/// \brief One node of a fitted binary decision tree (array encoding).
struct TreeNode {
  bool is_leaf = true;
  int feature = 0;         // internal: feature index tested
  double threshold = 0.0;  // internal: go left when x[feature] < threshold
  int left = -1;
  int right = -1;
  double value = 0.0;      // leaf: regression value / class id / class share
};

/// \brief A CART decision tree (the scikit-learn DecisionTree stand-in).
/// Regression trees minimize variance; classification trees minimize Gini
/// over integer class labels and store the majority class at each leaf.
struct TreeFitOptions {
  int max_depth = 6;
  int min_samples_leaf = 2;
  bool classification = false;
  int num_classes = 2;  // classification only
};

class DecisionTree {
 public:
  using FitOptions = TreeFitOptions;

  static Result<DecisionTree> Fit(const Tensor& features, const Tensor& targets,
                                  const FitOptions& options = {});

  /// \brief Scalar inference over a dense feature row.
  double PredictOne(const double* x) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  int num_features() const { return num_features_; }
  int depth() const { return depth_; }
  int num_leaves() const;
  int num_internal() const;

  /// \brief Direct construction (tests / hand-built trees).
  static DecisionTree FromNodes(std::vector<TreeNode> nodes, int num_features);

 private:
  std::vector<TreeNode> nodes_;
  int num_features_ = 0;
  int depth_ = 0;
};

/// \brief Tensor-compilation strategies for trees — the two Hummingbird
/// strategies TQP inherits (paper §3.3, DESIGN.md ABL4): kGemm turns the tree
/// into three dense matmuls; kTreeTraversal iterates gather-based descent
/// `depth` times.
enum class TreeStrategy : int8_t { kGemm = 0, kTreeTraversal = 1 };

const char* TreeStrategyName(TreeStrategy s);

/// \brief Appends tree inference over feature-matrix node `x_node` (n x d,
/// float64) and returns the (n x 1) float64 prediction node.
Result<int> BuildTreeGraph(TensorProgram* program, int x_node,
                           const DecisionTree& tree, TreeStrategy strategy,
                           const std::string& label);

/// \brief PREDICT-able single decision tree.
class DecisionTreeModel : public Model {
 public:
  DecisionTreeModel(std::string name, DecisionTree tree,
                    TreeStrategy strategy = TreeStrategy::kGemm)
      : name_(std::move(name)), tree_(std::move(tree)), strategy_(strategy) {}

  std::string name() const override { return name_; }
  Result<LogicalType> CheckArgs(const std::vector<LogicalType>& args) const override;
  Result<int> BuildGraph(TensorProgram* program,
                         const std::vector<int>& arg_nodes) const override;
  Result<Scalar> PredictRow(const std::vector<Scalar>& args) const override;

  const DecisionTree& tree() const { return tree_; }

 private:
  std::string name_;
  DecisionTree tree_;
  TreeStrategy strategy_;
};

/// \brief Bagged ensemble of CART trees; prediction is the tree average
/// (probability for 0/1 classification labels, value for regression).
struct ForestFitOptions {
  int num_trees = 10;
  TreeFitOptions tree;
  uint64_t seed = 1234;
};

class RandomForestModel : public Model {
 public:
  using FitOptions = ForestFitOptions;
  static Result<std::shared_ptr<RandomForestModel>> Fit(
      const std::string& name, const Tensor& features, const Tensor& targets,
      const FitOptions& options = {},
      TreeStrategy strategy = TreeStrategy::kGemm);

  RandomForestModel(std::string name, std::vector<DecisionTree> trees,
                    TreeStrategy strategy)
      : name_(std::move(name)), trees_(std::move(trees)), strategy_(strategy) {}

  std::string name() const override { return name_; }
  Result<LogicalType> CheckArgs(const std::vector<LogicalType>& args) const override;
  Result<int> BuildGraph(TensorProgram* program,
                         const std::vector<int>& arg_nodes) const override;
  Result<Scalar> PredictRow(const std::vector<Scalar>& args) const override;

  const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  std::string name_;
  std::vector<DecisionTree> trees_;
  TreeStrategy strategy_;
};

}  // namespace tqp::ml

#endif  // TQP_ML_TREE_H_
