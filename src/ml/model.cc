#include "ml/model.h"

#include "graph/executor.h"

namespace tqp::ml {

Result<Tensor> Model::PredictBatch(const std::vector<Tensor>& args) const {
  auto program = std::make_shared<TensorProgram>();
  std::vector<int> arg_nodes;
  for (size_t i = 0; i < args.size(); ++i) {
    arg_nodes.push_back(program->AddInput("arg" + std::to_string(i)));
  }
  TQP_ASSIGN_OR_RETURN(int out, BuildGraph(program.get(), arg_nodes));
  program->MarkOutput(out);
  TQP_ASSIGN_OR_RETURN(auto executor,
                       MakeExecutor(ExecutorTarget::kEager, program));
  TQP_ASSIGN_OR_RETURN(std::vector<Tensor> outputs, executor->Run(args));
  return outputs[0];
}

void ModelRegistry::Register(std::shared_ptr<const Model> model) {
  models_.insert_or_assign(model->name(), std::move(model));
}

Result<std::shared_ptr<const Model>> ModelRegistry::Get(
    const std::string& name) const {
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::KeyError("model '" + name + "' is not registered");
  }
  return it->second;
}

bool ModelRegistry::Has(const std::string& name) const {
  return models_.find(name) != models_.end();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

Result<LogicalType> ModelRegistry::CheckPredictCall(
    const std::string& model, const std::vector<LogicalType>& args) const {
  TQP_ASSIGN_OR_RETURN(auto m, Get(model));
  return m->CheckArgs(args);
}

}  // namespace tqp::ml
