#ifndef TQP_ML_MODEL_H_
#define TQP_ML_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/program.h"
#include "plan/binder.h"
#include "tensor/scalar.h"

namespace tqp::ml {

/// \brief A trained model that can compile itself into a tensor program —
/// the TQP/Hummingbird contract (§3.3): models are not called out to an
/// external runtime, they *become part of the query's tensor program*.
class Model {
 public:
  virtual ~Model() = default;

  virtual std::string name() const = 0;

  /// \brief Number and types of the PREDICT arguments this model accepts,
  /// and its output type (kFloat64 for scores/regressions).
  virtual Result<LogicalType> CheckArgs(
      const std::vector<LogicalType>& args) const = 0;

  /// \brief Appends the model's inference computation to `program`.
  /// `arg_nodes` are graph node ids carrying the bound PREDICT arguments
  /// (numeric columns as (n x 1) tensors, strings as (n x m) uint8).
  /// Returns the node id of the (n x 1) float64 prediction.
  virtual Result<int> BuildGraph(TensorProgram* program,
                                 const std::vector<int>& arg_nodes) const = 0;

  /// \brief Batch inference over materialized argument tensors (used by the
  /// two-runtime baseline, ABL5): runs a private graph executor internally.
  Result<Tensor> PredictBatch(const std::vector<Tensor>& args) const;

  /// \brief Row-at-a-time inference for the Volcano oracle engine.
  virtual Result<Scalar> PredictRow(const std::vector<Scalar>& args) const = 0;
};

/// \brief Name -> model registry; implements the binder's ModelCatalog so
/// PREDICT('name', ...) type-checks at bind time.
class ModelRegistry : public ModelCatalog {
 public:
  void Register(std::shared_ptr<const Model> model);
  Result<std::shared_ptr<const Model>> Get(const std::string& name) const;
  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

  Result<LogicalType> CheckPredictCall(
      const std::string& model,
      const std::vector<LogicalType>& args) const override;

 private:
  std::map<std::string, std::shared_ptr<const Model>> models_;
};

}  // namespace tqp::ml

#endif  // TQP_ML_MODEL_H_
