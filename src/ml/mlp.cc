#include "ml/mlp.h"

#include <cmath>

#include "common/random.h"
#include "ml/linear.h"

namespace tqp::ml {

Result<std::shared_ptr<MlpModel>> MlpModel::Fit(const std::string& name,
                                                const Tensor& features,
                                                const Tensor& targets,
                                                const FitOptions& options) {
  if (features.dtype() != DType::kFloat64 || targets.dtype() != DType::kFloat64) {
    return Status::TypeError("MlpModel::Fit expects float64 tensors");
  }
  const int64_t n = features.rows();
  const int64_t d = features.cols();
  const int64_t h = options.hidden;
  if (n == 0 || targets.rows() != n) return Status::Invalid("MlpModel::Fit: shapes");
  Rng rng(options.seed);
  TQP_ASSIGN_OR_RETURN(Tensor w1, Tensor::Empty(DType::kFloat64, d, h));
  TQP_ASSIGN_OR_RETURN(Tensor b1, Tensor::Full(DType::kFloat64, 1, h, 0.0));
  TQP_ASSIGN_OR_RETURN(Tensor w2, Tensor::Empty(DType::kFloat64, h, 1));
  TQP_ASSIGN_OR_RETURN(Tensor b2, Tensor::Full(DType::kFloat64, 1, 1, 0.0));
  const double scale1 = std::sqrt(2.0 / static_cast<double>(d));
  const double scale2 = std::sqrt(2.0 / static_cast<double>(h));
  for (int64_t i = 0; i < d * h; ++i) {
    w1.mutable_data<double>()[i] = rng.NextGaussian() * scale1;
  }
  for (int64_t i = 0; i < h; ++i) {
    w2.mutable_data<double>()[i] = rng.NextGaussian() * scale2;
  }
  const double* x = features.data<double>();
  const double* y = targets.data<double>();
  double* pw1 = w1.mutable_data<double>();
  double* pb1 = b1.mutable_data<double>();
  double* pw2 = w2.mutable_data<double>();
  double* pb2 = b2.mutable_data<double>();
  std::vector<double> hidden(static_cast<size_t>(h));
  std::vector<double> dhidden(static_cast<size_t>(h));
  // Plain SGD, one row at a time (training happens offline; inference is
  // the part that must be a tensor program).
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < h; ++j) {
        double z = pb1[j];
        for (int64_t k = 0; k < d; ++k) z += x[i * d + k] * pw1[k * h + j];
        hidden[static_cast<size_t>(j)] = z > 0 ? z : 0;  // ReLU
      }
      double out = pb2[0];
      for (int64_t j = 0; j < h; ++j) out += hidden[static_cast<size_t>(j)] * pw2[j];
      double delta;
      if (options.classification) {
        const double p = 1.0 / (1.0 + std::exp(-out));
        delta = p - y[i];  // dLogLoss/dz
      } else {
        delta = out - y[i];  // dMSE/2 / dz
      }
      const double lr = options.learning_rate;
      for (int64_t j = 0; j < h; ++j) {
        const double grad_h =
            hidden[static_cast<size_t>(j)] > 0 ? delta * pw2[j] : 0.0;
        dhidden[static_cast<size_t>(j)] = grad_h;
        pw2[j] -= lr * delta * hidden[static_cast<size_t>(j)];
      }
      pb2[0] -= lr * delta;
      for (int64_t j = 0; j < h; ++j) {
        const double grad_h = dhidden[static_cast<size_t>(j)];
        if (grad_h == 0.0) continue;
        for (int64_t k = 0; k < d; ++k) pw1[k * h + j] -= lr * grad_h * x[i * d + k];
        pb1[j] -= lr * grad_h;
      }
    }
  }
  return std::make_shared<MlpModel>(name, std::move(w1), std::move(b1),
                                    std::move(w2), std::move(b2),
                                    options.classification);
}

Result<LogicalType> MlpModel::CheckArgs(const std::vector<LogicalType>& args) const {
  return CheckNumericArgs(args, static_cast<size_t>(w1_.rows()));
}

Result<int> MlpModel::BuildGraph(TensorProgram* program,
                                 const std::vector<int>& arg_nodes) const {
  TQP_ASSIGN_OR_RETURN(int x, BuildFeatureMatrix(program, arg_nodes));
  const int w1 = program->AddConstant(w1_, name_ + ".w1");
  const int b1 = program->AddConstant(b1_, name_ + ".b1");
  const int w2 = program->AddConstant(w2_, name_ + ".w2");
  const int b2 = program->AddConstant(b2_, name_ + ".b2");
  const int z1 = program->AddNode(OpType::kMatMulAddBias, {x, w1, b1}, {},
                                  name_ + ": layer1");
  AttrMap relu;
  relu.Set("op", static_cast<int64_t>(UnaryOpKind::kRelu));
  const int h = program->AddNode(OpType::kUnary, {z1}, relu, name_ + ": relu");
  const int z2 = program->AddNode(OpType::kMatMulAddBias, {h, w2, b2}, {},
                                  name_ + ": layer2");
  if (!sigmoid_output_) return z2;
  AttrMap sig;
  sig.Set("op", static_cast<int64_t>(UnaryOpKind::kSigmoid));
  return program->AddNode(OpType::kUnary, {z2}, sig, name_ + ": sigmoid");
}

Result<Scalar> MlpModel::PredictRow(const std::vector<Scalar>& args) const {
  const int64_t d = w1_.rows();
  const int64_t h = w1_.cols();
  if (static_cast<int64_t>(args.size()) != d) {
    return Status::Invalid("argument count mismatch for " + name_);
  }
  const double* pw1 = w1_.data<double>();
  const double* pb1 = b1_.data<double>();
  const double* pw2 = w2_.data<double>();
  double out = b2_.data<double>()[0];
  for (int64_t j = 0; j < h; ++j) {
    double z = pb1[j];
    for (int64_t k = 0; k < d; ++k) z += args[static_cast<size_t>(k)].AsDouble() * pw1[k * h + j];
    if (z > 0) out += z * pw2[j];
  }
  if (sigmoid_output_) out = 1.0 / (1.0 + std::exp(-out));
  return Scalar(out);
}

}  // namespace tqp::ml
