#ifndef TQP_DEVICE_DEVICE_H_
#define TQP_DEVICE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/sync.h"

namespace tqp {

/// \brief Hardware backends a tensor program can target.
///
/// The paper runs on real CPUs and an NVIDIA P100. This environment has no
/// GPU, so `kCudaSim` executes every kernel bit-exactly on the host while a
/// roofline cost model accumulates a *simulated* device clock (see
/// DESIGN.md §1). Results are identical across devices; only timing differs.
enum class DeviceKind : int8_t {
  kCpu = 0,
  kCudaSim = 1,
};

inline constexpr int kNumDevices = 2;

const char* DeviceKindName(DeviceKind kind);

/// \brief Cost descriptor for one kernel launch, used by the GPU simulator.
struct KernelCost {
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t flops = 0;
  /// Number of dependent passes over the data (e.g. log n for sorts); each
  /// pass pays a kernel launch.
  int64_t passes = 1;
};

/// \brief Roofline parameters for a simulated accelerator.
///
/// Defaults are NVIDIA P100 (PCIe) published specs — the card used in the
/// paper's evaluation (§2.3).
struct AcceleratorSpec {
  double mem_bandwidth_bytes_per_sec = 732.0e9;  // HBM2
  double flops_per_sec = 9.3e12;                 // fp32 peak
  double kernel_launch_sec = 5.0e-6;             // typical CUDA launch latency
  double pcie_bytes_per_sec = 12.0e9;            // effective PCIe 3.0 x16
  /// Achievable fraction of peak for irregular (gather/hash) kernels.
  double irregular_efficiency = 0.25;
};

/// \brief A compute device: identity plus (for simulated devices) a clock.
///
/// Thread-safe: the device objects are process-wide singletons and the
/// runtime executors meter kernels from concurrent queries, so the clock
/// updates are internally serialized. Clock *reads* against in-flight
/// queries are racy by nature — reset and read around a run, as the benches
/// do.
class Device {
 public:
  Device(DeviceKind kind, AcceleratorSpec spec)
      : kind_(kind), spec_(spec) {}

  DeviceKind kind() const { return kind_; }
  std::string name() const { return DeviceKindName(kind_); }
  bool is_simulated() const { return kind_ != DeviceKind::kCpu; }
  const AcceleratorSpec& spec() const { return spec_; }

  /// \brief Charges one kernel to the simulated clock (no-op on CPU).
  /// Regular kernels are bandwidth/compute bound; `irregular` kernels
  /// (gather, hash probes) run at a derated bandwidth.
  void RecordKernel(const KernelCost& cost, bool irregular = false);

  /// \brief Charges a host<->device transfer of `bytes` over PCIe.
  void RecordTransfer(int64_t bytes);

  /// \brief Simulated elapsed seconds since the last ResetClock.
  double simulated_seconds() const {
    MutexLock lock(mu_);
    return sim_clock_sec_;
  }
  int64_t kernels_launched() const {
    MutexLock lock(mu_);
    return kernels_launched_;
  }
  int64_t bytes_transferred() const {
    MutexLock lock(mu_);
    return bytes_transferred_;
  }

  void ResetClock() {
    MutexLock lock(mu_);
    sim_clock_sec_ = 0.0;
    kernels_launched_ = 0;
    bytes_transferred_ = 0;
  }

 private:
  DeviceKind kind_;
  AcceleratorSpec spec_;
  mutable Mutex mu_;
  double sim_clock_sec_ TQP_GUARDED_BY(mu_) = 0.0;
  int64_t kernels_launched_ TQP_GUARDED_BY(mu_) = 0;
  int64_t bytes_transferred_ TQP_GUARDED_BY(mu_) = 0;
};

/// \brief Returns the process-wide device object for `kind`.
Device* GetDevice(DeviceKind kind);

/// \brief Modeled slowdown of the paper's web scenario environment relative
/// to this host: the paper runs the browser backend on a personal laptop
/// (Surface Book 3) inside a JavaScript/WASM runtime, while our bytecode
/// interpreter executes on the benchmark host. Web timings reported by the
/// benches are interpreter wall time x this factor (documented in
/// EXPERIMENTS.md; the interpreter itself is already scalar/boxed).
inline constexpr double kWebEnvironmentDerating = 4.0;

}  // namespace tqp

#endif  // TQP_DEVICE_DEVICE_H_
