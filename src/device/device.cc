#include "device/device.h"

#include <algorithm>

namespace tqp {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu:
      return "cpu";
    case DeviceKind::kCudaSim:
      return "cuda_sim";
  }
  return "unknown";
}

void Device::RecordKernel(const KernelCost& cost, bool irregular) {
  if (!is_simulated()) return;
  const double bw = spec_.mem_bandwidth_bytes_per_sec *
                    (irregular ? spec_.irregular_efficiency : 1.0);
  const double mem_sec =
      static_cast<double>(cost.bytes_read + cost.bytes_written) / bw;
  const double compute_sec = static_cast<double>(cost.flops) / spec_.flops_per_sec;
  const double passes = static_cast<double>(std::max<int64_t>(1, cost.passes));
  // Each pass pays launch latency; memory/compute overlap within a pass.
  // The clock is a sum, so concurrent queries charge it in any order with
  // the same total.
  MutexLock lock(mu_);
  sim_clock_sec_ +=
      passes * spec_.kernel_launch_sec + std::max(mem_sec, compute_sec);
  kernels_launched_ += cost.passes;
}

void Device::RecordTransfer(int64_t bytes) {
  if (!is_simulated()) return;
  MutexLock lock(mu_);
  sim_clock_sec_ += static_cast<double>(bytes) / spec_.pcie_bytes_per_sec;
  bytes_transferred_ += bytes;
}

Device* GetDevice(DeviceKind kind) {
  // Never destroyed: devices have static storage duration for the process
  // lifetime (Google style: function-local static pointers).
  static Device* const kCpuDevice = new Device(DeviceKind::kCpu, AcceleratorSpec{});
  static Device* const kCudaSimDevice =
      new Device(DeviceKind::kCudaSim, AcceleratorSpec{});
  switch (kind) {
    case DeviceKind::kCpu:
      return kCpuDevice;
    case DeviceKind::kCudaSim:
      return kCudaSimDevice;
  }
  return kCpuDevice;
}

}  // namespace tqp
