// Demo scenario 2 (paper §3.2): multiple backend support. Compiles TPC-H Q6
// and Q14 once per backend — CPU (TorchScript-analog static executor),
// simulated GPU, and the portable-bytecode web analog — switching backends
// with a one-line option change (Figure 3), and verifies every backend
// returns the same answer.

#include <cstdio>

#include "compile/compiler.h"
#include "graph/serialize.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: example code

int main() {
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = 0.01;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  QueryCompiler compiler;

  for (int q : {6, 14}) {
    const std::string sql = tpch::QueryText(q).ValueOrDie();
    std::printf("==== TPC-H Q%d ====\n", q);

    // Backend 1: CPU, ahead-of-time planned (the default).
    CompileOptions options;
    options.target = ExecutorTarget::kStatic;
    options.device = DeviceKind::kCpu;
    CompiledQuery cpu_query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
    Table cpu_result = cpu_query.Run(catalog).ValueOrDie();

    // Backend 2: the simulated GPU — one line changed.
    options.device = DeviceKind::kCudaSim;
    CompiledQuery gpu_query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
    GetDevice(DeviceKind::kCudaSim)->ResetClock();
    Table gpu_result = gpu_query.Run(catalog).ValueOrDie();
    const double gpu_ms = GetDevice(DeviceKind::kCudaSim)->simulated_seconds() * 1e3;

    // Backend 3: export to portable bytecode and run the interpreter — the
    // browser path (the bytecode string is what would ship to the client).
    options.target = ExecutorTarget::kInterp;
    options.device = DeviceKind::kCpu;
    CompiledQuery web_query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
    const std::string bytecode = SerializeProgram(web_query.program());
    Table web_result = web_query.Run(catalog).ValueOrDie();

    std::printf("cpu result rows: %lld; gpu identical: %s (sim %.3f ms); "
                "web identical: %s (bytecode %zu bytes)\n",
                static_cast<long long>(cpu_result.num_rows()),
                TablesEqualUnordered(gpu_result, cpu_result).ok() ? "yes" : "NO",
                gpu_ms,
                TablesEqualUnordered(web_result, cpu_result).ok() ? "yes" : "NO",
                bytecode.size());
    std::printf("%s\n", cpu_result.ToString(5).c_str());
  }
  return 0;
}
