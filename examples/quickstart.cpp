// Quickstart: register a DataFrame-like table, compile a SQL query into a
// tensor program, and run it on different backends — the 10-line TQP
// workflow from the paper's demo (Figures 1 and 3).

#include <cstdio>

#include "baseline/volcano.h"
#include "compile/compiler.h"
#include "relational/ingest.h"

using namespace tqp;  // NOLINT: example code

int main() {
  // 1. Build an in-memory "DataFrame" (numeric columns ingest zero-copy).
  HostFrame frame;
  frame.AddInt64("item_id", {1, 2, 3, 4, 5, 6});
  frame.AddStrings("category", {"tea", "tea", "coffee", "tea", "coffee", "tea"});
  frame.AddDouble("price", {3.5, 4.0, 2.5, 5.0, 3.0, 4.5});
  frame.AddDouble("discount", {0.0, 0.1, 0.0, 0.2, 0.05, 0.1});
  IngestStats stats;
  Table items = frame.ToTable(/*zero_copy=*/true, &stats).ValueOrDie();
  std::printf("ingested %lld bytes zero-copy, %lld bytes converted\n",
              static_cast<long long>(stats.bytes_zero_copy),
              static_cast<long long>(stats.bytes_converted));

  // 2. Register it in the session catalog.
  Catalog catalog;
  catalog.RegisterTable("items", items);

  // 3. Compile a query: parse -> bind -> optimize -> tensor program.
  const std::string sql =
      "SELECT category, SUM(price * (1 - discount)) AS revenue, COUNT(*) AS n "
      "FROM items WHERE price >= 3.0 GROUP BY category ORDER BY revenue DESC";
  QueryCompiler compiler;
  CompileOptions options;
  options.target = ExecutorTarget::kStatic;  // the TorchScript-analog backend
  options.device = DeviceKind::kCpu;
  CompiledQuery query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
  std::printf("compiled tensor program: %d nodes\n", query.program().num_nodes());

  // 4. Execute.
  Table result = query.Run(catalog).ValueOrDie();
  std::printf("%s\n", result.ToString().c_str());

  // 5. Same query, one-line switch to the simulated GPU (Figure 3).
  options.device = DeviceKind::kCudaSim;
  CompiledQuery gpu_query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
  GetDevice(DeviceKind::kCudaSim)->ResetClock();
  Table gpu_result = gpu_query.Run(catalog).ValueOrDie();
  std::printf("simulated GPU time: %.1f us\n",
              GetDevice(DeviceKind::kCudaSim)->simulated_seconds() * 1e6);

  // 6. Cross-check against the row-oriented oracle engine.
  VolcanoEngine volcano(&catalog);
  Table oracle = volcano.ExecuteSql(sql).ValueOrDie();
  const Status same = TablesEqualUnordered(result, oracle);
  std::printf("matches Volcano oracle: %s\n", same.ok() ? "yes" : same.ToString().c_str());
  return same.ok() ? 0 : 1;
}
