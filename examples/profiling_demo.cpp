// Demo scenario 1 (paper §3.1): integration with data-science tooling.
//  (1) ingest a dataframe-like frame (numeric columns zero-copy),
//  (2) compile and run a TPC-H query over it,
//  (3) re-run with the profiler attached and inspect the per-operator
//      runtime breakdown (Figure 2) and the exported artifacts:
//      a chrome://tracing timeline and the Graphviz executor graph
//      (the TensorBoard stand-ins).

#include <cstdio>
#include <fstream>

#include "compile/compiler.h"
#include "profiler/profiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: example code

int main() {
  // (1) Generate the lineitem data (the notebook loads it via Pandas; the
  // generator hands us the same columnar tables).
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = 0.01;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  std::printf("lineitem: %lld rows\n",
              static_cast<long long>(
                  catalog.GetTable("lineitem").ValueOrDie().num_rows()));

  // (2) Compile and execute TPC-H Q6.
  const std::string sql = tpch::QueryText(6).ValueOrDie();
  QueryCompiler compiler;
  CompiledQuery query = compiler.CompileSql(sql, catalog).ValueOrDie();
  Table result = query.Run(catalog).ValueOrDie();
  std::printf("Q6 result:\n%s\n", result.ToString().c_str());

  // (3) Re-execute with the profiler activated.
  QueryProfiler profiler;
  CompileOptions options;
  options.target = ExecutorTarget::kEager;  // per-op granularity
  options.profiler = &profiler;
  CompiledQuery profiled = compiler.CompileSql(sql, catalog, options).ValueOrDie();
  TQP_CHECK_OK(profiled.Run(catalog).status());

  std::printf("runtime breakdown (Figure 2 view):\n%s\n",
              profiler.BreakdownReport().c_str());

  std::ofstream trace("/tmp/tqp_profile_trace.json");
  trace << profiler.ToChromeTrace("q6-demo");
  std::ofstream dot("/tmp/tqp_q6_executor.dot");
  dot << profiled.ToDot("q6");
  std::printf("artifacts: /tmp/tqp_profile_trace.json (chrome://tracing), "
              "/tmp/tqp_q6_executor.dot (graphviz)\n");
  return 0;
}
