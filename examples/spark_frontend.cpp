// Frontend decoupling (paper §2.2): TQP's parsing layer accepts a physical
// plan produced by an *external* system — the paper uses Spark SQL physical
// plans. This example hands TQP a Spark-shaped JSON plan (as a Spark driver
// would over the wire), compiles it into a tensor program, and shows that it
// matches the result of the equivalent SQL text compiled by TQP's own
// parser, on both CPU and the simulated GPU.

#include <cstdio>

#include "compile/compiler.h"
#include "frontend/spark_plan.h"
#include "tpch/dbgen.h"

using namespace tqp;  // NOLINT: example code

int main() {
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = 0.01;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));

  // A Q6-shaped physical plan as an external frontend would emit it:
  // aggregate over a filtered scan, operators and expressions pre-chosen.
  const char* kSparkPlan = R"({
    "node": "HashAggregate",
    "aggregateExpressions": ["SUM(l_extendedprice * l_discount) AS revenue"],
    "children": [{
      "node": "Filter",
      "condition": "l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
      "children": [{"node": "FileSourceScan", "table": "lineitem"}]
    }]
  })";

  PlanPtr plan = frontend::FromSparkPlanJson(kSparkPlan, catalog).ValueOrDie();
  std::printf("ingested physical plan:\n%s\n", plan->ToString().c_str());

  QueryCompiler compiler;
  CompileOptions options;
  CompiledQuery cpu = compiler.Compile(plan, options).ValueOrDie();
  Table cpu_result = cpu.Run(catalog).ValueOrDie();
  std::printf("CPU result:\n%s\n", cpu_result.ToString().c_str());

  options.device = DeviceKind::kCudaSim;
  CompiledQuery gpu = compiler.Compile(plan, options).ValueOrDie();
  GetDevice(DeviceKind::kCudaSim)->ResetClock();
  Table gpu_result = gpu.Run(catalog).ValueOrDie();
  std::printf("simulated GPU result matches: %s (clock %.1f us)\n",
              TablesEqualUnordered(gpu_result, cpu_result).ok() ? "yes" : "NO",
              GetDevice(DeviceKind::kCudaSim)->simulated_seconds() * 1e6);

  // Same query through TQP's own SQL frontend — identical answer.
  Table sql_result =
      compiler
          .CompileSql(
              "SELECT SUM(l_extendedprice * l_discount) AS revenue "
              "FROM lineitem WHERE l_shipdate >= DATE '1994-01-01' "
              "AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR "
              "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
              catalog, CompileOptions{})
          .ValueOrDie()
          .Run(catalog)
          .ValueOrDie();
  const bool same = TablesEqualUnordered(sql_result, cpu_result).ok();
  std::printf("SQL frontend agrees with plan frontend: %s\n",
              same ? "yes" : "NO");
  return same ? 0 : 1;
}
