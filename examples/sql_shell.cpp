// Interactive SQL shell over TQP: loads the TPC-H catalog at a chosen scale
// factor and compiles each typed statement into a tensor program, mirroring
// the paper's notebook experience (type a query, watch it run on the engine
// and backend of your choice).
//
// Usage: sql_shell [scale_factor]          (default 0.01)
//
// Shell commands (everything else is SQL):
//   \backend eager|static|interp|parallel|pipelined
//                                   choose the tensor executor (pipelined
//                                   streams morsels through fused operator
//                                   chains split at pipeline breakers)
//   \threads <n>                    parallel backends: worker threads (0 = auto)
//   \morsel <rows>                  parallel backends: rows per morsel (0 = auto)
//   \budget <mb>                    parallel backends: per-query memory budget
//                                   in MiB — a query over budget spills cold
//                                   intermediates to disk instead of growing
//                                   resident memory (0 = TQP_MEMORY_BUDGET_MB
//                                   default / unlimited)
//   \pool                           shared thread-pool and buffer-pool stats,
//                                   current budget and session spill totals
//   \device cpu|gpu                 choose the device (gpu = simulator)
//   \engine tqp|volcano|columnar    choose the engine family (columnar runs
//                                   its hash operators morsel-parallel when
//                                   the parallel backend is selected)
//   \plan <sql>                     print the optimized physical plan
//   \program <sql>                  print the compiled tensor program ops
//   \fusion on|off                  pipelined/static backends: single-pass
//                                   fused expression execution (ExprProgram
//                                   compiler + vectorized morsel interpreter)
//   \expr default|interp|simd       pipelined/static backends: execution tier
//                                   for fused ExprPrograms — the vectorized
//                                   interpreter or the CPUID-dispatched SIMD
//                                   kernels (default resolves from
//                                   TQP_EXPR_BACKEND; results bit-identical)
//   \adaptive on|off                pipelined backend: adapt morsel size
//                                   toward a target per-morsel service time
//                                   (bounded; results bit-identical)
//   \partitions on|off              parallel/pipelined backends: evaluate
//                                   pipeline breakers (join build, group-by,
//                                   sort) through the radix-partitioned
//                                   grace-join / partitioned-aggregation /
//                                   external-sort operators — budget-aware
//                                   partition counts, spillable partitions
//                                   (results bit-identical)
//   \explain pipelines <sql>        print the pipeline step DAG for <sql>
//                                   (steps, dependency edges, release sets),
//                                   then run it once and show each
//                                   pipeline's fused expression runs with
//                                   instruction and register-slot counts
//   \timeout <ms>                   per-query deadline in milliseconds for
//                                   every later statement (0 = the
//                                   TQP_QUERY_TIMEOUT_MS default / none); an
//                                   expired query stops at the next morsel
//                                   boundary with a Deadline exceeded error
//   \submit <sql>                   run <sql> asynchronously through a
//                                   QueryScheduler and return to the prompt;
//                                   the result prints when it completes (or
//                                   at the next \wait)
//   \cancel                         cooperatively cancel the in-flight
//                                   \submit query (it stops within one
//                                   morsel/step boundary and its memory
//                                   returns to the pool)
//   \wait                           block until the in-flight \submit query
//                                   finishes and print its outcome
//   Ctrl-C (SIGINT)                 cancels the currently running query —
//                                   synchronous or \submit — instead of
//                                   killing the shell
//   \tables                         list catalog tables
//   \q <n>                          run TPC-H query n
//   \sessions <n> <sql>             run <sql> from n concurrent sessions
//                                   through the QueryScheduler (plan cache,
//                                   admission queue) and print per-query stats
//   \metrics                        process metrics registry in Prometheus
//                                   text format (query latency histograms,
//                                   scheduler/step/plan-cache counters,
//                                   thread-pool and buffer-pool gauges)
//   \trace <file> <sql>             run <sql> once with whole-lifecycle
//                                   tracing and write a chrome://tracing /
//                                   Perfetto JSON timeline (compile, steps,
//                                   morsels, spills) to <file>
//   EXPLAIN ANALYZE <sql>           run <sql> once under the tracer and print
//                                   the per-step wall-time breakdown
//   quit                            exit

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include <vector>

#include "baseline/columnar.h"
#include "baseline/volcano.h"
#include "common/cancel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "compile/compiler.h"
#include "compile/pipeline.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/pipelined_executor.h"
#include "runtime/session.h"
#include "runtime/thread_pool.h"
#include "tensor/buffer_pool.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: example code

namespace {

struct ShellState {
  ExecutorTarget target = ExecutorTarget::kStatic;
  DeviceKind device = DeviceKind::kCpu;
  std::string engine = "tqp";
  int num_threads = 0;      // parallel backend: 0 = process-wide pool
  int64_t morsel_rows = 0;  // parallel backend: 0 = default morsel size
  bool expr_fusion = true;  // pipelined/static: fused expression execution
  // pipelined/static: expression tier (kDefault -> TQP_EXPR_BACKEND).
  ExprBackend expr_backend = ExprBackend::kDefault;
  bool adaptive_morsels = false;  // pipelined: service-time morsel sizing
  // parallel/pipelined: radix-partitioned pipeline breakers (grace join,
  // partitioned aggregation, external sort).
  bool partitioned_breakers = false;
  int64_t budget_mb = 0;    // per-query memory budget (0 = env default)
  // Per-query deadline for every later statement, milliseconds
  // (0 = TQP_QUERY_TIMEOUT_MS default / none).
  int64_t timeout_ms = 0;
  // Session-cumulative spill totals (across every query run so far).
  int64_t spilled_bytes_total = 0;
  int64_t spill_events_total = 0;
  // \submit machinery: a lazily (re)built scheduler plus the one in-flight
  // async query. The scheduler is only rebuilt while idle — its destructor
  // drains — so options changes apply from the next \submit onward.
  std::unique_ptr<runtime::QueryScheduler> scheduler;
  std::future<runtime::QueryOutcome> async_future;
  uint64_t async_query_id = 0;
  std::string async_sql;
};

// SIGINT routing: while a query runs, the handler cooperatively cancels it
// through this token instead of killing the shell. RequestCancel is one
// atomic CAS — async-signal-safe. At the prompt (null token) ^C is ignored.
std::atomic<CancellationToken*> g_sigint_token{nullptr};

// Set when ^C arrives with no synchronous query running — the \wait loop
// turns it into a scheduler Cancel of the in-flight \submit query.
std::atomic<int> g_sigint_flag{0};

extern "C" void HandleSigint(int) {
  CancellationToken* token = g_sigint_token.load(std::memory_order_acquire);
  if (token != nullptr) {
    token->RequestCancel(CancelReason::kUserCancelled);
    return;
  }
  g_sigint_flag.store(1, std::memory_order_release);
}

// Registers `token` as the SIGINT cancellation target for its scope.
class SigintCancelGuard {
 public:
  explicit SigintCancelGuard(CancellationToken* token) {
    g_sigint_token.store(token, std::memory_order_release);
  }
  ~SigintCancelGuard() {
    g_sigint_token.store(nullptr, std::memory_order_release);
  }
  SigintCancelGuard(const SigintCancelGuard&) = delete;
  SigintCancelGuard& operator=(const SigintCancelGuard&) = delete;
};

// Integer argument parser that reports instead of throwing (a typo in a
// shell command must not kill the session).
bool ParseInt64(const std::string& text, int64_t* out) {
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(begin, &end, 10);
  while (end != nullptr && *end == ' ') ++end;
  if (end == begin || (end != nullptr && *end != '\0') || errno == ERANGE) {
    std::printf("not a number: '%s'\n", text.c_str());
    return false;
  }
  *out = v;
  return true;
}

void RunSql(const std::string& sql, const Catalog& catalog, ShellState* state) {
  Stopwatch watch;
  Result<Table> result_or = Status::Internal("unset");
  double compile_ms = 0;
  QueryMemoryStats mem;
  bool have_mem = false;
  if (state->engine == "volcano") {
    VolcanoEngine volcano(&catalog);
    watch.Reset();
    result_or = volcano.ExecuteSql(sql);
  } else if (state->engine == "columnar") {
    // With the parallel backend selected, the columnar engine's hash
    // join/group-by operators run morsel-parallel on the shared pool.
    runtime::ThreadPool* pool = state->target == ExecutorTarget::kParallel
                                    ? runtime::ThreadPool::Global()
                                    : nullptr;
    ColumnarEngine columnar(&catalog, nullptr, DeviceKind::kCpu,
                            /*charge_transfers=*/true, pool);
    watch.Reset();
    result_or = columnar.ExecuteSql(sql);
  } else {
    QueryCompiler compiler;
    CompileOptions options;
    options.target = state->target;
    options.device = state->device;
    options.num_threads = state->num_threads;
    options.morsel_rows = state->morsel_rows;
    options.expr_fusion = state->expr_fusion;
    options.expr_backend = state->expr_backend;
    options.adaptive_morsels = state->adaptive_morsels;
    options.partitioned_breakers = state->partitioned_breakers;
    options.memory_budget_bytes = state->budget_mb << 20;
    options.deadline_ms = state->timeout_ms;
    watch.Reset();
    auto compiled_or = compiler.CompileSql(sql, catalog, options);
    compile_ms = watch.ElapsedSeconds() * 1e3;
    if (!compiled_or.ok()) {
      std::printf("error: %s\n", compiled_or.status().ToString().c_str());
      return;
    }
    if (state->device == DeviceKind::kCudaSim) {
      GetDevice(DeviceKind::kCudaSim)->ResetClock();
    }
    // Run under an explicit per-query scope so peak/spill stats are
    // reportable even when no budget is set.
    BufferPool::QueryScope memory_scope(
        BufferPool::ResolveMemoryBudget(state->budget_mb << 20));
    BufferPool::QueryScope::Attach memory_attach(&memory_scope);
    // Per-query cancellation: Ctrl-C signals this token (instead of killing
    // the shell) and \timeout arms its deadline; executors poll it at every
    // morsel/step boundary through the ambient attach.
    CancellationToken token;
    const int64_t deadline_ms = ResolveDeadlineMs(state->timeout_ms);
    if (deadline_ms > 0) token.SetDeadlineAfterMs(deadline_ms);
    CancellationToken::Attach token_attach(&token);
    SigintCancelGuard sigint_guard(&token);
    watch.Reset();
    result_or = compiled_or.ValueOrDie().Run(catalog);
    mem = memory_scope.stats();
    have_mem = true;
    state->spilled_bytes_total += mem.spilled_bytes;
    state->spill_events_total += mem.spill_events;
  }
  const double exec_ms = watch.ElapsedSeconds() * 1e3;
  if (!result_or.ok()) {
    std::printf("error: %s\n", result_or.status().ToString().c_str());
    return;
  }
  Table result = std::move(result_or).ValueOrDie();
  // Print at most 20 rows (ToString already truncates large tables).
  std::printf("%s", result.ToString(20).c_str());
  std::printf("(%lld rows)  compile %.2f ms, execute %.2f ms",
              static_cast<long long>(result.num_rows()), compile_ms, exec_ms);
  if (state->engine == "tqp" && state->device == DeviceKind::kCudaSim) {
    std::printf(", simulated GPU clock %.3f ms",
                GetDevice(DeviceKind::kCudaSim)->simulated_seconds() * 1e3);
  }
  std::printf("\n");
  if (have_mem && mem.spill_events > 0) {
    std::printf("memory: peak %.2f MiB under a %.1f MiB budget; spilled "
                "%.2f MiB in %lld evictions (%lld faults back in)\n",
                static_cast<double>(mem.peak_live_bytes) / (1 << 20),
                static_cast<double>(mem.budget_bytes) / (1 << 20),
                static_cast<double>(mem.spilled_bytes) / (1 << 20),
                static_cast<long long>(mem.spill_events),
                static_cast<long long>(mem.fault_events));
  }
}

void PrintPlanOrProgram(const std::string& sql, const Catalog& catalog,
                        bool program, const ShellState& state) {
  auto plan_or = PlanQuery(sql, catalog);
  if (!plan_or.ok()) {
    std::printf("error: %s\n", plan_or.status().ToString().c_str());
    return;
  }
  if (!program) {
    std::printf("%s", plan_or.ValueOrDie()->ToString().c_str());
    return;
  }
  QueryCompiler compiler;
  CompileOptions options;
  options.target = state.target;
  options.device = state.device;
  auto compiled_or = compiler.Compile(plan_or.ValueOrDie(), options);
  if (!compiled_or.ok()) {
    std::printf("error: %s\n", compiled_or.status().ToString().c_str());
    return;
  }
  std::printf("%s", compiled_or.ValueOrDie().program().ToString().c_str());
}

// Compiles <sql> for the pipelined backend and prints its step DAG: the
// schedule with dependency edges (which steps can overlap) and per-step
// last-release sets (where each intermediate's buffer returns to the pool).
void ExplainPipelines(const std::string& sql, const Catalog& catalog,
                      const ShellState& state) {
  QueryCompiler compiler;
  CompileOptions options;
  options.target = ExecutorTarget::kPipelined;
  options.device = DeviceKind::kCpu;
  options.num_threads = state.num_threads;
  options.morsel_rows = state.morsel_rows;
  options.expr_fusion = state.expr_fusion;
  options.expr_backend = state.expr_backend;
  options.adaptive_morsels = state.adaptive_morsels;
  options.partitioned_breakers = state.partitioned_breakers;
  auto compiled_or = compiler.CompileSql(sql, catalog, options);
  if (!compiled_or.ok()) {
    std::printf("error: %s\n", compiled_or.status().ToString().c_str());
    return;
  }
  const CompiledQuery& compiled = compiled_or.ValueOrDie();
  const PipelinePlan plan = BuildPipelinePlan(compiled.program());
  std::printf("%s", plan.ToString(compiled.program()).c_str());
  int released = 0;
  for (const PipelineStep& step : plan.schedule) {
    released += static_cast<int>(step.releases.size());
  }
  std::printf(
      "%zu steps (%zu pipelines, %d streamed ops), %d dependency edges, "
      "%d roots can start immediately, %d values released before the end\n",
      plan.schedule.size(), plan.pipelines.size(), plan.num_streamed_nodes(),
      plan.num_step_edges(), plan.num_root_steps(), released);
  if (!state.expr_fusion) {
    std::printf("expression fusion: off (\\fusion on to enable)\n");
    return;
  }
  // Expression fusion compiles lazily against runtime dtypes, so run the
  // query once, then report each pipeline's fused runs and register counts.
  auto result_or = compiled.Run(catalog);
  if (!result_or.ok()) {
    std::printf("execution error: %s\n", result_or.status().ToString().c_str());
    return;
  }
  const auto* pipelined =
      static_cast<const PipelinedExecutor*>(compiled.executor());
  std::printf("\nexpression fusion (after one run):\n%s",
              pipelined->FusionReport().c_str());
}

CompileOptions OptionsFromState(const ShellState& state) {
  CompileOptions options;
  options.target = state.target;
  options.device = state.device;
  options.num_threads = state.num_threads;
  options.morsel_rows = state.morsel_rows;
  options.expr_fusion = state.expr_fusion;
  options.expr_backend = state.expr_backend;
  options.adaptive_morsels = state.adaptive_morsels;
  options.partitioned_breakers = state.partitioned_breakers;
  options.memory_budget_bytes = state.budget_mb << 20;
  options.deadline_ms = state.timeout_ms;
  return options;
}

// Runs <sql> once with whole-lifecycle tracing attached and writes the
// Chrome/Perfetto timeline JSON to <file>.
void RunTrace(const std::string& file, const std::string& sql,
              const Catalog& catalog, const ShellState& state) {
  obs::TraceSession session;
  Result<Table> result_or = Status::Internal("unset");
  {
    obs::TraceContext ctx(&session, session.NextQueryId());
    obs::TraceSpan root("query", "query");
    root.SetDetail(sql);
    QueryCompiler compiler;
    auto compiled_or = [&] {
      obs::TraceSpan span("compile", "compile");
      return compiler.CompileSql(sql, catalog, OptionsFromState(state));
    }();
    if (!compiled_or.ok()) {
      std::printf("error: %s\n", compiled_or.status().ToString().c_str());
      return;
    }
    BufferPool::QueryScope memory_scope(
        BufferPool::ResolveMemoryBudget(state.budget_mb << 20));
    BufferPool::QueryScope::Attach memory_attach(&memory_scope);
    result_or = [&] {
      obs::TraceSpan span("query", "execute");
      return compiled_or.ValueOrDie().Run(catalog);
    }();
  }  // context detached: every thread's buffered events are flushed
  if (!result_or.ok()) {
    std::printf("error: %s\n", result_or.status().ToString().c_str());
    return;
  }
  std::FILE* f = std::fopen(file.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot open %s for writing\n", file.c_str());
    return;
  }
  const std::string json = session.ToChromeTrace("tqp_shell");
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%lld rows; %zu trace events -> %s (open in chrome://tracing "
              "or ui.perfetto.dev)\n",
              static_cast<long long>(result_or.ValueOrDie().num_rows()),
              session.num_events(), file.c_str());
}

// EXPLAIN ANALYZE <sql>: one traced run, per-step breakdown.
void RunExplainAnalyze(const std::string& sql, const Catalog& catalog,
                       const ShellState& state) {
  if (state.engine != "tqp") {
    std::printf("EXPLAIN ANALYZE is only available for the tqp engine\n");
    return;
  }
  auto result_or = obs::ExplainAnalyze(sql, catalog, OptionsFromState(state));
  if (!result_or.ok()) {
    std::printf("error: %s\n", result_or.status().ToString().c_str());
    return;
  }
  std::printf("%s", result_or.ValueOrDie().text.c_str());
}

// Fans one statement out from `n` concurrent QuerySessions sharing a
// scheduler: the first execution compiles, the rest hit the LRU plan cache.
void RunSessions(int n, const std::string& sql, const Catalog& catalog,
                 const ShellState& state) {
  runtime::SchedulerOptions options;
  options.compile.target = state.target;
  options.compile.device = state.device;
  options.compile.num_threads = state.num_threads;
  options.compile.morsel_rows = state.morsel_rows;
  options.compile.partitioned_breakers = state.partitioned_breakers;
  options.compile.memory_budget_bytes = state.budget_mb << 20;
  options.compile.deadline_ms = state.timeout_ms;
  runtime::QueryScheduler scheduler(&catalog, options);
  std::vector<std::future<runtime::QueryOutcome>> futures;
  futures.reserve(static_cast<size_t>(n));
  Stopwatch watch;
  for (int i = 0; i < n; ++i) {
    auto future_or = scheduler.Submit(sql);
    if (!future_or.ok()) {
      std::printf("session %d rejected: %s\n", i,
                  future_or.status().ToString().c_str());
      continue;
    }
    futures.push_back(std::move(future_or).ValueOrDie());
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    runtime::QueryOutcome outcome = futures[i].get();
    if (!outcome.status.ok()) {
      std::printf("session %zu error: %s\n", i, outcome.status.ToString().c_str());
      continue;
    }
    std::printf(
        "session %zu: %lld rows, queued %.2f ms, compile %.2f ms%s, exec %.2f "
        "ms, peak mem %.2f MiB%s\n",
        i, static_cast<long long>(outcome.stats.result_rows),
        static_cast<double>(outcome.stats.queue_nanos) / 1e6,
        static_cast<double>(outcome.stats.compile_nanos) / 1e6,
        outcome.stats.cache_hit ? " (plan cache hit)" : "",
        static_cast<double>(outcome.stats.exec_nanos) / 1e6,
        static_cast<double>(outcome.stats.peak_memory_bytes) / (1 << 20),
        outcome.stats.spilled_bytes > 0 ? " (spilled)" : "");
  }
  const auto counters = scheduler.counters();
  std::printf(
      "total %.2f ms wall; admitted %lld, rejected %lld, failed %lld; "
      "plan cache %lld hits / %lld misses; spilled %.2f MiB across %lld "
      "queries\n",
      watch.ElapsedSeconds() * 1e3, static_cast<long long>(counters.admitted),
      static_cast<long long>(counters.rejected),
      static_cast<long long>(counters.failed),
      static_cast<long long>(scheduler.plan_cache().hits()),
      static_cast<long long>(scheduler.plan_cache().misses()),
      static_cast<double>(counters.spilled_bytes) / (1 << 20),
      static_cast<long long>(counters.queries_spilled));
  // Process-wide latency distribution from the metrics registry (covers
  // every scheduler this process has run, this fan-out included).
  auto* registry = obs::MetricsRegistry::Global();
  obs::Histogram* latency =
      registry->FindHistogram("tqp_query_latency_seconds");
  if (latency != nullptr && latency->count() > 0) {
    std::printf("query latency (process-wide): p50 %.2f ms, p95 %.2f ms, "
                "p99 %.2f ms over %lld queries\n",
                latency->Percentile(0.5) * 1e3, latency->Percentile(0.95) * 1e3,
                latency->Percentile(0.99) * 1e3,
                static_cast<long long>(latency->count()));
  }
  obs::Counter* steps = registry->FindCounter("tqp_steps_executed_total");
  if (steps != nullptr) {
    std::printf("execution-DAG steps executed (process-wide): %lld\n",
                static_cast<long long>(steps->value()));
  }
}

// Shared-resource report: the process-wide cross-query thread pool that every
// parallel/pipelined executor and QueryScheduler lands on, the buffer pool
// recycling morsel scratch across operators and queries, and the per-query
// memory governance layer (budget + spill) above it.
void PrintPoolStats(const ShellState& state) {
  runtime::ThreadPool* pool = runtime::ThreadPool::Global();
  std::printf("shared thread pool: %d worker threads (process-wide; all\n"
              "  sessions, schedulers and parallel/pipelined executors with\n"
              "  threads=0 share it)\n",
              pool->num_threads());
  std::printf("  tasks executed %lld (%lld stolen from another worker)\n",
              static_cast<long long>(pool->tasks_executed()),
              static_cast<long long>(pool->steals()));
  const BufferPoolStats stats = BufferPool::Global()->stats();
  const auto mb = [](int64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  std::printf("buffer pool: cap %.1f MiB cached\n",
              mb(BufferPool::Global()->max_cached_bytes()));
  std::printf("  allocations %lld (hits %lld, misses %lld, bypass %lld)\n",
              static_cast<long long>(stats.allocations),
              static_cast<long long>(stats.pool_hits),
              static_cast<long long>(stats.pool_misses),
              static_cast<long long>(stats.bypass));
  std::printf("  recycle hit rate %.1f%% of %lld pooled requests "
              "(%lld total allocations)\n",
              100.0 * stats.recycle_hit_rate(),
              static_cast<long long>(stats.allocations),
              static_cast<long long>(stats.total_allocations()));
  std::printf("  recycled %.1f MiB total; cached now %.2f MiB\n",
              mb(stats.recycled_bytes), mb(stats.cached_bytes));
  std::printf("  live %.2f MiB, peak live %.2f MiB\n", mb(stats.live_bytes),
              mb(stats.peak_live_bytes));
  const int64_t budget =
      BufferPool::ResolveMemoryBudget(state.budget_mb << 20);
  if (budget > 0) {
    std::printf("per-query memory budget: %.1f MiB (%s); over-budget queries "
                "spill cold intermediates to disk\n",
                mb(budget),
                state.budget_mb > 0 ? "\\budget" : "TQP_MEMORY_BUDGET_MB");
  } else {
    std::printf("per-query memory budget: unlimited (\\budget <mb> to cap; "
                "TQP_MEMORY_BUDGET_MB sets the default)\n");
  }
  std::printf("  spilled this session: %.2f MiB in %lld evictions\n",
              mb(state.spilled_bytes_total),
              static_cast<long long>(state.spill_events_total));
  obs::Histogram* latency = obs::MetricsRegistry::Global()->FindHistogram(
      "tqp_query_latency_seconds");
  if (latency != nullptr && latency->count() > 0) {
    std::printf("scheduled query latency: p50 %.2f ms, p99 %.2f ms over %lld "
                "queries (\\metrics for the full registry)\n",
                latency->Percentile(0.5) * 1e3, latency->Percentile(0.99) * 1e3,
                static_cast<long long>(latency->count()));
  }
}

// Prints the finished \submit query's outcome (result table or the
// structured termination/error status).
void PrintAsyncOutcome(ShellState* state) {
  runtime::QueryOutcome outcome = state->async_future.get();
  std::printf("[async #%llu] %s\n",
              static_cast<unsigned long long>(state->async_query_id),
              state->async_sql.c_str());
  if (!outcome.status.ok()) {
    std::printf("[async #%llu] %s%s\n",
                static_cast<unsigned long long>(state->async_query_id),
                outcome.status.ToString().c_str(),
                outcome.termination_reason != CancelReason::kNone
                    ? (std::string(" (reason: ") +
                       CancelReasonName(outcome.termination_reason) + ")")
                          .c_str()
                    : "");
    return;
  }
  std::printf("%s", outcome.table.ToString(20).c_str());
  std::printf("[async #%llu] %lld rows, queued %.2f ms, compile %.2f ms%s, "
              "exec %.2f ms\n",
              static_cast<unsigned long long>(state->async_query_id),
              static_cast<long long>(outcome.stats.result_rows),
              static_cast<double>(outcome.stats.queue_nanos) / 1e6,
              static_cast<double>(outcome.stats.compile_nanos) / 1e6,
              outcome.stats.cache_hit ? " (plan cache hit)" : "",
              static_cast<double>(outcome.stats.exec_nanos) / 1e6);
}

// Collects the in-flight \submit query: non-blocking at the prompt (prints
// only if it already finished), blocking for \wait — where ^C cooperatively
// cancels the query through the scheduler instead of killing the shell.
void CollectAsync(ShellState* state, bool block) {
  if (!state->async_future.valid()) {
    if (block) std::printf("no async query in flight (\\submit <sql>)\n");
    return;
  }
  if (block) {
    g_sigint_flag.store(0, std::memory_order_release);
    while (state->async_future.wait_for(std::chrono::milliseconds(50)) !=
           std::future_status::ready) {
      if (g_sigint_flag.exchange(0, std::memory_order_acq_rel) != 0) {
        if (state->scheduler->Cancel(state->async_query_id)) {
          std::printf("^C — cancelling query #%llu...\n",
                      static_cast<unsigned long long>(state->async_query_id));
        }
      }
    }
  } else if (state->async_future.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
    return;
  }
  PrintAsyncOutcome(state);
  state->async_future = {};
  state->async_query_id = 0;
  state->async_sql.clear();
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::stod(argv[1]) : 0.01;
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  std::printf("TQP shell — TPC-H catalog at SF %.3f. Type \\tables, SQL, or quit.\n",
              sf);
  // ^C cancels the running query (sync or \submit), never the shell.
  std::signal(SIGINT, HandleSigint);

  ShellState state;
  std::string line;
  while (true) {
    CollectAsync(&state, /*block=*/false);
    std::printf("tqp[%s/%s/%s]> ", state.engine.c_str(),
                ExecutorTargetName(state.target),
                state.device == DeviceKind::kCpu ? "cpu" : "gpu-sim");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "quit" || line == "exit" || line == "\\q!") break;
    if (line.rfind("\\backend ", 0) == 0) {
      const std::string b = line.substr(9);
      if (b == "eager") state.target = ExecutorTarget::kEager;
      else if (b == "static") state.target = ExecutorTarget::kStatic;
      else if (b == "interp") state.target = ExecutorTarget::kInterp;
      else if (b == "parallel") state.target = ExecutorTarget::kParallel;
      else if (b == "pipelined") state.target = ExecutorTarget::kPipelined;
      else std::printf("unknown backend '%s'\n", b.c_str());
      continue;
    }
    if (line == "\\pool") {
      PrintPoolStats(state);
      continue;
    }
    if (line == "\\metrics") {
      std::printf("%s",
                  obs::MetricsRegistry::Global()->PrometheusText().c_str());
      continue;
    }
    if (line.rfind("\\trace ", 0) == 0) {
      std::istringstream args(line.substr(7));
      std::string file;
      std::string sql;
      args >> file;
      std::getline(args, sql);
      const std::string_view trimmed = TrimView(sql);
      if (file.empty() || trimmed.empty()) {
        std::printf("usage: \\trace <file> <sql>\n");
        continue;
      }
      RunTrace(file, std::string(trimmed), catalog, state);
      continue;
    }
    if (line.rfind("\\budget ", 0) == 0) {
      int64_t mb = 0;
      if (!ParseInt64(line.substr(8), &mb)) continue;
      // Upper bound keeps every later `mb << 20` free of signed overflow.
      constexpr int64_t kMaxBudgetMb = int64_t{1} << 30;  // 1 PiB
      if (mb < 0 || mb > kMaxBudgetMb) {
        std::printf("budget must be in [0, %lld] MiB (0 = env default / "
                    "unlimited)\n",
                    static_cast<long long>(kMaxBudgetMb));
        continue;
      }
      state.budget_mb = mb;
      std::printf("per-query memory budget = %lld MiB%s\n",
                  static_cast<long long>(mb),
                  mb == 0 ? " (TQP_MEMORY_BUDGET_MB default / unlimited)"
                          : "");
      continue;
    }
    if (line.rfind("\\timeout ", 0) == 0) {
      int64_t ms = 0;
      if (!ParseInt64(line.substr(9), &ms)) continue;
      // Same ceiling as ResolveDeadlineMs: ~12 days keeps ms -> ns arming
      // free of overflow.
      if (ms < 0 || ms > (int64_t{1} << 40) / 1000) {
        std::printf("timeout must be in [0, %lld] ms (0 = "
                    "TQP_QUERY_TIMEOUT_MS default / none)\n",
                    static_cast<long long>((int64_t{1} << 40) / 1000));
        continue;
      }
      state.timeout_ms = ms;
      std::printf("per-query timeout = %lld ms%s\n",
                  static_cast<long long>(ms),
                  ms == 0 ? " (TQP_QUERY_TIMEOUT_MS default / none)" : "");
      continue;
    }
    if (line.rfind("\\submit ", 0) == 0) {
      // Own the text: a view into line.substr(8)'s temporary would dangle
      // before the scheduler compiles it.
      const std::string sql(TrimView(std::string_view(line).substr(8)));
      if (sql.empty()) {
        std::printf("usage: \\submit <sql>\n");
        continue;
      }
      if (state.async_future.valid()) {
        std::printf("query #%llu still in flight — \\wait or \\cancel first\n",
                    static_cast<unsigned long long>(state.async_query_id));
        continue;
      }
      // Idle, so the old scheduler drains instantly; a fresh one picks up
      // the current backend/budget/timeout options.
      runtime::SchedulerOptions sched_options;
      sched_options.compile = OptionsFromState(state);
      state.scheduler = std::make_unique<runtime::QueryScheduler>(
          &catalog, sched_options);
      auto future_or = state.scheduler->Submit(
          sql, runtime::QueryPriority::kNormal, &state.async_query_id);
      if (!future_or.ok()) {
        std::printf("rejected: %s\n", future_or.status().ToString().c_str());
        continue;
      }
      state.async_future = std::move(future_or).ValueOrDie();
      state.async_sql = sql;
      std::printf("query #%llu submitted (\\wait to block, \\cancel to "
                  "stop)\n",
                  static_cast<unsigned long long>(state.async_query_id));
      continue;
    }
    if (line == "\\cancel") {
      if (!state.async_future.valid()) {
        std::printf("no async query in flight (\\submit <sql>)\n");
        continue;
      }
      if (state.scheduler->Cancel(state.async_query_id)) {
        std::printf("cancel requested for query #%llu (stops at the next "
                    "morsel/step boundary)\n",
                    static_cast<unsigned long long>(state.async_query_id));
      } else {
        std::printf("query #%llu already completed\n",
                    static_cast<unsigned long long>(state.async_query_id));
      }
      CollectAsync(&state, /*block=*/true);
      continue;
    }
    if (line == "\\wait") {
      CollectAsync(&state, /*block=*/true);
      continue;
    }
    if (line.rfind("\\fusion ", 0) == 0) {
      const std::string f = line.substr(8);
      if (f == "on" || f == "off") {
        state.expr_fusion = f == "on";
        std::printf("expression fusion %s\n", f.c_str());
      } else {
        std::printf("usage: \\fusion on|off\n");
      }
      continue;
    }
    if (line.rfind("\\expr ", 0) == 0) {
      const std::string b = line.substr(6);
      if (b == "default") state.expr_backend = ExprBackend::kDefault;
      else if (b == "interp") state.expr_backend = ExprBackend::kInterp;
      else if (b == "simd") state.expr_backend = ExprBackend::kSimd;
      else {
        std::printf("usage: \\expr default|interp|simd\n");
        continue;
      }
      std::printf("expression backend = %s (resolves to %s)\n", b.c_str(),
                  ExprBackendName(ResolveExprBackend(state.expr_backend)));
      continue;
    }
    if (line.rfind("\\adaptive ", 0) == 0) {
      const std::string a = line.substr(10);
      if (a == "on" || a == "off") {
        state.adaptive_morsels = a == "on";
        std::printf("adaptive morsel sizing %s\n", a.c_str());
      } else {
        std::printf("usage: \\adaptive on|off\n");
      }
      continue;
    }
    if (line.rfind("\\partitions ", 0) == 0) {
      const std::string p = line.substr(12);
      if (p == "on" || p == "off") {
        state.partitioned_breakers = p == "on";
        std::printf("partitioned pipeline breakers %s\n", p.c_str());
      } else {
        std::printf("usage: \\partitions on|off\n");
      }
      continue;
    }
    if (line.rfind("\\threads ", 0) == 0) {
      int64_t n = 0;
      if (!ParseInt64(line.substr(9), &n)) continue;
      if (n < 0 || n > 256) {
        std::printf("threads must be in [0, 256]\n");
        continue;
      }
      state.num_threads = static_cast<int>(n);
      std::printf("parallel backend threads = %d%s\n", state.num_threads,
                  state.num_threads == 0 ? " (process-wide pool)" : "");
      continue;
    }
    if (line.rfind("\\morsel ", 0) == 0) {
      if (!ParseInt64(line.substr(8), &state.morsel_rows)) continue;
      std::printf("parallel backend morsel rows = %lld%s\n",
                  static_cast<long long>(state.morsel_rows),
                  state.morsel_rows == 0 ? " (default)" : "");
      continue;
    }
    if (line.rfind("\\sessions ", 0) == 0) {
      std::istringstream args(line.substr(10));
      int n = 0;
      std::string sql;
      args >> n;
      std::getline(args, sql);
      if (n <= 0 || sql.empty()) {
        std::printf("usage: \\sessions <n> <sql>\n");
        continue;
      }
      RunSessions(n, sql, catalog, state);
      continue;
    }
    if (line.rfind("\\device ", 0) == 0) {
      const std::string d = line.substr(8);
      if (d == "cpu") state.device = DeviceKind::kCpu;
      else if (d == "gpu") state.device = DeviceKind::kCudaSim;
      else std::printf("unknown device '%s'\n", d.c_str());
      continue;
    }
    if (line.rfind("\\engine ", 0) == 0) {
      const std::string e = line.substr(8);
      if (e == "tqp" || e == "volcano" || e == "columnar") state.engine = e;
      else std::printf("unknown engine '%s'\n", e.c_str());
      continue;
    }
    if (line == "\\tables") {
      for (const std::string& name : catalog.TableNames()) {
        Table t = catalog.GetTable(name).ValueOrDie();
        std::printf("  %-10s %8lld rows, %d columns\n", name.c_str(),
                    static_cast<long long>(t.num_rows()), t.num_columns());
      }
      continue;
    }
    if (line.rfind("\\plan ", 0) == 0) {
      PrintPlanOrProgram(line.substr(6), catalog, /*program=*/false, state);
      continue;
    }
    if (line.rfind("\\program ", 0) == 0) {
      PrintPlanOrProgram(line.substr(9), catalog, /*program=*/true, state);
      continue;
    }
    if (line.rfind("\\explain pipelines ", 0) == 0) {
      ExplainPipelines(line.substr(19), catalog, state);
      continue;
    }
    if (line.rfind("\\q ", 0) == 0) {
      int64_t qn = 0;
      if (!ParseInt64(line.substr(3), &qn)) continue;
      const int q = static_cast<int>(qn);
      auto sql_or = tpch::QueryText(q);
      if (!sql_or.ok()) {
        std::printf("error: %s\n", sql_or.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", sql_or.ValueOrDie().c_str());
      RunSql(sql_or.ValueOrDie(), catalog, &state);
      continue;
    }
    constexpr std::string_view kExplainAnalyze = "explain analyze ";
    if (line.size() > kExplainAnalyze.size() &&
        EqualsIgnoreCase(std::string_view(line).substr(0, kExplainAnalyze.size()),
                         kExplainAnalyze)) {
      RunExplainAnalyze(line.substr(kExplainAnalyze.size()), catalog, state);
      continue;
    }
    RunSql(line, catalog, &state);
  }
  // Exiting with a \submit query in flight: cancel it so the scheduler's
  // draining destructor returns promptly instead of finishing the query.
  if (state.async_future.valid()) {
    state.scheduler->Cancel(state.async_query_id);
    state.async_future.wait();
  }
  return 0;
}
