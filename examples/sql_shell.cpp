// Interactive SQL shell over TQP: loads the TPC-H catalog at a chosen scale
// factor and compiles each typed statement into a tensor program, mirroring
// the paper's notebook experience (type a query, watch it run on the engine
// and backend of your choice).
//
// Usage: sql_shell [scale_factor]          (default 0.01)
//
// Shell commands (everything else is SQL):
//   \backend eager|static|interp    choose the tensor executor
//   \device cpu|gpu                 choose the device (gpu = simulator)
//   \engine tqp|volcano|columnar    choose the engine family
//   \plan <sql>                     print the optimized physical plan
//   \program <sql>                  print the compiled tensor program ops
//   \tables                         list catalog tables
//   \q <n>                          run TPC-H query n
//   quit                            exit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "baseline/columnar.h"
#include "baseline/volcano.h"
#include "common/stopwatch.h"
#include "compile/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: example code

namespace {

struct ShellState {
  ExecutorTarget target = ExecutorTarget::kStatic;
  DeviceKind device = DeviceKind::kCpu;
  std::string engine = "tqp";
};

void RunSql(const std::string& sql, const Catalog& catalog, ShellState* state) {
  Stopwatch watch;
  Result<Table> result_or = Status::Internal("unset");
  double compile_ms = 0;
  if (state->engine == "volcano") {
    VolcanoEngine volcano(&catalog);
    watch.Reset();
    result_or = volcano.ExecuteSql(sql);
  } else if (state->engine == "columnar") {
    ColumnarEngine columnar(&catalog);
    watch.Reset();
    result_or = columnar.ExecuteSql(sql);
  } else {
    QueryCompiler compiler;
    CompileOptions options;
    options.target = state->target;
    options.device = state->device;
    watch.Reset();
    auto compiled_or = compiler.CompileSql(sql, catalog, options);
    compile_ms = watch.ElapsedSeconds() * 1e3;
    if (!compiled_or.ok()) {
      std::printf("error: %s\n", compiled_or.status().ToString().c_str());
      return;
    }
    if (state->device == DeviceKind::kCudaSim) {
      GetDevice(DeviceKind::kCudaSim)->ResetClock();
    }
    watch.Reset();
    result_or = compiled_or.ValueOrDie().Run(catalog);
  }
  const double exec_ms = watch.ElapsedSeconds() * 1e3;
  if (!result_or.ok()) {
    std::printf("error: %s\n", result_or.status().ToString().c_str());
    return;
  }
  Table result = std::move(result_or).ValueOrDie();
  // Print at most 20 rows (ToString already truncates large tables).
  std::printf("%s", result.ToString(20).c_str());
  std::printf("(%lld rows)  compile %.2f ms, execute %.2f ms",
              static_cast<long long>(result.num_rows()), compile_ms, exec_ms);
  if (state->engine == "tqp" && state->device == DeviceKind::kCudaSim) {
    std::printf(", simulated GPU clock %.3f ms",
                GetDevice(DeviceKind::kCudaSim)->simulated_seconds() * 1e3);
  }
  std::printf("\n");
}

void PrintPlanOrProgram(const std::string& sql, const Catalog& catalog,
                        bool program, const ShellState& state) {
  auto plan_or = PlanQuery(sql, catalog);
  if (!plan_or.ok()) {
    std::printf("error: %s\n", plan_or.status().ToString().c_str());
    return;
  }
  if (!program) {
    std::printf("%s", plan_or.ValueOrDie()->ToString().c_str());
    return;
  }
  QueryCompiler compiler;
  CompileOptions options;
  options.target = state.target;
  options.device = state.device;
  auto compiled_or = compiler.Compile(plan_or.ValueOrDie(), options);
  if (!compiled_or.ok()) {
    std::printf("error: %s\n", compiled_or.status().ToString().c_str());
    return;
  }
  std::printf("%s", compiled_or.ValueOrDie().program().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::stod(argv[1]) : 0.01;
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  std::printf("TQP shell — TPC-H catalog at SF %.3f. Type \\tables, SQL, or quit.\n",
              sf);

  ShellState state;
  std::string line;
  while (true) {
    std::printf("tqp[%s/%s/%s]> ", state.engine.c_str(),
                ExecutorTargetName(state.target),
                state.device == DeviceKind::kCpu ? "cpu" : "gpu-sim");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "quit" || line == "exit" || line == "\\q!") break;
    if (line.rfind("\\backend ", 0) == 0) {
      const std::string b = line.substr(9);
      if (b == "eager") state.target = ExecutorTarget::kEager;
      else if (b == "static") state.target = ExecutorTarget::kStatic;
      else if (b == "interp") state.target = ExecutorTarget::kInterp;
      else std::printf("unknown backend '%s'\n", b.c_str());
      continue;
    }
    if (line.rfind("\\device ", 0) == 0) {
      const std::string d = line.substr(8);
      if (d == "cpu") state.device = DeviceKind::kCpu;
      else if (d == "gpu") state.device = DeviceKind::kCudaSim;
      else std::printf("unknown device '%s'\n", d.c_str());
      continue;
    }
    if (line.rfind("\\engine ", 0) == 0) {
      const std::string e = line.substr(8);
      if (e == "tqp" || e == "volcano" || e == "columnar") state.engine = e;
      else std::printf("unknown engine '%s'\n", e.c_str());
      continue;
    }
    if (line == "\\tables") {
      for (const std::string& name : catalog.TableNames()) {
        Table t = catalog.GetTable(name).ValueOrDie();
        std::printf("  %-10s %8lld rows, %d columns\n", name.c_str(),
                    static_cast<long long>(t.num_rows()), t.num_columns());
      }
      continue;
    }
    if (line.rfind("\\plan ", 0) == 0) {
      PrintPlanOrProgram(line.substr(6), catalog, /*program=*/false, state);
      continue;
    }
    if (line.rfind("\\program ", 0) == 0) {
      PrintPlanOrProgram(line.substr(9), catalog, /*program=*/true, state);
      continue;
    }
    if (line.rfind("\\q ", 0) == 0) {
      const int q = std::stoi(line.substr(3));
      auto sql_or = tpch::QueryText(q);
      if (!sql_or.ok()) {
        std::printf("error: %s\n", sql_or.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", sql_or.ValueOrDie().c_str());
      RunSql(sql_or.ValueOrDie(), catalog, &state);
      continue;
    }
    RunSql(line, catalog, &state);
  }
  return 0;
}
