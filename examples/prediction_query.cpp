// Demo scenario 3 (paper §3.3): prediction queries. Trains the models the
// demo offers — a text sentiment classifier (the transformer stand-in), a
// scikit-style linear regression and a random forest — registers them, and
// runs hybrid SQL+ML queries where PREDICT(...) compiles into the same
// tensor program as the relational operators (Figure 4).

#include <cstdio>
#include <fstream>

#include "baseline/volcano.h"
#include "compile/compiler.h"
#include "datasets/iris.h"
#include "datasets/reviews.h"
#include "ml/linear.h"
#include "ml/tree.h"
#include "ml/text.h"

using namespace tqp;  // NOLINT: example code

int main() {
  Catalog catalog;
  ml::ModelRegistry registry;

  // --- Task 1: sentiment classification over Amazon-style reviews ----------
  datasets::ReviewsOptions review_options;
  review_options.num_reviews = 5000;
  catalog.RegisterTable("amazon_reviews",
                        datasets::ReviewsTable(review_options).ValueOrDie());
  {
    std::vector<std::string> texts;
    std::vector<double> labels;
    datasets::GenerateReviewTexts(2000, 31, &texts, &labels);
    registry.Register(
        ml::SentimentClassifier::Fit("sentiment_classifier", texts, labels)
            .ValueOrDie());
  }
  const std::string fig4_sql =
      "SELECT brand, "
      "SUM(CASE WHEN rating >= 3 THEN 1 ELSE 0 END) AS actual_positive, "
      "SUM(PREDICT('sentiment_classifier', text)) AS predicted_positive "
      "FROM amazon_reviews GROUP BY brand ORDER BY brand";
  QueryCompiler compiler(&registry);
  CompiledQuery fig4 = compiler.CompileSql(fig4_sql, catalog).ValueOrDie();
  std::printf("Figure 4 query compiled into one %d-node tensor program\n",
              fig4.program().num_nodes());
  Table sentiment = fig4.Run(catalog).ValueOrDie();
  std::printf("%s\n", sentiment.ToString().c_str());
  std::ofstream dot("/tmp/tqp_prediction_executor.dot");
  dot << fig4.ToDot("prediction_query");
  std::printf("executor graph -> /tmp/tqp_prediction_executor.dot\n\n");

  // --- Task 2: regression on Iris -------------------------------------------
  Table iris = datasets::IrisTable().ValueOrDie();
  catalog.RegisterTable("iris", iris);
  Tensor features = Tensor::Empty(DType::kFloat64, iris.num_rows(), 3).ValueOrDie();
  Tensor target = Tensor::Empty(DType::kFloat64, iris.num_rows(), 1).ValueOrDie();
  for (int64_t i = 0; i < iris.num_rows(); ++i) {
    for (int f = 0; f < 3; ++f) {
      features.mutable_data<double>()[i * 3 + f] =
          iris.column(f).tensor().at<double>(i);
    }
    target.mutable_data<double>()[i] = iris.column(3).tensor().at<double>(i);
  }
  registry.Register(
      ml::LinearRegressionModel::Fit("petal_lr", features, target).ValueOrDie());
  ml::RandomForestModel::FitOptions forest_options;
  forest_options.num_trees = 9;
  registry.Register(ml::RandomForestModel::Fit("petal_rf", features, target,
                                               forest_options)
                        .ValueOrDie());

  // Users can swap models inside the same query text — the demo's point.
  for (const char* model : {"petal_lr", "petal_rf"}) {
    const std::string sql =
        std::string("SELECT species, "
                    "AVG(PREDICT('") + model +
        "', sepal_length, sepal_width, petal_length)) AS predicted_width, "
        "AVG(petal_width) AS actual_width "
        "FROM iris GROUP BY species ORDER BY species";
    Table result = compiler.CompileSql(sql, catalog)
                       .ValueOrDie()
                       .Run(catalog)
                       .ValueOrDie();
    std::printf("model = %s\n%s\n", model, result.ToString().c_str());
  }

  // Cross-check the whole scenario against the row-oriented oracle.
  VolcanoEngine volcano(&catalog, &registry);
  Table oracle = volcano.ExecuteSql(fig4_sql).ValueOrDie();
  std::printf("tensor engine matches row-engine oracle: %s\n",
              TablesEqualUnordered(sentiment, oracle).ok() ? "yes" : "NO");
  return 0;
}
