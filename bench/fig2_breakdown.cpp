// FIG2 — reproduces Figure 2 of the paper: per-operator runtime breakdown of
// a selected query (TPC-H Q6), produced by the query profiler (the PyTorch
// Profiler / TensorBoard stand-in). Also writes the chrome://tracing JSON to
// /tmp/tqp_q6_trace.json — open it in a Chromium browser or Perfetto for the
// TensorBoard-style timeline view.
//
// Usage: fig2_breakdown [scale_factor]   (default 0.05)

#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "compile/compiler.h"
#include "profiler/profiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.05);
  bench::PrintHeader("Figure 2: runtime breakdown of top operators (TPC-H Q6)");
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));

  QueryProfiler profiler;
  CompileOptions options;
  options.target = ExecutorTarget::kEager;  // per-op view, like the paper's
  options.profiler = &profiler;
  QueryCompiler compiler;
  CompiledQuery query =
      compiler.CompileSql(tpch::QueryText(6).ValueOrDie(), catalog, options)
          .ValueOrDie();
  // Warm up, then profile one run.
  for (int i = 0; i < 3; ++i) TQP_CHECK_OK(query.Run(catalog).status());
  profiler.Reset();
  TQP_CHECK_OK(query.Run(catalog).status());

  std::printf("scale factor %.3f, %zu op executions, %.3f ms total\n\n", sf,
              profiler.records().size(),
              static_cast<double>(profiler.total_nanos()) / 1e6);
  std::printf("%s\n", profiler.BreakdownReport().c_str());

  const std::string trace = profiler.ToChromeTrace("tqp-q6");
  std::ofstream out("/tmp/tqp_q6_trace.json");
  out << trace;
  std::printf("chrome trace written to /tmp/tqp_q6_trace.json (%zu bytes)\n",
              trace.size());
  return 0;
}
