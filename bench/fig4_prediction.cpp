// FIG4 — reproduces Figure 4 of the paper: the prediction query
//
//   SELECT brand,
//          SUM(CASE WHEN rating >= 3 THEN 1 ELSE 0 END) AS actual_positive,
//          SUM(PREDICT('sentiment_classifier', text))   AS predicted_positive
//   FROM amazon_reviews GROUP BY brand
//
// compiled into ONE tensor program (relational operators + tokenizer +
// embedding + MLP + threshold + aggregation), executed end-to-end, and the
// executor graph exported as Graphviz DOT (/tmp/tqp_fig4_executor.dot) — the
// stand-in for the interactive TensorBoard graph of the paper.
//
// Usage: fig4_prediction [num_reviews_thousands]   (default 20 -> 20k rows)

#include <cstdio>
#include <fstream>

#include "baseline/volcano.h"
#include "bench_util.h"
#include "compile/compiler.h"
#include "datasets/reviews.h"
#include "ml/text.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double arg = bench::ScaleFactorArg(argc, argv, 20);
  const int64_t num_reviews = static_cast<int64_t>(arg * 1000);
  bench::PrintHeader("Figure 4: prediction query as one tensor program");

  Catalog catalog;
  datasets::ReviewsOptions review_options;
  review_options.num_reviews = num_reviews;
  catalog.RegisterTable("amazon_reviews",
                        datasets::ReviewsTable(review_options).ValueOrDie());
  ml::ModelRegistry registry;
  {
    std::vector<std::string> texts;
    std::vector<double> labels;
    datasets::GenerateReviewTexts(2000, 31, &texts, &labels);
    registry.Register(
        ml::SentimentClassifier::Fit("sentiment_classifier", texts, labels)
            .ValueOrDie());
  }
  const std::string sql =
      "SELECT brand, "
      "SUM(CASE WHEN rating >= 3 THEN 1 ELSE 0 END) AS actual_positive, "
      "SUM(PREDICT('sentiment_classifier', text)) AS predicted_positive "
      "FROM amazon_reviews GROUP BY brand ORDER BY brand";

  QueryCompiler compiler(&registry);
  CompiledQuery query = compiler.CompileSql(sql, catalog).ValueOrDie();
  std::printf("%lld reviews; tensor program has %d nodes "
              "(relational + ML fused into one graph)\n",
              static_cast<long long>(num_reviews), query.program().num_nodes());

  // Export the executor graph (the Figure 4 artifact).
  const std::string dot = query.ToDot("fig4_prediction_query");
  std::ofstream out("/tmp/tqp_fig4_executor.dot");
  out << dot;
  std::printf("executor graph written to /tmp/tqp_fig4_executor.dot "
              "(render: dot -Tsvg)\n\n");

  std::vector<Tensor> inputs = query.CollectInputs(catalog).ValueOrDie();
  Table result;
  const double tqp_sec =
      bench::MedianTime([&] { result = query.RunWithInputs(inputs).ValueOrDie(); });
  std::printf("%s\n", result.ToString().c_str());

  VolcanoEngine volcano(&catalog, &registry);
  PlanPtr plan = PlanQuery(sql, catalog, {}, &registry).ValueOrDie();
  Table oracle;
  const double volcano_sec = bench::MedianTime(
      [&] { oracle = volcano.Execute(plan).ValueOrDie(); },
      bench::TimingProtocol{1, 3});
  std::printf("TQP (one tensor program):   %8.3f ms\n", tqp_sec * 1e3);
  std::printf("row engine + per-row model: %8.3f ms (%.1fx slower)\n",
              volcano_sec * 1e3, volcano_sec / tqp_sec);
  std::printf("results identical: %s\n",
              TablesEqualUnordered(result, oracle).ok() ? "yes" : "NO");
  return 0;
}
