#ifndef TQP_BENCH_BENCH_UTIL_H_
#define TQP_BENCH_BENCH_UTIL_H_

// Shared harness for the figure-reproduction benches: the paper reports the
// median of 5 runs after 5 warm-up runs (§2.3); MedianTime reproduces that
// protocol. Scale factor defaults keep every bench under a few seconds on a
// laptop; pass a scale factor as argv[1] to go bigger.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace tqp::bench {

struct TimingProtocol {
  int warmup_runs = 5;
  int timed_runs = 5;
};

/// \brief Runs `fn` per the paper's protocol and returns the median seconds.
inline double MedianTime(const std::function<void()>& fn,
                         const TimingProtocol& protocol = {}) {
  for (int i = 0; i < protocol.warmup_runs; ++i) fn();
  std::vector<double> times;
  times.reserve(static_cast<size_t>(protocol.timed_runs));
  for (int i = 0; i < protocol.timed_runs; ++i) {
    Stopwatch timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// \brief Scale factor from argv[1], with a bench-appropriate default.
inline double ScaleFactorArg(int argc, char** argv, double default_sf) {
  if (argc > 1) {
    const double sf = std::strtod(argv[1], nullptr);
    if (sf > 0) return sf;
  }
  return default_sf;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace tqp::bench

#endif  // TQP_BENCH_BENCH_UTIL_H_
