#ifndef TQP_BENCH_BENCH_UTIL_H_
#define TQP_BENCH_BENCH_UTIL_H_

// Shared harness for the figure-reproduction benches: the paper reports the
// median of 5 runs after 5 warm-up runs (§2.3); MedianTime reproduces that
// protocol. Scale factor defaults keep every bench under a few seconds on a
// laptop; pass a scale factor as argv[1] to go bigger.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "tensor/buffer_pool.h"

namespace tqp::bench {

struct TimingProtocol {
  int warmup_runs = 5;
  int timed_runs = 5;
};

/// \brief Runs `fn` per the paper's protocol and returns the median seconds.
inline double MedianTime(const std::function<void()>& fn,
                         const TimingProtocol& protocol = {}) {
  for (int i = 0; i < protocol.warmup_runs; ++i) fn();
  std::vector<double> times;
  times.reserve(static_cast<size_t>(protocol.timed_runs));
  for (int i = 0; i < protocol.timed_runs; ++i) {
    Stopwatch timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// \brief One timed configuration plus single-run BufferPool attribution.
struct PoolTimedRun {
  double seconds = 0;
  double peak_alloc_mb = 0;     // pool peak live bytes during one run
  int64_t allocs = 0;           // pool allocations (incl. bypass) in one run
  double recycle_hit_rate = 0;  // pooled requests served from free lists
  double budget_mb = 0;         // per-query budget in effect (0 = unlimited)
  double spilled_mb = 0;        // bytes spilled to disk in the attributed run
  int64_t spill_events = 0;     // evictions in the attributed run
};

/// \brief Times `fn` per the paper's protocol, then runs it once more to
/// attribute pool allocation count, recycle hit rate and peak live bytes to
/// a single execution (the timed loop warms the pool's free lists). The
/// attribution run executes under an explicit per-query memory scope with
/// `budget_bytes` (0 defers to TQP_MEMORY_BUDGET_MB), so under a cap the
/// peak_alloc_mb column reports the *resident* working set and spilled_mb
/// reports what moved to disk to keep it there.
inline PoolTimedRun MeasureWithPool(const std::function<void()>& fn,
                                    const TimingProtocol& protocol = {},
                                    int64_t budget_bytes = 0) {
  PoolTimedRun r;
  const int64_t budget = BufferPool::ResolveMemoryBudget(budget_bytes);
  {
    BufferPool::QueryScope warm_scope(budget);
    BufferPool::QueryScope::Attach attach(&warm_scope);
    r.seconds = MedianTime(fn, protocol);
  }
  BufferPool* pool = BufferPool::Global();
  pool->ResetPeak();
  const BufferPoolStats before = pool->stats();
  BufferPool::QueryScope scope(budget);
  {
    BufferPool::QueryScope::Attach attach(&scope);
    fn();
  }
  const BufferPoolStats after = pool->stats();
  const QueryMemoryStats mem = scope.stats();
  r.peak_alloc_mb =
      static_cast<double>(after.peak_live_bytes) / (1024.0 * 1024.0);
  r.allocs = after.total_allocations() - before.total_allocations();
  const int64_t pooled = after.allocations - before.allocations;
  r.recycle_hit_rate =
      pooled > 0 ? static_cast<double>(after.pool_hits - before.pool_hits) /
                       static_cast<double>(pooled)
                 : 0.0;
  r.budget_mb = static_cast<double>(mem.budget_bytes) / (1024.0 * 1024.0);
  r.spilled_mb = static_cast<double>(mem.spilled_bytes) / (1024.0 * 1024.0);
  r.spill_events = mem.spill_events;
  return r;
}

/// \brief Scale factor from argv[1], with a bench-appropriate default.
inline double ScaleFactorArg(int argc, char** argv, double default_sf) {
  if (argc > 1) {
    const double sf = std::strtod(argv[1], nullptr);
    if (sf > 0) return sf;
  }
  return default_sf;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace tqp::bench

#endif  // TQP_BENCH_BENCH_UTIL_H_
