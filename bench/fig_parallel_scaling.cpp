// Parallel-runtime scaling: serial executors vs the morsel-driven
// ParallelExecutor vs the pipelined morsel-streaming PipelinedExecutor on
// TPC-H at increasing thread counts. Emits JSON (one object) on stdout so
// future PRs can track the perf trajectory; human summary goes to stderr.
//
// Each timed run also reports a peak-allocation proxy from the process-wide
// BufferPool (peak live tensor bytes during the run): node-at-a-time
// execution materializes every intermediate, pipelined execution holds
// morsel-sized scratch plus pipeline outputs — the materialization win the
// streaming refactor is after. The pipelined backend is measured both with
// DAG overlap (independent pipeline steps scheduled concurrently, eager
// value release) and with the sequential schedule walk (`"overlap": false`),
// so the overlap-vs-peak-alloc trade is tracked per commit.
//
// With TQP_MEMORY_BUDGET_MB set, every measured run executes under that
// per-query budget: peak_alloc_mb then reports the capped *resident*
// working set and the spilled_mb column what each run moved to disk to
// stay inside it (out-of-core results are bit-identical by construction).
//
// Usage: fig_parallel_scaling [scale_factor] [num_queries]
//   scale_factor  default 0.05
//   num_queries   run only the first N of {Q1, Q3, Q6, Q18} (CI smoke uses 1)
//
// Q18 is the breaker-bound row: a multi-join plus a large group-by, so its
// wall time is dominated by pipeline breakers rather than streamed scans —
// the configuration the radix-partitioned breaker backend targets (also
// measured with partitioned_breakers on).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "compile/compiler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

using RunResult = bench::PoolTimedRun;

RunResult MeasureQuery(const CompiledQuery& query, const std::vector<Tensor>& inputs,
                       const bench::TimingProtocol& protocol) {
  return bench::MeasureWithPool(
      [&] { TQP_CHECK_OK(query.RunWithInputs(inputs).status()); }, protocol);
}

RunResult MeasureTarget(QueryCompiler& compiler, const Catalog& catalog,
                        const std::string& sql, ExecutorTarget target, int threads,
                        bool overlap, bool expr_fusion, bool partitioned,
                        const std::vector<Tensor>& inputs,
                        const bench::TimingProtocol& protocol) {
  CompileOptions options;
  options.target = target;
  options.num_threads = threads;
  options.pipeline_overlap = overlap;
  options.expr_fusion = expr_fusion;
  options.partitioned_breakers = partitioned;
  CompiledQuery query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
  return MeasureQuery(query, inputs, protocol);
}

/// One measured backend configuration (a JSON row per thread count).
struct BackendSpec {
  ExecutorTarget target;
  bool overlap;
  bool expr_fusion;
  bool partitioned = false;
};

}  // namespace

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.05);
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));

  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(stderr, "parallel scaling, SF %.3f, %u hardware threads\n", sf, hw);

  std::vector<int> queries = {1, 3, 6, 18};
  if (argc > 2) {
    const size_t n = static_cast<size_t>(std::strtoul(argv[2], nullptr, 10));
    if (n >= 1 && n < queries.size()) queries.resize(n);
  }
  std::vector<int> thread_counts = {1, 2, 4, 8};
  const bench::TimingProtocol protocol{3, 5};

  QueryCompiler compiler;
  std::printf("{\n  \"bench\": \"fig_parallel_scaling\",\n");
  std::printf("  \"scale_factor\": %.4f,\n", sf);
  std::printf("  \"hardware_threads\": %u,\n", hw);
  std::printf("  \"memory_budget_mb\": %.1f,\n",
              static_cast<double>(BufferPool::ResolveMemoryBudget(0)) /
                  (1024.0 * 1024.0));
  std::printf("  \"queries\": [\n");
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const int q = queries[qi];
    const std::string sql = tpch::QueryText(q).ValueOrDie();

    CompileOptions serial_options;  // static = fused serial TorchScript analog
    CompiledQuery serial_query =
        compiler.CompileSql(sql, catalog, serial_options).ValueOrDie();
    const std::vector<Tensor> inputs =
        serial_query.CollectInputs(catalog).ValueOrDie();
    const RunResult serial = MeasureQuery(serial_query, inputs, protocol);

    const RunResult eager = MeasureTarget(compiler, catalog, sql,
                                          ExecutorTarget::kEager, 0,
                                          /*overlap=*/true, /*expr_fusion=*/true,
                                          /*partitioned=*/false, inputs,
                                          protocol);

    std::printf("    {\"query\": \"Q%d\", \"static_serial_ms\": %.4f, "
                "\"eager_serial_ms\": %.4f, \"eager_peak_alloc_mb\": %.3f,\n"
                "     \"backends\": [",
                q, serial.seconds * 1e3, eager.seconds * 1e3,
                eager.peak_alloc_mb);
    double best_speedup = 0;
    bool first = true;
    const BackendSpec specs[] = {
        {ExecutorTarget::kParallel, true, true},
        {ExecutorTarget::kPipelined, false, true},  // sequential schedule walk
        {ExecutorTarget::kPipelined, true, true},   // DAG overlap
        {ExecutorTarget::kPipelined, true, false},  // expression fusion off
        {ExecutorTarget::kPipelined, true, true, true},  // partitioned breakers
    };
    for (const BackendSpec& spec : specs) {
      for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
        const RunResult r = MeasureTarget(compiler, catalog, sql, spec.target,
                                          thread_counts[ti], spec.overlap,
                                          spec.expr_fusion, spec.partitioned,
                                          inputs, protocol);
        const double speedup = eager.seconds / r.seconds;
        best_speedup = std::max(best_speedup, speedup);
        std::printf("%s\n      {\"backend\": \"%s\", \"threads\": %d, "
                    "\"overlap\": %s, \"expr_fusion\": %s, "
                    "\"partitioned_breakers\": %s, \"ms\": %.4f, "
                    "\"speedup_vs_eager\": %.3f, \"peak_alloc_mb\": %.3f, "
                    "\"allocs\": %lld, \"recycle_hit_rate\": %.3f, "
                    "\"spilled_mb\": %.3f, \"spill_events\": %lld}",
                    first ? "" : ",", ExecutorTargetName(spec.target),
                    thread_counts[ti], spec.overlap ? "true" : "false",
                    spec.expr_fusion ? "true" : "false",
                    spec.partitioned ? "true" : "false", r.seconds * 1e3,
                    speedup, r.peak_alloc_mb,
                    static_cast<long long>(r.allocs), r.recycle_hit_rate,
                    r.spilled_mb, static_cast<long long>(r.spill_events));
        first = false;
        std::fprintf(stderr,
                     "  Q%d %s%s%s%s @ %d threads: %.3f ms (%.2fx vs eager "
                     "%.3f ms), peak alloc %.2f MiB (eager %.2f MiB), "
                     "%lld allocs (%.0f%% recycled), spilled %.2f MiB\n",
                     q, ExecutorTargetName(spec.target),
                     spec.overlap ? "" : " (no overlap)",
                     spec.expr_fusion ? "" : " (no fusion)",
                     spec.partitioned ? " (partitioned)" : "",
                     thread_counts[ti], r.seconds * 1e3, speedup,
                     eager.seconds * 1e3, r.peak_alloc_mb, eager.peak_alloc_mb,
                     static_cast<long long>(r.allocs),
                     r.recycle_hit_rate * 100.0, r.spilled_mb);
      }
    }
    std::printf("], \"best_speedup_vs_eager\": %.3f}%s\n", best_speedup,
                qi + 1 < queries.size() ? "," : "");
  }
  std::printf("  ],\n");

  // Tracing overhead guard: one pipelined configuration of Q1 measured with
  // tracing off and with every run recorded into a live TraceSession. The
  // CI job asserts the ratio stays near 1 (the disabled path is a TLS read;
  // the enabled path is buffered span recording).
  {
    const std::string sql = tpch::QueryText(1).ValueOrDie();
    CompileOptions options;
    options.target = ExecutorTarget::kPipelined;
    options.num_threads = 4;
    CompiledQuery query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
    const std::vector<Tensor> inputs = query.CollectInputs(catalog).ValueOrDie();
    const RunResult off = MeasureQuery(query, inputs, protocol);
    obs::TraceSession session;
    const RunResult on = bench::MeasureWithPool(
        [&] {
          obs::TraceContext ctx(&session, session.NextQueryId());
          obs::TraceSpan root("query", "query");
          TQP_CHECK_OK(query.RunWithInputs(inputs).status());
        },
        protocol);
    const double ratio = on.seconds / off.seconds;
    std::printf("  \"trace_overhead\": {\"query\": \"Q1\", "
                "\"backend\": \"pipelined\", \"threads\": 4, "
                "\"off_ms\": %.4f, \"on_ms\": %.4f, \"ratio\": %.4f, "
                "\"events_recorded\": %zu},\n",
                off.seconds * 1e3, on.seconds * 1e3, ratio,
                session.num_events());
    std::fprintf(stderr,
                 "  trace overhead: Q1 pipelined @4 threads %.3f ms off / "
                 "%.3f ms on (ratio %.3f, %zu events)\n",
                 off.seconds * 1e3, on.seconds * 1e3, ratio,
                 session.num_events());
    // TQP_TRACE_FILE=<path>: dump the recorded timeline (CI uploads it as an
    // artifact so any run's cross-thread interleaving can be inspected).
    const char* trace_file = std::getenv("TQP_TRACE_FILE");
    if (trace_file != nullptr && *trace_file != '\0') {
      std::FILE* f = std::fopen(trace_file, "w");
      if (f != nullptr) {
        const std::string json = session.ToChromeTrace("fig_parallel_scaling");
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "  trace written to %s\n", trace_file);
      } else {
        std::fprintf(stderr, "  cannot open TQP_TRACE_FILE=%s\n", trace_file);
      }
    }
  }

  // Snapshot of the process metrics registry (counters the whole bench run
  // accumulated: morsels, steps, plan-cache traffic, pool gauges).
  std::printf("  \"metrics\": %s\n}\n",
              obs::MetricsRegistry::Global()->JsonSnapshot().c_str());
  return 0;
}
