// Parallel-runtime scaling: serial executors vs the morsel-driven
// ParallelExecutor on TPC-H at increasing thread counts. Emits JSON (one
// object) on stdout so future PRs can track the perf trajectory; human
// summary goes to stderr.
//
// Usage: fig_parallel_scaling [scale_factor]   (default 0.05)

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "compile/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

double MedianQueryTime(const CompiledQuery& query, const std::vector<Tensor>& inputs,
                       const bench::TimingProtocol& protocol) {
  return bench::MedianTime(
      [&] { TQP_CHECK_OK(query.RunWithInputs(inputs).status()); }, protocol);
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.05);
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));

  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(stderr, "parallel scaling, SF %.3f, %u hardware threads\n", sf, hw);

  const std::vector<int> queries = {1, 3, 6};
  std::vector<int> thread_counts = {1, 2, 4, 8};
  const bench::TimingProtocol protocol{3, 5};

  QueryCompiler compiler;
  std::printf("{\n  \"bench\": \"fig_parallel_scaling\",\n");
  std::printf("  \"scale_factor\": %.4f,\n", sf);
  std::printf("  \"hardware_threads\": %u,\n", hw);
  std::printf("  \"queries\": [\n");
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const int q = queries[qi];
    const std::string sql = tpch::QueryText(q).ValueOrDie();

    CompileOptions serial_options;  // static = fused serial TorchScript analog
    CompiledQuery serial_query =
        compiler.CompileSql(sql, catalog, serial_options).ValueOrDie();
    const std::vector<Tensor> inputs =
        serial_query.CollectInputs(catalog).ValueOrDie();
    const double serial_sec = MedianQueryTime(serial_query, inputs, protocol);

    CompileOptions eager_options;
    eager_options.target = ExecutorTarget::kEager;
    CompiledQuery eager_query =
        compiler.CompileSql(sql, catalog, eager_options).ValueOrDie();
    const double eager_sec = MedianQueryTime(eager_query, inputs, protocol);

    std::printf("    {\"query\": \"Q%d\", \"static_serial_ms\": %.4f, "
                "\"eager_serial_ms\": %.4f, \"parallel\": [",
                q, serial_sec * 1e3, eager_sec * 1e3);
    double best_speedup = 0;
    for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
      CompileOptions par_options;
      par_options.target = ExecutorTarget::kParallel;
      par_options.num_threads = thread_counts[ti];
      CompiledQuery par_query =
          compiler.CompileSql(sql, catalog, par_options).ValueOrDie();
      const double par_sec = MedianQueryTime(par_query, inputs, protocol);
      const double speedup = eager_sec / par_sec;
      best_speedup = std::max(best_speedup, speedup);
      std::printf("%s{\"threads\": %d, \"ms\": %.4f, \"speedup_vs_eager\": %.3f}",
                  ti == 0 ? "" : ", ", thread_counts[ti], par_sec * 1e3, speedup);
      std::fprintf(stderr, "  Q%d @ %d threads: %.3f ms (%.2fx vs eager %.3f ms)\n",
                   q, thread_counts[ti], par_sec * 1e3, speedup, eager_sec * 1e3);
    }
    std::printf("], \"best_speedup_vs_eager\": %.3f}%s\n", best_speedup,
                qi + 1 < queries.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
