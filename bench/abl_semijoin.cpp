// ABL6 — semi/anti join compilation strategies. The compiler has two
// lowerings for EXISTS / IN subqueries:
//   fast path   : sort build side, searchsorted counts, mask = counts > 0
//                 (no pair materialization; possible when the correlation is
//                  pure equality over a single numeric key)
//   general path: expand all candidate pairs, evaluate the residual
//                 predicate, segmented-sum verified matches per left row
//                 (required for Q21-style non-equality correlation)
// This ablation measures the price of the general path as the average match
// multiplicity grows: the fast path is O(n log n) regardless, while the
// expansion is O(#pairs). Run with a residual that is always true so both
// paths compute the same result.
//
// Usage: abl_semijoin [left_rows_in_millions]   (default 0.5)

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/random.h"
#include "baseline/volcano.h"
#include "compile/compiler.h"
#include "relational/table_builder.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

Table MakeTable(Rng* rng, int64_t rows, int64_t key_domain) {
  Schema schema({Field{"k", LogicalType::kInt64},
                 Field{"v", LogicalType::kFloat64}});
  TableBuilder b(schema);
  for (int64_t i = 0; i < rows; ++i) {
    b.AppendInt(0, rng->Uniform(0, key_domain - 1));
    b.AppendDouble(1, rng->UniformDouble(0, 100));
  }
  return b.Finish().ValueOrDie();
}

double RunQuery(const std::string& sql, const Catalog& catalog, int64_t* rows) {
  QueryCompiler compiler;
  CompiledQuery query =
      compiler.CompileSql(sql, catalog, CompileOptions{}).ValueOrDie();
  std::vector<Tensor> inputs = query.CollectInputs(catalog).ValueOrDie();
  Table result;
  const double sec = bench::MedianTime(
      [&] { result = query.RunWithInputs(inputs).ValueOrDie(); },
      bench::TimingProtocol{2, 3});
  *rows = result.num_rows();
  return sec;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ScaleFactorArg(argc, argv, 0.5);
  const auto left_rows = static_cast<int64_t>(scale * 1e6);
  bench::PrintHeader("ABL6: semi-join fast path vs general pair expansion");
  std::printf("left side %lld rows; right side sized for the target match "
              "multiplicity\n\n",
              static_cast<long long>(left_rows));
  std::printf("%12s %12s %14s %16s %9s %9s\n", "multiplicity", "right rows",
              "fast path(ms)", "expansion (ms)", "ratio", "equal");

  Rng rng(61314);
  for (const int64_t multiplicity : {1, 2, 4, 8, 16}) {
    const int64_t key_domain = left_rows / 4;
    const int64_t right_rows = key_domain * multiplicity;
    Catalog catalog;
    catalog.RegisterTable("l", MakeTable(&rng, left_rows, key_domain));
    catalog.RegisterTable("r", MakeTable(&rng, right_rows, key_domain));

    // Identical semantics; the always-true residual forces the general path.
    const std::string fast_sql =
        "SELECT COUNT(*) AS n FROM l WHERE EXISTS "
        "(SELECT * FROM r WHERE r.k = l.k)";
    const std::string general_sql =
        "SELECT COUNT(*) AS n FROM l WHERE EXISTS "
        "(SELECT * FROM r WHERE r.k = l.k AND r.v >= l.v - 1000)";
    int64_t fast_rows = 0;
    int64_t general_rows = 0;
    VolcanoEngine oracle_engine(&catalog);
    const int64_t fast_n = oracle_engine.ExecuteSql(fast_sql)
                               .ValueOrDie()
                               .column(0)
                               .GetScalar(0)
                               .AsInt64();
    const int64_t gen_n = oracle_engine.ExecuteSql(general_sql)
                              .ValueOrDie()
                              .column(0)
                              .GetScalar(0)
                              .AsInt64();
    const double fast_sec = RunQuery(fast_sql, catalog, &fast_rows);
    const double general_sec = RunQuery(general_sql, catalog, &general_rows);
    std::printf("%12lld %12lld %14.3f %16.3f %8.2fx %9s\n",
                static_cast<long long>(multiplicity),
                static_cast<long long>(right_rows), fast_sec * 1e3,
                general_sec * 1e3, general_sec / fast_sec,
                fast_n == gen_n ? "yes" : "NO");
  }
  std::printf(
      "\n(the compiler picks the fast path automatically whenever the\n"
      " correlation is a pure single-key equality; the expansion price is\n"
      " what Q21-style residual correlation costs)\n");
  return 0;
}
