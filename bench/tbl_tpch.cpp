// TXT3 — backs the paper's claim that "TQP is generic enough to support the
// TPC-H benchmark": runs every supported query through the full stack on all
// engines, verifying results against the Volcano oracle and reporting
// runtimes (the would-be "all queries" table of a full systems paper).
//
// Usage: tbl_tpch [scale_factor]   (default 0.02)

#include <cstdio>

#include "baseline/columnar.h"
#include "baseline/volcano.h"
#include "bench_util.h"
#include "compile/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::PrintHeader("TXT3: supported TPC-H queries across engines");
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  std::printf("scale factor %.3f\n\n", sf);
  std::printf("%-5s %6s %14s %14s %14s %16s %12s %8s\n", "query", "rows",
              "volcano (ms)", "tqp cpu (ms)", "tqp par (ms)",
              "tqp gpu-sim(ms)", "columnar(ms)", "correct");

  QueryCompiler compiler;
  const bench::TimingProtocol quick{2, 3};
  for (int q : tpch::SupportedQueries()) {
    const std::string sql = tpch::QueryText(q).ValueOrDie();
    VolcanoEngine volcano(&catalog);
    PlanPtr plan = PlanQuery(sql, catalog).ValueOrDie();
    Table oracle;
    const double volcano_sec = bench::MedianTime(
        [&] { oracle = volcano.Execute(plan).ValueOrDie(); }, quick);

    CompileOptions cpu_options;
    CompiledQuery cpu_query = compiler.CompileSql(sql, catalog, cpu_options)
                                  .ValueOrDie();
    std::vector<Tensor> inputs = cpu_query.CollectInputs(catalog).ValueOrDie();
    Table result;
    const double tqp_sec = bench::MedianTime(
        [&] { result = cpu_query.RunWithInputs(inputs).ValueOrDie(); }, quick);

    CompileOptions par_options;
    par_options.target = ExecutorTarget::kParallel;
    CompiledQuery par_query = compiler.CompileSql(sql, catalog, par_options)
                                  .ValueOrDie();
    Table par_result;
    const double par_sec = bench::MedianTime(
        [&] { par_result = par_query.RunWithInputs(inputs).ValueOrDie(); }, quick);

    CompileOptions gpu_options;
    gpu_options.device = DeviceKind::kCudaSim;
    CompiledQuery gpu_query = compiler.CompileSql(sql, catalog, gpu_options)
                                  .ValueOrDie();
    Device* dev = GetDevice(DeviceKind::kCudaSim);
    dev->ResetClock();
    TQP_CHECK_OK(gpu_query.Run(catalog).status());
    const double gpu_sim_sec = dev->simulated_seconds();

    ColumnarEngine columnar(&catalog);
    Table columnar_result;
    const double columnar_sec = bench::MedianTime(
        [&] { columnar_result = columnar.ExecuteSql(sql).ValueOrDie(); }, quick);

    const bool ok = TablesEqualUnordered(result, oracle).ok() &&
                    TablesEqualUnordered(par_result, oracle).ok() &&
                    TablesEqualUnordered(columnar_result, oracle).ok();
    std::printf("Q%-4d %6lld %14.3f %14.3f %14.3f %16.3f %12.3f %8s\n", q,
                static_cast<long long>(oracle.num_rows()), volcano_sec * 1e3,
                tqp_sec * 1e3, par_sec * 1e3, gpu_sim_sec * 1e3,
                columnar_sec * 1e3, ok ? "yes" : "NO");
  }
  return 0;
}
