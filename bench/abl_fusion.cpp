// ABL1 — ablation for the TorchScript-analog StaticExecutor (the mechanism
// behind Figure 3's backend choices): elementwise-chain fusion + early buffer
// release vs the eager executor, on (a) a synthetic pointwise chain and
// (b) TPC-H Q1/Q6 expression-heavy queries.
//
// Usage: abl_fusion [scale_factor]   (default 0.1)

#include <cstdio>

#include "bench_util.h"
#include "compile/compiler.h"
#include "graph/static_executor.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

// A Q6-like pointwise chain over one big column: ((x*a+b)*x - c) clamped,
// compared, combined — 12 fusible nodes.
std::shared_ptr<TensorProgram> MakeChainProgram() {
  auto program = std::make_shared<TensorProgram>();
  const int x = program->AddInput("x");
  auto constant = [&](double v) {
    return program->AddConstant(
        Tensor::Full(DType::kFloat64, 1, 1, v).ValueOrDie(), "c");
  };
  auto binary = [&](BinaryOpKind op, int a, int b) {
    AttrMap attrs;
    attrs.Set("op", static_cast<int64_t>(op));
    return program->AddNode(OpType::kBinary, {a, b}, attrs);
  };
  auto compare = [&](CompareOpKind op, int a, int b) {
    AttrMap attrs;
    attrs.Set("op", static_cast<int64_t>(op));
    return program->AddNode(OpType::kCompare, {a, b}, attrs);
  };
  int t = binary(BinaryOpKind::kMul, x, constant(1.0001));
  t = binary(BinaryOpKind::kAdd, t, constant(3.5));
  t = binary(BinaryOpKind::kMul, t, x);
  t = binary(BinaryOpKind::kSub, t, constant(0.25));
  t = binary(BinaryOpKind::kMin, t, constant(1e9));
  t = binary(BinaryOpKind::kMax, t, constant(-1e9));
  const int gt = compare(CompareOpKind::kGt, t, constant(0.0));
  const int lt = compare(CompareOpKind::kLt, t, constant(100.0));
  AttrMap and_attr;
  and_attr.Set("op", static_cast<int64_t>(LogicalOpKind::kAnd));
  const int mask = program->AddNode(OpType::kLogical, {gt, lt}, and_attr);
  const int where = program->AddNode(OpType::kWhere, {mask, t, constant(0.0)});
  AttrMap sum_attr;
  sum_attr.Set("op", static_cast<int64_t>(ReduceOpKind::kSum));
  const int sum = program->AddNode(OpType::kReduceAll, {where}, sum_attr);
  program->MarkOutput(sum);
  return program;
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.1);
  bench::PrintHeader("ABL1: static (fused) vs eager executor");

  // (a) Synthetic pointwise chain at several sizes.
  std::printf("\nsynthetic 10-op pointwise chain:\n");
  std::printf("%10s %12s %12s %9s %7s\n", "rows", "eager (ms)", "static (ms)",
              "speedup", "groups");
  auto program = MakeChainProgram();
  for (int64_t n : {100000L, 1000000L, 4000000L}) {
    Tensor x = Tensor::Full(DType::kFloat64, n, 1, 1.5).ValueOrDie();
    auto eager = MakeExecutor(ExecutorTarget::kEager, program).ValueOrDie();
    auto fused = MakeExecutor(ExecutorTarget::kStatic, program).ValueOrDie();
    const double eager_sec =
        bench::MedianTime([&] { TQP_CHECK_OK(eager->Run({x}).status()); });
    const double static_sec =
        bench::MedianTime([&] { TQP_CHECK_OK(fused->Run({x}).status()); });
    const auto* st = static_cast<const StaticExecutor*>(fused.get());
    std::printf("%10lld %12.3f %12.3f %8.2fx %7d\n", static_cast<long long>(n),
                eager_sec * 1e3, static_sec * 1e3, eager_sec / static_sec,
                st->num_fusion_groups());
  }

  // (b) TPC-H Q1 and Q6 (expression heavy).
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  QueryCompiler compiler;
  std::printf("\nTPC-H at SF %.3f:\n", sf);
  std::printf("%6s %12s %12s %9s\n", "query", "eager (ms)", "static (ms)",
              "speedup");
  for (int q : {1, 6}) {
    const std::string sql = tpch::QueryText(q).ValueOrDie();
    CompileOptions eager_options;
    eager_options.target = ExecutorTarget::kEager;
    CompiledQuery eager = compiler.CompileSql(sql, catalog, eager_options)
                              .ValueOrDie();
    CompileOptions static_options;
    static_options.target = ExecutorTarget::kStatic;
    CompiledQuery fused = compiler.CompileSql(sql, catalog, static_options)
                              .ValueOrDie();
    std::vector<Tensor> inputs = eager.CollectInputs(catalog).ValueOrDie();
    const double eager_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(eager.RunWithInputs(inputs).status()); });
    const double static_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(fused.RunWithInputs(inputs).status()); });
    std::printf("Q%-5d %12.3f %12.3f %8.2fx\n", q, eager_sec * 1e3,
                static_sec * 1e3, eager_sec / static_sec);
  }
  return 0;
}
