// ABL1 — fusion ablation, the mechanism behind the paper's claim that
// compiled operator chains win by making fewer passes over memory:
//  (a) elementwise-chain fusion in the TorchScript-analog StaticExecutor
//      (now backed by the ExprProgram expression-fusion layer) vs the eager
//      executor, on a synthetic pointwise chain and TPC-H Q1/Q6;
//  (b) single-pass fused expression execution inside the kPipelined
//      backend's morsel streams (CompileOptions::expr_fusion on/off),
//      reporting wall time, BufferPool peak live bytes and the number of
//      pool allocations per run — fusion's effect is measurable in
//      allocation counts and passes over memory even on one core.
//
// Emits JSON (one object) on stdout so CI can track the trajectory per
// commit; the human-readable summary goes to stderr.
//
// Usage: abl_fusion [scale_factor]   (default 0.1)

#include <cstdio>

#include "bench_util.h"
#include "compile/compiler.h"
#include "graph/static_executor.h"
#include "tensor/buffer_pool.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

// A Q6-like pointwise chain over one big column: ((x*a+b)*x - c) clamped,
// compared, combined — 12 fusible nodes.
std::shared_ptr<TensorProgram> MakeChainProgram() {
  auto program = std::make_shared<TensorProgram>();
  const int x = program->AddInput("x");
  auto constant = [&](double v) {
    return program->AddConstant(
        Tensor::Full(DType::kFloat64, 1, 1, v).ValueOrDie(), "c");
  };
  auto binary = [&](BinaryOpKind op, int a, int b) {
    AttrMap attrs;
    attrs.Set("op", static_cast<int64_t>(op));
    return program->AddNode(OpType::kBinary, {a, b}, attrs);
  };
  auto compare = [&](CompareOpKind op, int a, int b) {
    AttrMap attrs;
    attrs.Set("op", static_cast<int64_t>(op));
    return program->AddNode(OpType::kCompare, {a, b}, attrs);
  };
  int t = binary(BinaryOpKind::kMul, x, constant(1.0001));
  t = binary(BinaryOpKind::kAdd, t, constant(3.5));
  t = binary(BinaryOpKind::kMul, t, x);
  t = binary(BinaryOpKind::kSub, t, constant(0.25));
  t = binary(BinaryOpKind::kMin, t, constant(1e9));
  t = binary(BinaryOpKind::kMax, t, constant(-1e9));
  const int gt = compare(CompareOpKind::kGt, t, constant(0.0));
  const int lt = compare(CompareOpKind::kLt, t, constant(100.0));
  AttrMap and_attr;
  and_attr.Set("op", static_cast<int64_t>(LogicalOpKind::kAnd));
  const int mask = program->AddNode(OpType::kLogical, {gt, lt}, and_attr);
  const int where = program->AddNode(OpType::kWhere, {mask, t, constant(0.0)});
  AttrMap sum_attr;
  sum_attr.Set("op", static_cast<int64_t>(ReduceOpKind::kSum));
  const int sum = program->AddNode(OpType::kReduceAll, {where}, sum_attr);
  program->MarkOutput(sum);
  return program;
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.1);
  const bench::TimingProtocol protocol{5, 5};
  std::fprintf(stderr, "=== ABL1: expression fusion (static + pipelined) ===\n");

  std::printf("{\n  \"bench\": \"abl_fusion\",\n  \"scale_factor\": %.4f,\n", sf);

  // (a) Synthetic pointwise chain at several sizes: static (fused) vs eager.
  std::fprintf(stderr, "\nsynthetic 10-op pointwise chain:\n");
  std::fprintf(stderr, "%10s %12s %12s %12s %9s %7s %7s\n", "rows",
               "eager (ms)", "interp (ms)", "simd (ms)", "speedup", "i/s",
               "groups");
  auto program = MakeChainProgram();
  std::printf("  \"chain\": [");
  bool first = true;
  for (int64_t n : {100000L, 1000000L, 4000000L}) {
    Tensor x = Tensor::Full(DType::kFloat64, n, 1, 1.5).ValueOrDie();
    auto eager = MakeExecutor(ExecutorTarget::kEager, program).ValueOrDie();
    // The fused chain on both expression tiers: this is the pure
    // expression-bound case (no scan/aggregate dilution), so the
    // interp-vs-simd ratio here is the tier's headline number.
    ExecOptions interp_options;
    interp_options.expr_backend = ExprBackend::kInterp;
    auto fused =
        MakeExecutor(ExecutorTarget::kStatic, program, interp_options)
            .ValueOrDie();
    ExecOptions simd_options;
    simd_options.expr_backend = ExprBackend::kSimd;
    auto fused_simd =
        MakeExecutor(ExecutorTarget::kStatic, program, simd_options)
            .ValueOrDie();
    const double eager_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(eager->Run({x}).status()); }, protocol);
    const double static_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(fused->Run({x}).status()); }, protocol);
    const double simd_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(fused_simd->Run({x}).status()); }, protocol);
    const auto* st = static_cast<const StaticExecutor*>(fused.get());
    std::printf("%s\n    {\"rows\": %lld, \"eager_ms\": %.4f, "
                "\"static_ms\": %.4f, \"static_simd_ms\": %.4f, "
                "\"simd_speedup\": %.4f, \"fusion_groups\": %d, "
                "\"expr_groups\": %d}",
                first ? "" : ",", static_cast<long long>(n), eager_sec * 1e3,
                static_sec * 1e3, simd_sec * 1e3, static_sec / simd_sec,
                st->num_fusion_groups(), st->num_expr_fused_groups());
    first = false;
    std::fprintf(stderr, "%10lld %12.3f %12.3f %12.3f %8.2fx %6.2fx %7d\n",
                 static_cast<long long>(n), eager_sec * 1e3, static_sec * 1e3,
                 simd_sec * 1e3, eager_sec / simd_sec, static_sec / simd_sec,
                 st->num_fusion_groups());
  }
  std::printf("],\n");

  // (b) TPC-H Q1 and Q6 (expression heavy): static vs eager, and the
  // pipelined backend with expression fusion on vs off.
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  QueryCompiler compiler;
  std::fprintf(stderr, "\nTPC-H at SF %.3f:\n", sf);
  std::fprintf(stderr,
               "%6s %12s %12s %9s | pipelined: %11s %11s %12s %8s %10s\n",
               "query", "eager (ms)", "static (ms)", "speedup", "interp (ms)",
               "simd (ms)", "unfused (ms)", "i/s", "alloc f/u");
  std::printf("  \"tpch\": [");
  first = true;
  for (int q : {1, 6}) {
    const std::string sql = tpch::QueryText(q).ValueOrDie();
    CompileOptions eager_options;
    eager_options.target = ExecutorTarget::kEager;
    CompiledQuery eager =
        compiler.CompileSql(sql, catalog, eager_options).ValueOrDie();
    CompileOptions static_options;
    static_options.target = ExecutorTarget::kStatic;
    CompiledQuery fused =
        compiler.CompileSql(sql, catalog, static_options).ValueOrDie();
    std::vector<Tensor> inputs = eager.CollectInputs(catalog).ValueOrDie();
    const double eager_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(eager.RunWithInputs(inputs).status()); }, protocol);
    const double static_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(fused.RunWithInputs(inputs).status()); }, protocol);

    // Three pipelined configurations: fused runs through the vectorized
    // interpreter, fused runs through the SIMD tier, and fusion off.
    struct PipeConfig {
      bool fusion;
      ExprBackend backend;
      const char* name;
    };
    const PipeConfig configs[] = {
        {true, ExprBackend::kInterp, "interp"},
        {true, ExprBackend::kSimd, "simd"},
        {false, ExprBackend::kInterp, "interp"},
    };
    bench::PoolTimedRun pipe[3];
    for (int fi = 0; fi < 3; ++fi) {
      CompileOptions options;
      options.target = ExecutorTarget::kPipelined;
      options.num_threads = 1;  // serial: allocation counts are exact
      options.expr_fusion = configs[fi].fusion;
      options.expr_backend = configs[fi].backend;
      CompiledQuery query =
          compiler.CompileSql(sql, catalog, options).ValueOrDie();
      pipe[fi] = bench::MeasureWithPool(
          [&] { TQP_CHECK_OK(query.RunWithInputs(inputs).status()); },
          protocol);
    }
    // interp-vs-simd wall ratio on identical fused plans (> 1: SIMD wins).
    const double simd_speedup = pipe[0].seconds / pipe[1].seconds;
    std::printf(
        "%s\n    {\"query\": \"Q%d\", \"eager_ms\": %.4f, \"static_ms\": %.4f,"
        "\n     \"pipelined\": [",
        first ? "" : ",", q, eager_sec * 1e3, static_sec * 1e3);
    for (int fi = 0; fi < 3; ++fi) {
      std::printf(
          "%s\n      {\"expr_fusion\": %s, \"expr_backend\": \"%s\", "
          "\"ms\": %.4f, \"peak_alloc_mb\": %.3f, \"allocs\": %lld}",
          fi == 0 ? "" : ",", configs[fi].fusion ? "true" : "false",
          configs[fi].name, pipe[fi].seconds * 1e3, pipe[fi].peak_alloc_mb,
          static_cast<long long>(pipe[fi].allocs));
    }
    std::printf("],\n     \"simd_speedup\": %.4f}", simd_speedup);
    first = false;
    std::fprintf(stderr,
                 "Q%-5d %12.3f %12.3f %8.2fx | %11.3f %11.3f %12.3f %7.2fx "
                 "%4lld/%-5lld\n",
                 q, eager_sec * 1e3, static_sec * 1e3, eager_sec / static_sec,
                 pipe[0].seconds * 1e3, pipe[1].seconds * 1e3,
                 pipe[2].seconds * 1e3, simd_speedup,
                 static_cast<long long>(pipe[0].allocs),
                 static_cast<long long>(pipe[2].allocs));
  }
  std::printf("]\n}\n");
  return 0;
}
