// ABL5 — quantifies the §3.3 motivation: unified relational+ML runtime
// (one tensor program) vs the "two runtimes" architecture of SQL Server
// PREDICT (relational engine materializes rows, hands them to a separate ML
// runtime, results come back for final aggregation).
//
// Unified:   compiled Figure-4 query (tokenize/model fused into the plan).
// Two-phase: (1) SQL: SELECT brand, rating, text FROM reviews;
//            (2) model batch-scores the materialized text column;
//            (3) SQL over a re-registered table computes the aggregates.
//
// Usage: abl_predict_fusion [reviews_thousands]   (default 20)

#include <cstdio>

#include "bench_util.h"
#include "compile/compiler.h"
#include "datasets/reviews.h"
#include "kernels/kernels.h"
#include "ml/text.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double arg = bench::ScaleFactorArg(argc, argv, 20);
  const int64_t num_reviews = static_cast<int64_t>(arg * 1000);
  bench::PrintHeader("ABL5: fused prediction query vs two-runtime split");
  Catalog catalog;
  datasets::ReviewsOptions review_options;
  review_options.num_reviews = num_reviews;
  catalog.RegisterTable("amazon_reviews",
                        datasets::ReviewsTable(review_options).ValueOrDie());
  ml::ModelRegistry registry;
  std::vector<std::string> texts;
  std::vector<double> labels;
  datasets::GenerateReviewTexts(2000, 31, &texts, &labels);
  auto model = ml::SentimentClassifier::Fit("sentiment_classifier", texts, labels)
                   .ValueOrDie();
  registry.Register(model);

  const std::string fused_sql =
      "SELECT brand, "
      "SUM(CASE WHEN rating >= 3 THEN 1 ELSE 0 END) AS actual_positive, "
      "SUM(PREDICT('sentiment_classifier', text)) AS predicted_positive "
      "FROM amazon_reviews GROUP BY brand";

  QueryCompiler compiler(&registry);
  CompiledQuery fused = compiler.CompileSql(fused_sql, catalog).ValueOrDie();
  std::vector<Tensor> fused_inputs = fused.CollectInputs(catalog).ValueOrDie();
  Table fused_result;
  const double fused_sec = bench::MedianTime(
      [&] { fused_result = fused.RunWithInputs(fused_inputs).ValueOrDie(); });

  // Two-runtime architecture.
  CompiledQuery extract =
      compiler
          .CompileSql("SELECT brand, rating, text FROM amazon_reviews", catalog)
          .ValueOrDie();
  Table two_result;
  const double split_sec = bench::MedianTime([&] {
    // Phase 1: relational engine materializes the model inputs.
    Table staged = extract.Run(catalog).ValueOrDie();
    // Phase 2: hand the text column to the "external" ML runtime.
    Tensor scores =
        model->PredictBatch({staged.column(2).tensor()}).ValueOrDie();
    // Phase 3: re-register and aggregate relationally.
    Catalog scratch;
    Schema schema = staged.schema();
    schema.AddField(Field{"predicted", LogicalType::kFloat64});
    std::vector<Column> cols = staged.columns();
    cols.emplace_back(LogicalType::kFloat64, scores);
    scratch.RegisterTable("scored", Table::Make(schema, cols).ValueOrDie());
    QueryCompiler agg_compiler;
    two_result =
        agg_compiler
            .CompileSql(
                "SELECT brand, "
                "SUM(CASE WHEN rating >= 3 THEN 1 ELSE 0 END) AS actual_positive, "
                "SUM(predicted) AS predicted_positive "
                "FROM scored GROUP BY brand",
                scratch)
            .ValueOrDie()
            .Run(scratch)
            .ValueOrDie();
  });

  std::printf("%lld reviews\n\n", static_cast<long long>(num_reviews));
  std::printf("unified tensor program: %10.3f ms\n", fused_sec * 1e3);
  std::printf("two-runtime split:      %10.3f ms (%.2fx slower)\n",
              split_sec * 1e3, split_sec / fused_sec);
  std::printf("results identical: %s\n",
              TablesEqualUnordered(fused_result, two_result).ok() ? "yes" : "NO");
  std::printf("\n(the split pays full materialization of the text column, a "
              "second engine round-trip, and repeated plan compilation — the "
              "overheads the paper's unified runtime removes)\n");
  return 0;
}
