// TXT2 — reproduces the paper's §1 claim: "on Q6 and Q14 at scale factor 1,
// TQP is ... more than 4x faster than BlazingSQL on GPU".
//
// Both systems run on the simulated P100 (DESIGN.md §1): TQP executes its
// compiled program (fused pointwise chains, program-level planning); the
// BlazingSQL stand-in is the columnar engine that launches one kernel per
// expression node and materializes every intermediate — the same
// kernel-granularity gap the paper measures. Reported numbers are the
// simulated device clock.
//
// Usage: txt2_gpu_baseline [scale_factor]   (default 0.05)

#include <cstdio>

#include "baseline/columnar.h"
#include "bench_util.h"
#include "compile/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

double TqpGpuSeconds(const std::string& sql, const Catalog& catalog) {
  QueryCompiler compiler;
  CompileOptions options;
  options.target = ExecutorTarget::kStatic;
  options.device = DeviceKind::kCudaSim;
  options.charge_transfers = false;  // data resident on device, as in the paper
  CompiledQuery query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
  std::vector<Tensor> inputs = query.CollectInputs(catalog).ValueOrDie();
  Device* dev = GetDevice(DeviceKind::kCudaSim);
  dev->ResetClock();
  TQP_CHECK_OK(query.RunWithInputs(inputs).status());
  return dev->simulated_seconds();
}

double ColumnarGpuSeconds(const std::string& sql, const Catalog& catalog,
                          int64_t* kernels) {
  ColumnarEngine engine(&catalog, nullptr, DeviceKind::kCudaSim,
                        /*charge_transfers=*/false);
  Device* dev = GetDevice(DeviceKind::kCudaSim);
  dev->ResetClock();
  TQP_CHECK_OK(engine.ExecuteSql(sql).status());
  *kernels = engine.last_kernels();
  return dev->simulated_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.05);
  bench::PrintHeader("TXT2: TQP vs BlazingSQL stand-in on the simulated GPU");
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));

  std::printf("scale factor %.3f; timings are the simulated P100 clock\n\n", sf);
  std::printf("%-6s %18s %24s %10s\n", "query", "TQP gpu (ms)",
              "columnar gpu (ms)", "speedup");
  for (int q : {6, 14}) {
    const std::string sql = tpch::QueryText(q).ValueOrDie();
    const double tqp = TqpGpuSeconds(sql, catalog);
    int64_t kernels = 0;
    const double columnar = ColumnarGpuSeconds(sql, catalog, &kernels);
    std::printf("Q%-5d %18.3f %17.3f (%3lld) %9.2fx\n", q, tqp * 1e3,
                columnar * 1e3, static_cast<long long>(kernels), columnar / tqp);
  }
  std::printf("\n(paper claims > 4x on Q6/Q14 vs BlazingSQL; the parenthesized"
              " count is the baseline's kernel launches)\n");
  return 0;
}
