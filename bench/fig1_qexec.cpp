// FIG1 — reproduces Figure 1 of the paper: execution times for TPC-H Q6 and
// Q14 on (a) the Spark stand-in (row-oriented Volcano engine, CPU), (b) TQP
// on CPU (TorchScript-analog static executor), (c) TQP on the simulated GPU
// (calibrated P100 roofline clock; see DESIGN.md §1), and (d) TQP on the
// web-analog bytecode interpreter.
//
// The paper reports, at SF 1: TQP-CPU ~3x faster than Spark on both queries,
// GPU 20x (Q6) and 6x (Q14) faster than Spark, web much slower (TXT1).
// Expected shape here: same ordering and comparable ratios.
//
// Usage: fig1_qexec [scale_factor]   (default 0.05)

#include <cstdio>

#include "baseline/volcano.h"
#include "bench_util.h"
#include "compile/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

struct Row {
  const char* system;
  double q6_sec;
  double q14_sec;
};

double RunTqp(const std::string& sql, const Catalog& catalog,
              ExecutorTarget target, DeviceKind device, double* simulated_sec) {
  QueryCompiler compiler;
  CompileOptions options;
  options.target = target;
  options.device = device;
  CompiledQuery query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
  std::vector<Tensor> inputs = query.CollectInputs(catalog).ValueOrDie();
  Device* dev = GetDevice(device);
  double sim = 0;
  const double wall = bench::MedianTime([&] {
    dev->ResetClock();
    TQP_CHECK_OK(query.RunWithInputs(inputs).status());
    sim = dev->simulated_seconds();
  });
  if (simulated_sec != nullptr) *simulated_sec = sim;
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.05);
  bench::PrintHeader("Figure 1: TPC-H Q6/Q14 across engines and backends");
  std::printf("scale factor %.3f (paper used SF 1; shape, not absolute values,"
              " is the target)\n", sf);
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  const std::string q6 = tpch::QueryText(6).ValueOrDie();
  const std::string q14 = tpch::QueryText(14).ValueOrDie();

  std::vector<Row> rows;
  // (a) Spark stand-in: row-oriented Volcano, CPU.
  {
    VolcanoEngine volcano(&catalog);
    PlanPtr p6 = PlanQuery(q6, catalog).ValueOrDie();
    PlanPtr p14 = PlanQuery(q14, catalog).ValueOrDie();
    rows.push_back(
        {"spark-sim (volcano cpu)",
         bench::MedianTime([&] { TQP_CHECK_OK(volcano.Execute(p6).status()); }),
         bench::MedianTime([&] { TQP_CHECK_OK(volcano.Execute(p14).status()); })});
  }
  // (b) TQP on CPU (static/TorchScript analog).
  rows.push_back({"TQP cpu (static)",
                  RunTqp(q6, catalog, ExecutorTarget::kStatic, DeviceKind::kCpu,
                         nullptr),
                  RunTqp(q14, catalog, ExecutorTarget::kStatic, DeviceKind::kCpu,
                         nullptr)});
  // (c) TQP on the simulated GPU: report the simulated device clock.
  {
    double q6_sim = 0;
    double q14_sim = 0;
    RunTqp(q6, catalog, ExecutorTarget::kStatic, DeviceKind::kCudaSim, &q6_sim);
    RunTqp(q14, catalog, ExecutorTarget::kStatic, DeviceKind::kCudaSim, &q14_sim);
    rows.push_back({"TQP gpu (simulated P100)", q6_sim, q14_sim});
  }
  // (d) TQP web analog: bytecode interpreter (scalar, boxed) with the
  // modeled client-laptop/browser derating (see device.h).
  rows.push_back({"TQP web (interp, modeled)",
                  RunTqp(q6, catalog, ExecutorTarget::kInterp, DeviceKind::kCpu,
                         nullptr) *
                      kWebEnvironmentDerating,
                  RunTqp(q14, catalog, ExecutorTarget::kInterp, DeviceKind::kCpu,
                         nullptr) *
                      kWebEnvironmentDerating});

  std::printf("\n%-28s %12s %12s\n", "system", "Q6 (ms)", "Q14 (ms)");
  for (const Row& row : rows) {
    std::printf("%-28s %12.3f %12.3f\n", row.system, row.q6_sec * 1e3,
                row.q14_sec * 1e3);
  }
  const Row& spark = rows[0];
  std::printf("\nspeedup vs spark-sim (paper: cpu ~3x, gpu 20x/6x, web << 1x):\n");
  for (size_t i = 1; i < rows.size(); ++i) {
    std::printf("%-28s %11.2fx %11.2fx\n", rows[i].system,
                spark.q6_sec / rows[i].q6_sec, spark.q14_sec / rows[i].q14_sec);
  }
  return 0;
}
