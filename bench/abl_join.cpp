// ABL2 — join algorithm ablation: the paper's tensor-friendly
// sort+searchsorted join (what the TQP compiler emits) vs a classic CPU
// build+probe hash join, plus the radix-partitioned grace hash join vs the
// monolithic morsel-parallel build+probe, across build/probe sizes and key
// skew. The partitioned columns report the partition count the budget chose,
// the recursion depth skew forced, and bytes spilled through the partition
// buffers.
//
// Emits JSON (one object) on stdout so CI can track the trajectory per
// commit; the human-readable summary goes to stderr.
//
// Usage: abl_join [scale]   (scales the base row counts; default 1)

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "operators/hash_join.h"
#include "operators/partitioned/grace_join.h"
#include "operators/partitioned/partition.h"
#include "runtime/parallel_operators.h"
#include "runtime/thread_pool.h"
#include "tensor/buffer_pool.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

Tensor RandomKeys(int64_t n, int64_t domain, double zipf_theta, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Empty(DType::kInt64, n, 1).ValueOrDie();
  int64_t* p = t.mutable_data<int64_t>();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = zipf_theta > 0 ? rng.Zipf(domain, zipf_theta) : rng.Uniform(0, domain - 1);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ScaleFactorArg(argc, argv, 1.0);
  const bench::TimingProtocol protocol{2, 5};
  runtime::ThreadPool* pool = runtime::ThreadPool::Global();
  std::fprintf(stderr,
               "=== ABL2: sort-merge vs hash vs partitioned join (%d threads) "
               "===\n",
               pool->num_threads());
  std::fprintf(stderr,
               "%9s %9s %5s %10s %9s %9s %9s %7s %6s %6s %8s %9s\n", "probe",
               "build", "skew", "sm (ms)", "hash(ms)", "mono(ms)", "part(ms)",
               "m/p", "parts", "depth", "spill MB", "out rows");

  std::printf("{\n  \"bench\": \"abl_join\",\n  \"scale_factor\": %.4f,\n"
              "  \"threads\": %d,\n  \"configs\": [",
              scale, pool->num_threads());
  struct Config {
    int64_t probe;
    int64_t build;
    double zipf;
  };
  const Config configs[] = {
      {100000, 1000, 0.0},   {100000, 100000, 0.0}, {1000000, 10000, 0.0},
      {1000000, 1000000, 0.0}, {1000000, 10000, 0.8},
  };
  bool first = true;
  for (const Config& cfg : configs) {
    const auto probe_n = static_cast<int64_t>(static_cast<double>(cfg.probe) * scale);
    const auto build_n = static_cast<int64_t>(static_cast<double>(cfg.build) * scale);
    Tensor probe = RandomKeys(probe_n, build_n, cfg.zipf, 1);
    Tensor build = RandomKeys(build_n, build_n, 0.0, 2);
    int64_t out_rows = 0;
    const double sm_sec = bench::MedianTime(
        [&] {
          auto r = op::SortMergeJoinIndices(probe, build).ValueOrDie();
          out_rows = r.left_ids.rows();
        },
        protocol);
    const double hash_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(op::HashJoinIndices(probe, build).status()); },
        protocol);

    // Monolithic morsel-parallel build+probe vs the radix-partitioned grace
    // join, both on the shared pool. The grace join is called directly so
    // its partition choice is observable regardless of row-count routing
    // thresholds.
    runtime::ParallelContext ctx;
    ctx.pool = pool;
    const bench::PoolTimedRun mono = bench::MeasureWithPool(
        [&] {
          TQP_CHECK_OK(
              runtime::ParallelHashJoinIndices(ctx, probe, build).status());
        },
        protocol);
    op::partitioned::PartitionConfig config;
    config.budget_bytes = BufferPool::ResolveMemoryBudget(0);
    config.forced_bits = op::partitioned::ForcedPartitionBits();
    op::partitioned::PartitionStats stats;
    const bench::PoolTimedRun part = bench::MeasureWithPool(
        [&] {
          stats = {};
          TQP_CHECK_OK(op::partitioned::GraceHashJoinIndices(ctx, probe, build,
                                                             config, &stats)
                           .status());
        },
        protocol);
    const double ratio = part.seconds > 0 ? mono.seconds / part.seconds : 0.0;
    std::printf(
        "%s\n    {\"probe\": %lld, \"build\": %lld, \"zipf\": %.2f,"
        "\n     \"sortmerge_ms\": %.4f, \"hash_ms\": %.4f,"
        " \"monolithic_ms\": %.4f, \"partitioned_ms\": %.4f,"
        "\n     \"partitioned_speedup\": %.4f, \"partitions\": %lld,"
        " \"recursion_depth\": %lld, \"repartitions\": %lld,"
        "\n     \"spilled_mb\": %.3f, \"peak_alloc_mb\": %.3f,"
        " \"out_rows\": %lld}",
        first ? "" : ",", static_cast<long long>(probe_n),
        static_cast<long long>(build_n), cfg.zipf, sm_sec * 1e3,
        hash_sec * 1e3, mono.seconds * 1e3, part.seconds * 1e3, ratio,
        static_cast<long long>(stats.partitions),
        static_cast<long long>(stats.recursion_depth),
        static_cast<long long>(stats.repartitions), part.spilled_mb,
        part.peak_alloc_mb, static_cast<long long>(out_rows));
    first = false;
    std::fprintf(stderr,
                 "%9lld %9lld %5.1f %10.3f %9.3f %9.3f %9.3f %6.2fx %6lld "
                 "%6lld %8.2f %9lld\n",
                 static_cast<long long>(probe_n),
                 static_cast<long long>(build_n), cfg.zipf, sm_sec * 1e3,
                 hash_sec * 1e3, mono.seconds * 1e3, part.seconds * 1e3, ratio,
                 static_cast<long long>(stats.partitions),
                 static_cast<long long>(stats.recursion_depth),
                 part.spilled_mb, static_cast<long long>(out_rows));
  }
  std::printf("]\n}\n");
  std::fprintf(stderr,
               "\n(sort-merge is the GPU-expressible formulation the compiler "
               "emits; the grace join partitions build and probe by key hash "
               "so each build partition is cache-sized and spillable — its "
               "win over the monolithic build grows with build size and "
               "thread count)\n");
  return 0;
}
