// ABL2 — join algorithm ablation: the paper's tensor-friendly
// sort+searchsorted join (what the TQP compiler emits) vs a classic CPU
// build+probe hash join, across build/probe sizes and key skew.
//
// Usage: abl_join [scale]   (scales the base row counts; default 1)

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "operators/hash_join.h"

using namespace tqp;  // NOLINT: bench binary

namespace {

Tensor RandomKeys(int64_t n, int64_t domain, double zipf_theta, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Empty(DType::kInt64, n, 1).ValueOrDie();
  int64_t* p = t.mutable_data<int64_t>();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = zipf_theta > 0 ? rng.Zipf(domain, zipf_theta) : rng.Uniform(0, domain - 1);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ScaleFactorArg(argc, argv, 1.0);
  bench::PrintHeader("ABL2: sort-merge (searchsorted) vs hash join");
  std::printf("%10s %10s %6s %16s %12s %9s %10s\n", "probe", "build", "skew",
              "sort-merge (ms)", "hash (ms)", "sm/hash", "out rows");
  struct Config {
    int64_t probe;
    int64_t build;
    double zipf;
  };
  const Config configs[] = {
      {100000, 1000, 0.0},   {100000, 100000, 0.0}, {1000000, 10000, 0.0},
      {1000000, 1000000, 0.0}, {1000000, 10000, 0.8},
  };
  for (const Config& cfg : configs) {
    const auto probe_n = static_cast<int64_t>(static_cast<double>(cfg.probe) * scale);
    const auto build_n = static_cast<int64_t>(static_cast<double>(cfg.build) * scale);
    Tensor probe = RandomKeys(probe_n, build_n, cfg.zipf, 1);
    Tensor build = RandomKeys(build_n, build_n, 0.0, 2);
    int64_t out_rows = 0;
    const double sm_sec = bench::MedianTime(
        [&] {
          auto r = op::SortMergeJoinIndices(probe, build).ValueOrDie();
          out_rows = r.left_ids.rows();
        },
        bench::TimingProtocol{2, 5});
    const double hash_sec = bench::MedianTime(
        [&] { TQP_CHECK_OK(op::HashJoinIndices(probe, build).status()); },
        bench::TimingProtocol{2, 5});
    std::printf("%10lld %10lld %6.1f %16.3f %12.3f %8.2fx %10lld\n",
                static_cast<long long>(probe_n), static_cast<long long>(build_n),
                cfg.zipf, sm_sec * 1e3, hash_sec * 1e3, sm_sec / hash_sec,
                static_cast<long long>(out_rows));
  }
  std::printf("\n(the compiler defaults to sort-merge because it is the "
              "GPU-expressible formulation; hash wins on CPU for small build "
              "sides — the classic trade-off)\n");
  return 0;
}
