// TXT4 — reproduces the paper's §2.1 data-representation claim: "data
// transformation is in general zero-copy, except date and string columns
// that require data conversion". Measures tensorization of a
// Pandas-DataFrame-like host frame: numeric columns wrap in place (no bytes
// copied), dates parse to epoch days, strings pad into (n x m) uint8.
//
// Usage: tbl_conversion [rows_millions]   (default 0.5 -> 500k rows)

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "relational/date.h"
#include "relational/ingest.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double arg = bench::ScaleFactorArg(argc, argv, 0.5);
  const int64_t n = static_cast<int64_t>(arg * 1e6);
  bench::PrintHeader("TXT4: tensorization cost by column type (paper 2.1)");
  Rng rng(5);
  std::vector<int64_t> ints(static_cast<size_t>(n));
  std::vector<double> doubles(static_cast<size_t>(n));
  std::vector<std::string> dates(static_cast<size_t>(n));
  std::vector<std::string> strings(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ints[static_cast<size_t>(i)] = rng.Uniform(0, 1 << 30);
    doubles[static_cast<size_t>(i)] = rng.NextDouble();
    dates[static_cast<size_t>(i)] = FormatDate(rng.Uniform(8035, 10591));
    strings[static_cast<size_t>(i)] = rng.NextString(static_cast<int>(rng.Uniform(4, 24)));
  }

  struct Case {
    const char* column_type;
    std::function<void(HostFrame*)> add;
  };
  const Case cases[] = {
      {"int64 (zero-copy)", [&](HostFrame* f) { f->AddInt64("c", ints); }},
      {"float64 (zero-copy)", [&](HostFrame* f) { f->AddDouble("c", doubles); }},
      {"date (converted)", [&](HostFrame* f) { f->AddDateStrings("c", dates); }},
      {"string (converted)", [&](HostFrame* f) { f->AddStrings("c", strings); }},
  };

  std::printf("%lld rows per column\n\n", static_cast<long long>(n));
  std::printf("%-22s %12s %14s %14s %12s\n", "column type", "time (ms)",
              "zero-copy (MB)", "converted (MB)", "MB/s");
  for (const Case& c : cases) {
    HostFrame frame;
    c.add(&frame);
    IngestStats stats;
    const double sec = bench::MedianTime(
        [&] {
          stats = IngestStats{};
          TQP_CHECK_OK(frame.ToTable(/*zero_copy=*/true, &stats).status());
        },
        bench::TimingProtocol{2, 5});
    const double mb =
        static_cast<double>(stats.bytes_zero_copy + stats.bytes_converted) / 1e6;
    std::printf("%-22s %12.3f %14.2f %14.2f %12.0f\n", c.column_type, sec * 1e3,
                static_cast<double>(stats.bytes_zero_copy) / 1e6,
                static_cast<double>(stats.bytes_converted) / 1e6, mb / sec);
  }
  std::printf("\nnumeric columns report ~0 ms (pointer wrap); dates/strings "
              "pay a real conversion pass, as the paper states.\n");

  // Cross-check: zero-copy off forces numeric copies too.
  HostFrame frame;
  frame.AddInt64("c", ints);
  IngestStats stats;
  const double copy_sec = bench::MedianTime(
      [&] {
        stats = IngestStats{};
        TQP_CHECK_OK(frame.ToTable(/*zero_copy=*/false, &stats).status());
      },
      bench::TimingProtocol{2, 5});
  std::printf("int64 with zero-copy disabled: %.3f ms (%.2f MB copied)\n",
              copy_sec * 1e3, static_cast<double>(stats.bytes_converted) / 1e6);
  return 0;
}
