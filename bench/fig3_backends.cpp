// FIG3 — reproduces Figure 3 of the paper: the same query (TPC-H Q6) is
// compiled once per backend/device with a one-line option change, and all
// backends produce the same result. Prints the full executor-target x device
// matrix with timings, demonstrating the portability claim.
//
// Usage: fig3_backends [scale_factor]   (default 0.05)

#include <cstdio>

#include "bench_util.h"
#include "compile/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double sf = bench::ScaleFactorArg(argc, argv, 0.05);
  bench::PrintHeader("Figure 3: one-line backend/device switch (TPC-H Q6)");
  Catalog catalog;
  tpch::DbgenOptions gen;
  gen.scale_factor = sf;
  TQP_CHECK_OK(tpch::GenerateAll(gen, &catalog));
  const std::string sql = tpch::QueryText(6).ValueOrDie();
  QueryCompiler compiler;

  // Reference answer for the "same correct result" check.
  CompiledQuery reference = compiler.CompileSql(sql, catalog).ValueOrDie();
  Table expected = reference.Run(catalog).ValueOrDie();
  const double expected_revenue = expected.column(0).tensor().at<double>(0);
  std::printf("scale factor %.3f; Q6 revenue = %.2f\n\n", sf, expected_revenue);

  std::printf("%-10s %-10s %14s %16s  %s\n", "target", "device", "wall (ms)",
              "sim clock (ms)", "result");
  for (ExecutorTarget target :
       {ExecutorTarget::kEager, ExecutorTarget::kStatic, ExecutorTarget::kInterp}) {
    for (DeviceKind device : {DeviceKind::kCpu, DeviceKind::kCudaSim}) {
      if (target == ExecutorTarget::kInterp && device == DeviceKind::kCudaSim) {
        continue;  // browser backend targets CPU (see paper footnote 2)
      }
      // The paper's point: switching backend is one line.
      CompileOptions options;
      options.target = target;  // <- the one line
      options.device = device;  // <- and the other one line
      CompiledQuery query = compiler.CompileSql(sql, catalog, options).ValueOrDie();
      std::vector<Tensor> inputs = query.CollectInputs(catalog).ValueOrDie();
      Device* dev = GetDevice(device);
      double sim = 0;
      Table result;
      const double wall = bench::MedianTime([&] {
        dev->ResetClock();
        result = query.RunWithInputs(inputs).ValueOrDie();
        sim = dev->simulated_seconds();
      });
      const bool same = TablesEqualUnordered(result, expected).ok();
      std::printf("%-10s %-10s %14.3f %16.3f  %s\n", ExecutorTargetName(target),
                  DeviceKindName(device), wall * 1e3,
                  dev->is_simulated() ? sim * 1e3 : 0.0,
                  same ? "identical" : "MISMATCH");
    }
  }
  std::printf("\nbytecode export: the interp target serialized the program to "
              "the portable format (ONNX-analog) and reloaded it before "
              "execution.\n");
  return 0;
}
