// ABL3 — aggregation algorithm ablation: the paper's sort-based group-by
// (argsort + boundaries + segmented reduce, what the TQP compiler emits) vs
// hash-based grouping, sweeping the number of distinct groups.
//
// Usage: abl_groupby [rows_millions]   (default 1)

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "operators/hash_groupby.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double arg = bench::ScaleFactorArg(argc, argv, 1.0);
  const int64_t n = static_cast<int64_t>(arg * 1e6);
  bench::PrintHeader("ABL3: sort-based vs hash-based group-by");
  std::printf("%lld input rows, SUM aggregate\n\n", static_cast<long long>(n));
  std::printf("%10s %14s %12s %10s\n", "groups", "sort (ms)", "hash (ms)",
              "sort/hash");
  Rng rng(3);
  Tensor values = Tensor::Empty(DType::kFloat64, n, 1).ValueOrDie();
  for (int64_t i = 0; i < n; ++i) {
    values.mutable_data<double>()[i] = rng.NextDouble();
  }
  for (int64_t groups : {4L, 64L, 1024L, 65536L, 1048576L}) {
    Tensor keys = Tensor::Empty(DType::kInt64, n, 1).ValueOrDie();
    for (int64_t i = 0; i < n; ++i) {
      keys.mutable_data<int64_t>()[i] = rng.Uniform(0, groups - 1);
    }
    const std::vector<Tensor> key_cols{keys};
    const double sort_sec = bench::MedianTime(
        [&] {
          auto g = op::SortGroupIds(key_cols).ValueOrDie();
          TQP_CHECK_OK(
              op::GroupedReduce(ReduceOpKind::kSum, values, g).status());
        },
        bench::TimingProtocol{1, 3});
    const double hash_sec = bench::MedianTime(
        [&] {
          auto g = op::HashGroupIds(key_cols).ValueOrDie();
          TQP_CHECK_OK(
              op::GroupedReduce(ReduceOpKind::kSum, values, g).status());
        },
        bench::TimingProtocol{1, 3});
    std::printf("%10lld %14.3f %12.3f %9.2fx\n", static_cast<long long>(groups),
                sort_sec * 1e3, hash_sec * 1e3, sort_sec / hash_sec);
  }
  std::printf("\n(sort-based is what the tensor compiler emits — it is "
              "expressible as pure tensor ops and scales on GPUs; hash wins "
              "on CPUs at low group counts)\n");
  return 0;
}
