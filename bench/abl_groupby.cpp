// ABL3 — aggregation algorithm ablation: the paper's sort-based group-by
// (argsort + boundaries + segmented reduce, what the TQP compiler emits) vs
// hash-based grouping, plus the radix-partitioned aggregation vs the
// monolithic morsel-parallel grouping, sweeping the number of distinct
// groups. The partitioned columns report the partition count the budget
// chose, the recursion depth, and bytes spilled through the partition
// buffers; the timed pipeline includes the float SUM, which the
// partition-ordered accumulation keeps exact in parallel.
//
// Emits JSON (one object) on stdout so CI can track the trajectory per
// commit; the human-readable summary goes to stderr.
//
// Usage: abl_groupby [rows_millions]   (default 1)

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "operators/hash_groupby.h"
#include "operators/partitioned/partition.h"
#include "operators/partitioned/partitioned_agg.h"
#include "runtime/parallel_operators.h"
#include "runtime/thread_pool.h"
#include "tensor/buffer_pool.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double arg = bench::ScaleFactorArg(argc, argv, 1.0);
  const int64_t n = static_cast<int64_t>(arg * 1e6);
  const bench::TimingProtocol protocol{1, 3};
  runtime::ThreadPool* pool = runtime::ThreadPool::Global();
  std::fprintf(stderr,
               "=== ABL3: sort vs hash vs partitioned group-by (%lld rows, "
               "SUM, %d threads) ===\n",
               static_cast<long long>(n), pool->num_threads());
  std::fprintf(stderr, "%10s %11s %10s %10s %10s %7s %6s %6s %8s\n", "groups",
               "sort (ms)", "hash (ms)", "mono (ms)", "part (ms)", "m/p",
               "parts", "depth", "spill MB");

  std::printf("{\n  \"bench\": \"abl_groupby\",\n  \"rows\": %lld,\n"
              "  \"threads\": %d,\n  \"configs\": [",
              static_cast<long long>(n), pool->num_threads());
  Rng rng(3);
  Tensor values = Tensor::Empty(DType::kFloat64, n, 1).ValueOrDie();
  for (int64_t i = 0; i < n; ++i) {
    values.mutable_data<double>()[i] = rng.NextDouble();
  }
  bool first = true;
  for (int64_t groups : {4L, 64L, 1024L, 65536L, 1048576L}) {
    Tensor keys = Tensor::Empty(DType::kInt64, n, 1).ValueOrDie();
    for (int64_t i = 0; i < n; ++i) {
      keys.mutable_data<int64_t>()[i] = rng.Uniform(0, groups - 1);
    }
    const std::vector<Tensor> key_cols{keys};
    const double sort_sec = bench::MedianTime(
        [&] {
          auto g = op::SortGroupIds(key_cols).ValueOrDie();
          TQP_CHECK_OK(
              op::GroupedReduce(ReduceOpKind::kSum, values, g).status());
        },
        protocol);
    const double hash_sec = bench::MedianTime(
        [&] {
          auto g = op::HashGroupIds(key_cols).ValueOrDie();
          TQP_CHECK_OK(
              op::GroupedReduce(ReduceOpKind::kSum, values, g).status());
        },
        protocol);

    // Monolithic morsel-parallel grouping vs the radix-partitioned
    // aggregation, both followed by the same parallel float SUM (exact via
    // the partition-ordered accumulation). The partitioned path is called
    // directly so its partition choice is observable regardless of
    // row-count routing thresholds.
    runtime::ParallelContext ctx;
    ctx.pool = pool;
    const bench::PoolTimedRun mono = bench::MeasureWithPool(
        [&] {
          auto g = runtime::ParallelHashGroupIds(ctx, key_cols).ValueOrDie();
          TQP_CHECK_OK(
              runtime::ParallelGroupedReduce(ctx, ReduceOpKind::kSum, values, g)
                  .status());
        },
        protocol);
    op::partitioned::PartitionConfig config;
    config.budget_bytes = BufferPool::ResolveMemoryBudget(0);
    config.forced_bits = op::partitioned::ForcedPartitionBits();
    op::partitioned::PartitionStats stats;
    const bench::PoolTimedRun part = bench::MeasureWithPool(
        [&] {
          stats = {};
          auto g = op::partitioned::PartitionedHashGroupIds(ctx, key_cols,
                                                            config, &stats)
                       .ValueOrDie();
          TQP_CHECK_OK(
              runtime::ParallelGroupedReduce(ctx, ReduceOpKind::kSum, values, g)
                  .status());
        },
        protocol);
    const double ratio = part.seconds > 0 ? mono.seconds / part.seconds : 0.0;
    std::printf(
        "%s\n    {\"groups\": %lld, \"sort_ms\": %.4f, \"hash_ms\": %.4f,"
        "\n     \"monolithic_ms\": %.4f, \"partitioned_ms\": %.4f,"
        " \"partitioned_speedup\": %.4f,"
        "\n     \"partitions\": %lld, \"recursion_depth\": %lld,"
        " \"repartitions\": %lld, \"spilled_mb\": %.3f,"
        " \"peak_alloc_mb\": %.3f}",
        first ? "" : ",", static_cast<long long>(groups), sort_sec * 1e3,
        hash_sec * 1e3, mono.seconds * 1e3, part.seconds * 1e3, ratio,
        static_cast<long long>(stats.partitions),
        static_cast<long long>(stats.recursion_depth),
        static_cast<long long>(stats.repartitions), part.spilled_mb,
        part.peak_alloc_mb);
    first = false;
    std::fprintf(stderr, "%10lld %11.3f %10.3f %10.3f %10.3f %6.2fx %6lld "
                 "%6lld %8.2f\n",
                 static_cast<long long>(groups), sort_sec * 1e3,
                 hash_sec * 1e3, mono.seconds * 1e3, part.seconds * 1e3, ratio,
                 static_cast<long long>(stats.partitions),
                 static_cast<long long>(stats.recursion_depth),
                 part.spilled_mb);
  }
  std::printf("]\n}\n");
  std::fprintf(stderr,
               "\n(sort-based is what the tensor compiler emits — it is "
               "expressible as pure tensor ops and scales on GPUs; the "
               "partitioned aggregation makes each partition's hash table "
               "cache-sized and spillable, and its group ids still match the "
               "serial first-seen order exactly)\n");
  return 0;
}
