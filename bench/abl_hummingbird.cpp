// ABL4 — Hummingbird strategy ablation (the tree-compilation machinery TQP
// inherits for PREDICT): GEMM vs TreeTraversal across tree depth and batch
// size, on CPU wall time and on the simulated-GPU clock. Expected shape (as
// in the Hummingbird paper): GEMM wins for shallow trees / accelerators
// (dense compute), traversal wins as depth grows (GEMM cost is O(2^depth)
// per row, traversal O(depth)).
//
// Usage: abl_hummingbird [batch_thousands]   (default 50 -> 50k rows)

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "graph/executor.h"
#include "ml/tree.h"

using namespace tqp;  // NOLINT: bench binary

int main(int argc, char** argv) {
  const double arg = bench::ScaleFactorArg(argc, argv, 50);
  const int64_t batch = static_cast<int64_t>(arg * 1000);
  bench::PrintHeader("ABL4: Hummingbird GEMM vs TreeTraversal");
  const int64_t d = 16;
  Rng rng(9);
  Tensor x = Tensor::Empty(DType::kFloat64, batch, d).ValueOrDie();
  for (int64_t i = 0; i < batch * d; ++i) {
    x.mutable_data<double>()[i] = rng.UniformDouble(-1, 1);
  }
  // Train targets correlated with a few features so trees grow to max depth.
  std::printf("%lld rows, %lld features\n\n", static_cast<long long>(batch),
              static_cast<long long>(d));
  std::printf("%6s %7s %7s %12s %12s %15s %15s\n", "depth", "nodes", "leaves",
              "gemm (ms)", "trav (ms)", "gemm gpu (ms)", "trav gpu (ms)");
  for (int depth : {2, 4, 6, 8, 10}) {
    Tensor y = Tensor::Empty(DType::kFloat64, batch, 1).ValueOrDie();
    Rng noise(17);
    for (int64_t i = 0; i < batch; ++i) {
      double v = 0;
      for (int64_t f = 0; f < d; ++f) {
        v += (x.at<double>(i, f) > 0.1 * static_cast<double>(f % 7) ? 1.0 : -0.5);
      }
      y.mutable_data<double>()[i] = v + noise.NextGaussian() * 0.1;
    }
    ml::DecisionTree::FitOptions options;
    options.max_depth = depth;
    options.min_samples_leaf = 1;
    ml::DecisionTree tree = ml::DecisionTree::Fit(x, y, options).ValueOrDie();

    double wall[2];
    double sim[2];
    for (ml::TreeStrategy strategy :
         {ml::TreeStrategy::kGemm, ml::TreeStrategy::kTreeTraversal}) {
      auto program = std::make_shared<TensorProgram>();
      const int input = program->AddInput("x");
      const int out =
          ml::BuildTreeGraph(program.get(), input, tree, strategy, "tree")
              .ValueOrDie();
      program->MarkOutput(out);
      auto executor = MakeExecutor(ExecutorTarget::kStatic, program).ValueOrDie();
      const int idx = strategy == ml::TreeStrategy::kGemm ? 0 : 1;
      wall[idx] =
          bench::MedianTime([&] { TQP_CHECK_OK(executor->Run({x}).status()); },
                            bench::TimingProtocol{2, 5});
      ExecOptions gpu;
      gpu.device = DeviceKind::kCudaSim;
      auto gpu_exec =
          MakeExecutor(ExecutorTarget::kStatic, program, gpu).ValueOrDie();
      Device* dev = GetDevice(DeviceKind::kCudaSim);
      dev->ResetClock();
      TQP_CHECK_OK(gpu_exec->Run({x}).status());
      sim[idx] = dev->simulated_seconds();
    }
    std::printf("%6d %7zu %7d %12.3f %12.3f %15.3f %15.3f\n", depth,
                tree.nodes().size(), tree.num_leaves(), wall[0] * 1e3,
                wall[1] * 1e3, sim[0] * 1e3, sim[1] * 1e3);
  }
  return 0;
}
