#!/usr/bin/env python3
"""TQP repo-invariant linter: fast, AST-free checks for contracts that the
compiler (even clang -Wthread-safety) cannot express.

Rules
-----
naked-mutex          src/ must not name std::mutex / std::condition_variable /
                     std::lock_guard / std::unique_lock / std::scoped_lock (or
                     include <mutex> / <condition_variable>) outside
                     src/common/sync.h. Everything locks through the annotated
                     tqp::Mutex / MutexLock / CondVar wrappers so the clang
                     thread-safety build sees every acquisition.
submit-propagation   Every ThreadPool::Submit / StepScheduler::Submit wrapper
                     body must re-attach all three ambient TLS contexts —
                     query-memory scope (QueryScope::Attach), cancellation
                     token (CancellationToken::Attach), and trace context
                     (obs::TraceContext) — so work observes its query's
                     budget/cancel/trace no matter which worker runs it.
env-int              Every getenv("TQP_*") outside src/common/env.cc must
                     either be a known string-valued knob (allowlist below) or
                     go through EnvInt64OrDefault, which bounds-checks and
                     warns instead of silently truncating like atoi.
fault-sites          The FaultSite enum (fault.h), the FaultSiteName spelling
                     table (fault.cc), the README's documented site list, and
                     kNumFaultSites must all agree, and every site must be
                     polled at at least one real call site.
substr-string-view   A std::string_view must not be initialized from
                     .substr(): substr on a std::string returns a temporary
                     that dies at the semicolon, leaving the view dangling.

Usage
-----
    python3 tools/repo_lint.py [--root DIR] [--check-anchors]

Exit status 0 when clean, 1 when any rule fired. --check-anchors additionally
requires the files the contract rules anchor on (thread_pool.cc, fault.h, ...)
to exist, so a rename cannot silently disable a rule; the CI and ctest
invocations pass it, fixture runs do not.
"""

import argparse
import os
import re
import sys

# String-valued TQP_* environment knobs: these carry names/specs/paths, not
# integers, so EnvInt64OrDefault does not apply.
STRING_ENV_ALLOWLIST = {
    "TQP_EXPR_BACKEND",  # backend name: interp | simd | auto
    "TQP_FAULT_SPEC",    # fault-injection spec grammar
    "TQP_TRACE_FILE",    # trace output path
}

# Files every Submit wrapper / fault seam rule anchors on. --check-anchors
# makes their absence an error instead of a silent skip.
ANCHOR_FILES = [
    "src/common/fault.h",
    "src/common/fault.cc",
    "src/common/sync.h",
    "src/runtime/thread_pool.cc",
    "src/runtime/step_scheduler.cc",
]

SOURCE_EXTS = (".h", ".cc", ".cpp")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def iter_source_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, names in os.walk(base):
            # Golden bad-code fixtures exist to *trigger* rules.
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root)


def strip_comments(text):
    """Blanks out // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | "str" | "char"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "char"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# ----------------------------------------------------------- naked-mutex --
NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|condition_variable(?:_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_mutex|shared_lock)\b|"
    r"#\s*include\s*<(mutex|condition_variable|shared_mutex)>"
)


def check_naked_mutex(root):
    findings = []
    for path in iter_source_files(root, ["src"]):
        rel = relpath(root, path)
        if rel.replace(os.sep, "/") == "src/common/sync.h":
            continue
        text = open(path, encoding="utf-8").read()
        code = strip_comments(text)
        for m in NAKED_MUTEX_RE.finditer(code):
            findings.append(Finding(
                "naked-mutex", rel, line_of(code, m.start()),
                f"'{m.group(0)}' outside src/common/sync.h; use tqp::Mutex / "
                "MutexLock / CondVar so the thread-safety analysis sees it"))
    return findings


# ---------------------------------------------------- submit-propagation --
# Non-greedy across the parameter list: `std::function<void()>` nests parens,
# so the first `) {` after the open paren is the real end of the signature.
SUBMIT_DEF_RE = re.compile(
    r"void\s+(ThreadPool|StepScheduler)::Submit\s*\(.*?\)\s*\{", re.DOTALL)
SUBMIT_CONTEXTS = [
    ("QueryScope::Attach", "query-memory scope"),
    ("CancellationToken::Attach", "cancellation token"),
    ("obs::TraceContext", "trace context"),
]


def matched_body(code, open_brace):
    """Returns (body, end) for the brace-matched block starting at
    open_brace (index of '{')."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return code[open_brace:i + 1], i
    return code[open_brace:], len(code)


def check_submit_propagation(root):
    findings = []
    for path in iter_source_files(root, ["src"]):
        rel = relpath(root, path)
        text = open(path, encoding="utf-8").read()
        code = strip_comments(text)
        for m in SUBMIT_DEF_RE.finditer(code):
            body, _ = matched_body(code, m.end() - 1)
            for marker, what in SUBMIT_CONTEXTS:
                if marker not in body:
                    findings.append(Finding(
                        "submit-propagation", rel, line_of(code, m.start()),
                        f"{m.group(1)}::Submit does not propagate the ambient "
                        f"{what} ({marker}); tasks would silently lose their "
                        "query's context on another worker"))
    return findings


# ---------------------------------------------------------------- env-int --
GETENV_RE = re.compile(r'getenv\s*\(\s*"(TQP_[A-Z0-9_]*)"\s*\)')


def check_env_int(root):
    findings = []
    for path in iter_source_files(root, ["src", "bench", "examples", "tools"]):
        rel = relpath(root, path)
        if rel.replace(os.sep, "/") == "src/common/env.cc":
            continue  # the EnvInt64OrDefault implementation itself
        text = open(path, encoding="utf-8").read()
        code = strip_comments(text)
        # getenv() blanks the quoted name; scan the raw text for the pattern
        # and the stripped text to skip commented-out code.
        for m in GETENV_RE.finditer(text):
            prefix = code[:m.start()]
            if code[m.start():m.start() + 6] != "getenv":
                continue  # inside a comment or string
            del prefix
            name = m.group(1)
            if name not in STRING_ENV_ALLOWLIST:
                findings.append(Finding(
                    "env-int", rel, line_of(text, m.start()),
                    f'raw getenv("{name}"): integer TQP_* knobs must go '
                    "through EnvInt64OrDefault (bounds-checked, warns on "
                    "garbage); string knobs belong in the linter allowlist"))
    return findings


# ------------------------------------------------------------ fault-sites --
ENUM_MEMBER_RE = re.compile(r"\bk([A-Z][A-Za-z0-9]*)\s*=\s*\d+\s*,")
SITE_NAME_RE = re.compile(
    r"case\s+FaultSite::k[A-Za-z0-9]+\s*:\s*return\s*\"([a-z0-9_]+)\"")
NUM_SITES_RE = re.compile(r"kNumFaultSites\s*=\s*(\d+)")
DOC_SITE_RE = re.compile(r"`([a-z0-9_]+)`")


def camel_to_snake(name):
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def check_fault_sites(root):
    findings = []
    fault_h = os.path.join(root, "src/common/fault.h")
    fault_cc = os.path.join(root, "src/common/fault.cc")
    readme = os.path.join(root, "README.md")
    if not (os.path.isfile(fault_h) and os.path.isfile(fault_cc)):
        return findings  # --check-anchors reports the missing files

    header = open(fault_h, encoding="utf-8").read()
    header_code = strip_comments(header)
    enum_m = re.search(r"enum\s+class\s+FaultSite[^{]*\{", header_code)
    if enum_m is None:
        findings.append(Finding("fault-sites", relpath(root, fault_h), 1,
                                "FaultSite enum not found"))
        return findings
    enum_body, _ = matched_body(header_code, enum_m.end() - 1)
    enum_sites = [camel_to_snake(m.group(1))
                  for m in ENUM_MEMBER_RE.finditer(enum_body)]
    enum_line = line_of(header_code, enum_m.start())

    num_m = NUM_SITES_RE.search(header_code)
    if num_m and int(num_m.group(1)) != len(enum_sites):
        findings.append(Finding(
            "fault-sites", relpath(root, fault_h),
            line_of(header_code, num_m.start()),
            f"kNumFaultSites = {num_m.group(1)} but the FaultSite enum has "
            f"{len(enum_sites)} members"))

    impl = open(fault_cc, encoding="utf-8").read()
    table_names = SITE_NAME_RE.findall(impl)
    if sorted(table_names) != sorted(enum_sites):
        findings.append(Finding(
            "fault-sites", relpath(root, fault_cc), 1,
            f"FaultSiteName table {sorted(table_names)} != FaultSite enum "
            f"{sorted(enum_sites)}"))

    # Documented site list: the README sentence "Sites: `a`, `b`, ...".
    if os.path.isfile(readme):
        doc = open(readme, encoding="utf-8").read()
        sites_m = re.search(r"Sites:((?:[^.]|\.\d)*)", doc)
        if sites_m is None:
            findings.append(Finding(
                "fault-sites", "README.md", 1,
                "documented fault-site list ('Sites: ...') not found"))
        else:
            documented = set(DOC_SITE_RE.findall(sites_m.group(1)))
            for site in enum_sites:
                if site not in documented:
                    findings.append(Finding(
                        "fault-sites", "README.md",
                        line_of(doc, sites_m.start()),
                        f"fault site '{site}' missing from the documented "
                        "site list"))
            for site in sorted(documented - set(enum_sites)):
                findings.append(Finding(
                    "fault-sites", "README.md", line_of(doc, sites_m.start()),
                    f"documented fault site '{site}' does not exist in the "
                    "FaultSite enum"))

    # Every seam must actually be polled somewhere outside fault.{h,cc}.
    camel = {camel_to_snake(m.group(1)): "k" + m.group(1)
             for m in ENUM_MEMBER_RE.finditer(enum_body)}
    used = set()
    for path in iter_source_files(root, ["src"]):
        rel = relpath(root, path).replace(os.sep, "/")
        if rel in ("src/common/fault.h", "src/common/fault.cc"):
            continue
        code = strip_comments(open(path, encoding="utf-8").read())
        for site, member in camel.items():
            if re.search(r"FaultSite::" + member + r"\b", code):
                used.add(site)
    for site in enum_sites:
        if site not in used:
            findings.append(Finding(
                "fault-sites", relpath(root, fault_h), enum_line,
                f"fault site '{site}' has no FaultHit/ShouldFail call site "
                "in src/ — dead seam or missing poll"))
    return findings


# ----------------------------------------------------- substr-string-view --
SUBSTR_VIEW_RE = re.compile(
    r"\b(?:std::)?(?:w|u8|u16|u32)?string_view\s+\w+\s*[({=][^;]*\.substr\s*\(",
    re.DOTALL)


def check_substr_string_view(root):
    findings = []
    for path in iter_source_files(root, ["src", "bench", "examples", "tests"]):
        rel = relpath(root, path)
        code = strip_comments(open(path, encoding="utf-8").read())
        for m in SUBSTR_VIEW_RE.finditer(code):
            findings.append(Finding(
                "substr-string-view", rel, line_of(code, m.start()),
                "string_view initialized from .substr(): std::string::substr "
                "returns a temporary, so the view dangles at the semicolon; "
                "use std::string_view::substr on a view, or keep the string"))
    return findings


def check_anchors(root):
    findings = []
    for rel in ANCHOR_FILES:
        if not os.path.isfile(os.path.join(root, rel)):
            findings.append(Finding(
                "anchor-files", rel, 1,
                "anchor file missing: a rename must update ANCHOR_FILES in "
                "tools/repo_lint.py so its lint rule keeps running"))
    return findings


RULES = [
    ("naked-mutex", check_naked_mutex),
    ("submit-propagation", check_submit_propagation),
    ("env-int", check_env_int),
    ("fault-sites", check_fault_sites),
    ("substr-string-view", check_substr_string_view),
]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="tree to lint (default: the repo this script lives in)")
    parser.add_argument(
        "--check-anchors", action="store_true",
        help="require the contract rules' anchor files to exist")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, _ in RULES:
            print(name)
        return 0

    findings = []
    if args.check_anchors:
        findings.extend(check_anchors(args.root))
    for _, check in RULES:
        findings.extend(check(args.root))

    for f in findings:
        print(f)
    if findings:
        print(f"repo_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
